"""Signatures (color bitmasks) and projection tables."""

from .oahash import OpenAddressingTable
from .projection import BinaryTable, PathTable, UnaryTable, table_total
from .signatures import (
    all_signatures,
    color_bit,
    empty_signature,
    full_signature,
    sig_add,
    sig_colors,
    sig_contains,
    sig_disjoint_except,
    sig_from_colors,
    sig_intersection,
    sig_size,
    sig_union,
)

__all__ = [
    "UnaryTable",
    "BinaryTable",
    "PathTable",
    "table_total",
    "OpenAddressingTable",
    "empty_signature",
    "full_signature",
    "color_bit",
    "sig_from_colors",
    "sig_contains",
    "sig_add",
    "sig_union",
    "sig_intersection",
    "sig_size",
    "sig_colors",
    "sig_disjoint_except",
    "all_signatures",
]
