"""Color signatures as integer bitmasks (paper Section 4.2, "Signature").

A signature is a subset of the ``k`` colors; we store it as an int with
bit ``c`` set iff color ``c`` is in the set.  The paper's distributed
engine "maintains signatures as bitmaps" with "signature compatibility
checks performed via fast bitwise operations" — identical here.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

__all__ = [
    "empty_signature",
    "full_signature",
    "color_bit",
    "sig_from_colors",
    "sig_contains",
    "sig_add",
    "sig_union",
    "sig_intersection",
    "sig_size",
    "sig_colors",
    "sig_disjoint_except",
    "all_signatures",
]


def empty_signature() -> int:
    """The empty color set."""
    return 0


def full_signature(k: int) -> int:
    """Signature containing all ``k`` colors."""
    return (1 << k) - 1


def color_bit(color: int) -> int:
    """Singleton signature containing just ``color``."""
    return 1 << color


def sig_from_colors(colors: Iterable[int]) -> int:
    """Signature of an iterable of colors."""
    sig = 0
    for c in colors:
        sig |= 1 << c
    return sig


def sig_contains(sig: int, color: int) -> bool:
    """Whether ``color`` is in the signature."""
    return bool(sig >> color & 1)


def sig_add(sig: int, color: int) -> int:
    """Signature with ``color`` added."""
    return sig | (1 << color)


def sig_union(a: int, b: int) -> int:
    """Set union of two signatures."""
    return a | b


def sig_intersection(a: int, b: int) -> int:
    """Set intersection of two signatures."""
    return a & b


def sig_size(sig: int) -> int:
    """Number of colors in the signature (popcount)."""
    return bin(sig).count("1")


def sig_colors(sig: int) -> List[int]:
    """Sorted list of colors in the signature."""
    out = []
    c = 0
    while sig:
        if sig & 1:
            out.append(c)
        sig >>= 1
        c += 1
    return out


def sig_disjoint_except(a: int, b: int, shared: int) -> bool:
    """Paper join condition: ``a ∩ b == shared`` exactly.

    Used for every join: two partial matches may combine iff the colors
    they share are exactly the colors of their shared boundary vertices.
    """
    return (a & b) == shared


def all_signatures(k: int) -> Iterator[int]:
    """All 2^k signatures over k colors (tests/exhaustive checks only)."""
    return iter(range(1 << k))
