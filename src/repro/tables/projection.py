"""Projection tables (paper Section 4.2).

A projection table is a sparse map from ``(boundary vertex images,
signature)`` to the number of colorful matches of a subquery consistent
with that key.  Only non-zero counts are stored.

Three key shapes occur:

* **unary** — subqueries with one boundary node: key ``(u, sig)``;
* **binary** — two boundary nodes: key ``(u, v, sig)``;
* **binary with extras** — the DB algorithm's path tables additionally
  record the images of cycle-boundary nodes that fall *inside* a path
  (Section 5.1, Configurations A/B): key ``(u, v, extras, sig)`` where
  ``extras`` is a tuple of recorded vertex images in a fixed label order.

All tables are plain dicts; the classes add boundary metadata, index
building for merge joins, and transposition (the paper: "the boundary
tables are transpose of each other").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterator, List, Tuple

__all__ = ["UnaryTable", "BinaryTable", "PathTable", "table_total"]

Node = Hashable


class UnaryTable:
    """cnt(u, sig | Q) for a subquery with a single boundary node."""

    __slots__ = ("boundary", "data")

    def __init__(self, boundary: Node) -> None:
        self.boundary = boundary
        self.data: Dict[Tuple[int, int], int] = {}

    def add(self, u: int, sig: int, count: int) -> None:
        key = (u, sig)
        self.data[key] = self.data.get(key, 0) + count

    def items(self) -> Iterator[Tuple[Tuple[int, int], int]]:
        return iter(self.data.items())

    def by_vertex(self) -> Dict[int, List[Tuple[int, int]]]:
        """Index ``u -> [(sig, count), ...]`` for NodeJoin merge loops."""
        index: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for (u, sig), cnt in self.data.items():
            index[u].append((sig, cnt))
        return dict(index)

    def total(self) -> int:
        return sum(self.data.values())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryTable(boundary={self.boundary!r}, entries={len(self.data)})"


class BinaryTable:
    """cnt(u, v, sig | Q) for a subquery with two (ordered) boundary nodes."""

    __slots__ = ("boundary", "data")

    def __init__(self, boundary: Tuple[Node, Node]) -> None:
        self.boundary = boundary
        self.data: Dict[Tuple[int, int, int], int] = {}

    def add(self, u: int, v: int, sig: int, count: int) -> None:
        key = (u, v, sig)
        self.data[key] = self.data.get(key, 0) + count

    def items(self) -> Iterator[Tuple[Tuple[int, int, int], int]]:
        return iter(self.data.items())

    def transpose(self) -> "BinaryTable":
        """Swap boundary order: cnt(u, v, sig) becomes cnt(v, u, sig)."""
        out = BinaryTable((self.boundary[1], self.boundary[0]))
        for (u, v, sig), cnt in self.data.items():
            out.add(v, u, sig, cnt)
        return out

    def by_first(self) -> Dict[int, List[Tuple[int, int, int]]]:
        """Index ``u -> [(v, sig, count), ...]`` for EdgeJoin merge loops."""
        index: Dict[int, List[Tuple[int, int, int]]] = defaultdict(list)
        for (u, v, sig), cnt in self.data.items():
            index[u].append((v, sig, cnt))
        return dict(index)

    def total(self) -> int:
        return sum(self.data.values())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryTable(boundary={self.boundary!r}, entries={len(self.data)})"


class PathTable:
    """Working table for a path segment of a cycle (kernels-internal).

    Keys are ``(start_vertex, end_vertex, extras, sig)`` where ``extras``
    is a tuple of images of the recorded boundary labels (in the order of
    ``record_labels``).  ``record_labels`` lists the cycle-boundary query
    nodes that lie strictly inside this path segment and must be carried
    through (the DB algorithm's additional key fields).
    """

    __slots__ = ("record_labels", "data")

    def __init__(self, record_labels: Tuple[Node, ...] = ()) -> None:
        self.record_labels = record_labels
        self.data: Dict[Tuple[int, int, Tuple[int, ...], int], int] = {}

    def add(self, u: int, v: int, extras: Tuple[int, ...], sig: int, count: int) -> None:
        key = (u, v, extras, sig)
        self.data[key] = self.data.get(key, 0) + count

    def items(self) -> Iterator[Tuple[Tuple[int, int, Tuple[int, ...], int], int]]:
        return iter(self.data.items())

    def by_endpoints(self) -> Dict[Tuple[int, int], List[Tuple[Tuple[int, ...], int, int]]]:
        """Index ``(u, v) -> [(extras, sig, count), ...]`` for cycle merges."""
        index: Dict[Tuple[int, int], List[Tuple[Tuple[int, ...], int, int]]] = defaultdict(list)
        for (u, v, extras, sig), cnt in self.data.items():
            index[(u, v)].append((extras, sig, cnt))
        return dict(index)

    def total(self) -> int:
        return sum(self.data.values())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PathTable(record={self.record_labels!r}, entries={len(self.data)})"
        )


def table_total(table) -> int:
    """Sum of counts of any table type (or 0 for None)."""
    if table is None:
        return 0
    return table.total()
