"""Open-addressing hash table (paper Section 7 engine fidelity).

The paper's engine: "All the tables are maintained as distributed hash
tables which use open addressing to resolve collisions."  The solvers in
this repo use Python dicts (themselves open-addressing tables, but
opaque); this module provides an explicit linear-probing table over
integer-tuple keys so that the storage behaviour the paper describes —
probe sequences, load factors, resize policy — is inspectable and
benchmarkable (see ``bench_ablation.py``'s storage comparison).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

__all__ = ["OpenAddressingTable"]

_EMPTY = None  # slot sentinel


class OpenAddressingTable:
    """Linear-probing hash map from int tuples to int counts.

    Supports the one access pattern projection tables need:
    ``add(key, count)`` accumulates, ``get`` reads, ``items`` iterates.
    Deletion is intentionally unsupported (projection tables only grow
    within a join and are then discarded wholesale).
    """

    __slots__ = ("_slots", "_size", "_mask", "probe_count")

    MIN_CAPACITY = 8
    MAX_LOAD = 0.66

    def __init__(self, capacity: int = MIN_CAPACITY) -> None:
        cap = max(self.MIN_CAPACITY, 1 << (capacity - 1).bit_length())
        self._slots: List[Optional[Tuple[tuple, int]]] = [_EMPTY] * cap
        self._size = 0
        self._mask = cap - 1
        #: total probe steps performed (collision diagnostics)
        self.probe_count = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        return len(self._slots)

    @property
    def load_factor(self) -> float:
        return self._size / len(self._slots)

    # ------------------------------------------------------------------
    def _probe(self, key: tuple) -> int:
        """Index of the slot holding ``key`` or the first empty slot."""
        idx = hash(key) & self._mask
        slots = self._slots
        while True:
            entry = slots[idx]
            if entry is _EMPTY or entry[0] == key:
                return idx
            idx = (idx + 1) & self._mask
            self.probe_count += 1

    def _resize(self) -> None:
        old = self._slots
        new_cap = len(old) * 2
        self._slots = [_EMPTY] * new_cap
        self._mask = new_cap - 1
        self._size = 0
        for entry in old:
            if entry is not _EMPTY:
                self.add(entry[0], entry[1])

    # ------------------------------------------------------------------
    def add(self, key: tuple, count: int) -> None:
        """Accumulate ``count`` into ``key`` (insert if absent)."""
        idx = self._probe(key)
        entry = self._slots[idx]
        if entry is _EMPTY:
            self._slots[idx] = (key, count)
            self._size += 1
            if self.load_factor > self.MAX_LOAD:
                self._resize()
        else:
            self._slots[idx] = (key, entry[1] + count)

    def get(self, key: tuple, default: int = 0) -> int:
        entry = self._slots[self._probe(key)]
        return default if entry is _EMPTY else entry[1]

    def __contains__(self, key: tuple) -> bool:
        return self._slots[self._probe(key)] is not _EMPTY

    def items(self) -> Iterator[Tuple[tuple, int]]:
        for entry in self._slots:
            if entry is not _EMPTY:
                yield entry

    def total(self) -> int:
        return sum(cnt for _k, cnt in self.items())

    def to_dict(self) -> dict:
        return {k: v for k, v in self.items()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OpenAddressingTable(size={self._size}, capacity={self.capacity}, "
            f"load={self.load_factor:.2f})"
        )
