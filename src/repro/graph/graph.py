"""Compressed-sparse-row data graph.

The data graph is the large input graph ``G`` of the subgraph counting
problem.  It is undirected and simple.  We store it in CSR form backed by
numpy arrays so that neighbourhood iteration inside the join kernels is a
contiguous slice (cache friendly, vectorizable) rather than a Python-level
adjacency-list walk.

Vertices are integers ``0..n-1``.  The *degree ordering* of the paper
(Section 5.1, "Degree Based Algorithm") is exposed through
:meth:`Graph.degree_order_rank`: vertex ``u`` is *higher* than ``v``
(written ``u ≻ v``) iff ``rank[u] > rank[v]`` where vertices are sorted by
``(degree, vertex id)`` ascending.  Ties are broken by vertex id, which
matches the paper's "arbitrary tie breaking, say by placing the vertex
having the least id first".
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """An undirected simple graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n``.  Self loops
        and duplicate edges are rejected (the paper's data graphs are
        simple).
    """

    __slots__ = ("n", "m", "indptr", "indices", "degrees", "_order_rank", "name")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]], name: str = "") -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        edge_list = self._validate_edges(n, edges)
        self.n = int(n)
        self.m = len(edge_list)
        self.name = name
        self.indptr, self.indices = self._build_csr(n, edge_list)
        self.degrees = np.diff(self.indptr).astype(np.int64)
        self._order_rank: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_edges(n: int, edges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
        seen = set()
        out: List[Tuple[int, int]] = []
        for u, v in edges:
            u = int(u)
            v = int(v)
            if u == v:
                raise ValueError(f"self loop on vertex {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u},{v}) out of range for n={n}")
            key = (u, v) if u < v else (v, u)
            if key in seen:
                raise ValueError(f"duplicate edge ({u},{v})")
            seen.add(key)
            out.append(key)
        return out

    @staticmethod
    def _build_csr(n: int, edges: Sequence[Tuple[int, int]]) -> Tuple[np.ndarray, np.ndarray]:
        deg = np.zeros(n, dtype=np.int64)
        for u, v in edges:
            deg[u] += 1
            deg[v] += 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        indices = np.zeros(max(indptr[-1], 1), dtype=np.int64)[: indptr[-1]]
        cursor = indptr[:-1].copy()
        for u, v in edges:
            indices[cursor[u]] = v
            cursor[u] += 1
            indices[cursor[v]] = u
            cursor[v] += 1
        # Sort each adjacency slice for deterministic iteration and to allow
        # binary-search membership tests.
        for u in range(n):
            lo, hi = indptr[u], indptr[u + 1]
            indices[lo:hi] = np.sort(indices[lo:hi])
        return indptr, indices

    @classmethod
    def from_edge_array(cls, n: int, edge_array: np.ndarray, name: str = "") -> "Graph":
        """Build from an ``(m, 2)`` integer array (convenience for generators)."""
        return cls(n, [(int(u), int(v)) for u, v in edge_array], name=name)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbour array of ``u`` (a view, do not mutate)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        return int(self.degrees[u])

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < len(nbrs) and nbrs[i] == v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` rows."""
        out = np.empty((self.m, 2), dtype=np.int64)
        i = 0
        for u, v in self.edges():
            out[i, 0] = u
            out[i, 1] = v
            i += 1
        return out

    # ------------------------------------------------------------------
    # degree ordering (paper Section 5.1)
    # ------------------------------------------------------------------
    def degree_order_rank(self) -> np.ndarray:
        """Position of each vertex in the ``(degree, id)`` total order.

        ``rank[u] > rank[v]`` means ``u ≻ v`` ("u is higher than v").  The
        array is computed once and cached.
        """
        if self._order_rank is None:
            order = np.lexsort((np.arange(self.n), self.degrees))
            rank = np.empty(self.n, dtype=np.int64)
            rank[order] = np.arange(self.n)
            self._order_rank = rank
        return self._order_rank

    def is_higher(self, u: int, v: int) -> bool:
        """``u ≻ v`` in the degree-based total order."""
        rank = self.degree_order_rank()
        return bool(rank[u] > rank[v])

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------
    def avg_degree(self) -> float:
        return 2.0 * self.m / self.n if self.n else 0.0

    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    def degree_skew(self) -> float:
        """Max degree over average degree — the paper's informal skew proxy."""
        avg = self.avg_degree()
        return self.max_degree() / avg if avg > 0 else 0.0

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Graph{label}(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:  # graphs are mutable-free; hash by identity data
        return hash((self.n, self.m, self.indices.tobytes()))
