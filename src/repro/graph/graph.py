"""Compressed-sparse-row data graph.

The data graph is the large input graph ``G`` of the subgraph counting
problem.  It is undirected and simple.  We store it in CSR form backed by
numpy arrays so that neighbourhood iteration inside the join kernels is a
contiguous slice (cache friendly, vectorizable) rather than a Python-level
adjacency-list walk.

Vertices are integers ``0..n-1``.  The *degree ordering* of the paper
(Section 5.1, "Degree Based Algorithm") is exposed through
:meth:`Graph.degree_order_rank`: vertex ``u`` is *higher* than ``v``
(written ``u ≻ v``) iff ``rank[u] > rank[v]`` where vertices are sorted by
``(degree, vertex id)`` ascending.  Ties are broken by vertex id, which
matches the paper's "arbitrary tie breaking, say by placing the vertex
having the least id first".
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple, Optional, Tuple

import numpy as np

__all__ = ["CSR", "Graph"]


class CSR(NamedTuple):
    """Compressed-sparse-row adjacency: ``indices[indptr[u]:indptr[u+1]]``
    is the sorted neighbour list of vertex ``u``.

    This is the exchange format between :class:`Graph` and the vectorized
    counting kernels (:mod:`repro.counting.vectorized`): both arrays are
    ``int64``, every edge appears in both directions, and each slice is
    sorted ascending so joins can binary-search and batch-gather.
    """

    indptr: np.ndarray
    indices: np.ndarray


class Graph:
    """An undirected simple graph in CSR form.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n``.  Self loops
        and duplicate edges are rejected (the paper's data graphs are
        simple).
    """

    __slots__ = ("n", "m", "indptr", "indices", "degrees", "labels", "_order_rank", "name")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "",
        labels: Optional[Iterable[int]] = None,
    ) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        edge_list = self._validate_edges(n, edges)
        self.n = int(n)
        self.m = len(edge_list)
        self.name = name
        self.indptr, self.indices = self._build_csr(n, edge_list)
        self.degrees = np.diff(self.indptr).astype(np.int64)
        self.labels = self._validate_labels(self.n, labels)
        self._order_rank: Optional[np.ndarray] = None

    @staticmethod
    def _validate_labels(n: int, labels: Optional[Iterable[int]]) -> Optional[np.ndarray]:
        """Canonicalise an optional vertex-label array to non-negative int64."""
        if labels is None:
            return None
        # input validation must see the caller's own dtype (a float array
        # with fractional labels has to be rejected, not silently cast)
        arr = np.asarray(labels)  # repro: allow[RP002]
        if arr.shape != (n,):
            raise ValueError(f"labels must be one integer per vertex ({n}), got shape {arr.shape}")
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            if not np.all(arr == arr.astype(np.int64)):
                raise ValueError("vertex labels must be integers")
        arr = arr.astype(np.int64, copy=True)
        if arr.size and arr.min() < 0:
            raise ValueError("vertex labels must be non-negative")
        return arr

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_edges(n: int, edges: Iterable[Tuple[int, int]]) -> np.ndarray:
        """Canonicalise to an ``(m, 2)`` array with ``u < v`` rows.

        Validation is array-at-a-time: range/self-loop/duplicate checks are
        numpy reductions, with the first offending edge reported exactly
        like the historical per-edge loop did.
        """
        # dtype-free on purpose: shape/range validation below must inspect
        # the edges as the caller provided them before the int64 cast
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)  # repro: allow[RP002]
        if arr.size == 0:
            return np.empty((0, 2), dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"edges must be (u, v) pairs, got shape {arr.shape}")
        arr = arr.astype(np.int64, copy=False)
        loops = arr[:, 0] == arr[:, 1]
        if loops.any():
            u = int(arr[int(np.argmax(loops)), 0])
            raise ValueError(f"self loop on vertex {u} is not allowed")
        bad = (arr < 0) | (arr >= n)
        if bad.any():
            u, v = (int(x) for x in arr[int(np.argmax(bad.any(axis=1)))])
            raise ValueError(f"edge ({u},{v}) out of range for n={n}")
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        key = lo * np.int64(n) + hi
        _, first, counts = np.unique(key, return_index=True, return_counts=True)
        if (counts > 1).any():
            # report the duplicate edge at its earliest repeated position,
            # in the orientation it was given
            dup_keys = np.flatnonzero(np.isin(key, key[first[counts > 1]]))
            seen: set = set()
            for i in dup_keys:
                k = int(key[i])
                if k in seen:
                    u, v = int(arr[i, 0]), int(arr[i, 1])
                    raise ValueError(f"duplicate edge ({u},{v})")
                seen.add(k)
        return np.column_stack((lo, hi))

    @staticmethod
    def _build_csr(n: int, edges: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        src = np.concatenate((edges[:, 0], edges[:, 1]))
        dst = np.concatenate((edges[:, 1], edges[:, 0]))
        deg = np.bincount(src, minlength=n).astype(np.int64) if n else np.zeros(0, np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(deg, out=indptr[1:])
        # One lexsort orders the directed edge list by (src, dst), which
        # lays every adjacency slice out sorted — no per-vertex Python loop.
        order = np.lexsort((dst, src))
        indices = dst[order]
        return indptr, indices

    @classmethod
    def from_edge_array(cls, n: int, edge_array: np.ndarray, name: str = "") -> "Graph":
        """Build from an ``(m, 2)`` integer array (convenience for generators)."""
        return cls(n, np.asarray(edge_array, dtype=np.int64).reshape(-1, 2), name=name)

    @classmethod
    def from_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        name: str = "",
        labels: Optional[Iterable[int]] = None,
    ) -> "Graph":
        """Rebuild a graph from a :class:`CSR` pair (``Graph ↔ CSR`` round trip).

        The input must describe a simple undirected graph: every edge in
        both directions, no self loops, sorted slices.  Anything else —
        asymmetric adjacency, duplicates inside a slice, loops — raises
        ``ValueError``.  ``labels`` restores the optional per-vertex label
        array, completing the labeled-graph round trip.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        n = len(indptr) - 1
        if n < 0 or indptr[0] != 0 or (np.diff(indptr) < 0).any() or indptr[-1] != len(indices):
            raise ValueError("malformed CSR indptr")
        u = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        keep = u < indices
        g = cls(n, np.column_stack((u[keep], indices[keep])), name=name, labels=labels)
        if not (np.array_equal(g.indptr, indptr) and np.array_equal(g.indices, indices)):
            raise ValueError("CSR is not a valid simple undirected adjacency")
        return g

    def with_labels(self, labels: Optional[Iterable[int]]) -> "Graph":
        """A copy of this graph carrying ``labels`` (``None`` clears them).

        The CSR arrays (and the cached degree order) are shared with the
        original — labels never force an adjacency rebuild.
        """
        g = object.__new__(Graph)
        g.n, g.m, g.name = self.n, self.m, self.name
        g.indptr, g.indices, g.degrees = self.indptr, self.indices, self.degrees
        g._order_rank = self._order_rank
        g.labels = self._validate_labels(self.n, labels)
        return g

    @property
    def labeled(self) -> bool:
        """Whether this graph carries a per-vertex label array."""
        return self.labels is not None

    def num_labels(self) -> int:
        """Size of the label alphabet (``max label + 1``; 0 when unlabeled)."""
        if self.labels is None or self.labels.size == 0:
            return 0
        return int(self.labels.max()) + 1

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def to_csr(self) -> CSR:
        """The graph's cached CSR adjacency as a :class:`CSR` pair.

        The arrays are the graph's own backing storage (built once in the
        constructor, never copied) — treat them as read-only.
        """
        return CSR(self.indptr, self.indices)

    def neighbors(self, u: int) -> np.ndarray:
        """Sorted neighbour array of ``u`` (a view, do not mutate)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        return int(self.degrees[u])

    def has_edge(self, u: int, v: int) -> bool:
        nbrs = self.neighbors(u)
        i = np.searchsorted(nbrs, v)
        return bool(i < len(nbrs) and nbrs[i] == v)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` rows."""
        u = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
        keep = u < self.indices
        return np.column_stack((u[keep], self.indices[keep]))

    # ------------------------------------------------------------------
    # degree ordering (paper Section 5.1)
    # ------------------------------------------------------------------
    def degree_order_rank(self) -> np.ndarray:
        """Position of each vertex in the ``(degree, id)`` total order.

        ``rank[u] > rank[v]`` means ``u ≻ v`` ("u is higher than v").  The
        array is computed once and cached.
        """
        if self._order_rank is None:
            order = np.lexsort((np.arange(self.n, dtype=np.int64), self.degrees))
            rank = np.empty(self.n, dtype=np.int64)
            rank[order] = np.arange(self.n, dtype=np.int64)
            self._order_rank = rank
        return self._order_rank

    def is_higher(self, u: int, v: int) -> bool:
        """``u ≻ v`` in the degree-based total order."""
        rank = self.degree_order_rank()
        return bool(rank[u] > rank[v])

    # ------------------------------------------------------------------
    # summary statistics
    # ------------------------------------------------------------------
    def avg_degree(self) -> float:
        return 2.0 * self.m / self.n if self.n else 0.0

    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.n else 0

    def degree_skew(self) -> float:
        """Max degree over average degree — the paper's informal skew proxy."""
        avg = self.avg_degree()
        return self.max_degree() / avg if avg > 0 else 0.0

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Graph{label}(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if (self.labels is None) != (other.labels is None):
            return False
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and (self.labels is None or np.array_equal(self.labels, other.labels))
        )

    def __hash__(self) -> int:  # graphs are mutable-free; hash by identity data
        label_part = self.labels.tobytes() if self.labels is not None else b""
        return hash((self.n, self.m, self.indices.tobytes(), label_part))
