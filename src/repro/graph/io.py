"""Edge-list and JSON I/O for data graphs (SNAP-style text format)."""

from __future__ import annotations

import json
import os
from typing import List, Optional, Tuple

from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_json_graph",
    "read_json_graph",
    "load_graph_file",
]


def _normalize_edges(pairs: List[Tuple[int, int]]) -> Tuple[List[Tuple[int, int]], int]:
    """Canonical simple-graph edges from raw pairs: drop self loops and
    duplicates (either orientation); returns ``(edges, max_vertex_id)``."""
    seen = set()
    edges: List[Tuple[int, int]] = []
    max_id = -1
    for u, v in pairs:
        max_id = max(max_id, u, v)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key not in seen:
            seen.add(key)
            edges.append(key)
    return edges, max_id


def write_edge_list(g: Graph, path: str) -> None:
    """Write ``# n m`` header followed by one ``u v`` pair per line.

    A labeled graph adds one ``# labels l0 l1 ...`` comment line after the
    header (one integer per vertex, in vertex order) so the label array
    survives the text round trip.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"# {g.n} {g.m}\n")
        if g.labels is not None:
            fh.write("# labels " + " ".join(str(int(x)) for x in g.labels) + "\n")
        for u, v in g.edges():
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str, name: str = "") -> Graph:
    """Read a graph written by :func:`write_edge_list` (or raw SNAP lists).

    Lines beginning with ``#`` are treated as comments; the first comment
    line may carry ``# n m``.  Without a header, ``n`` is inferred as
    ``max vertex id + 1``.  Duplicate edges and self loops in raw files are
    silently dropped (SNAP lists both directions of each edge).
    """
    if not os.path.exists(path):
        raise FileNotFoundError(path)
    n_hint = -1
    labels: Optional[List[int]] = None
    pairs: List[Tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if parts and parts[0] == "labels":
                    labels = [int(x) for x in parts[1:]]
                elif n_hint < 0 and len(parts) >= 1 and parts[0].isdigit():
                    n_hint = int(parts[0])
                continue
            a, b = line.split()[:2]
            pairs.append((int(a), int(b)))
    edges, max_id = _normalize_edges(pairs)
    n = n_hint if n_hint >= 0 else max_id + 1
    return Graph(n, edges, name=name or os.path.basename(path), labels=labels)


def write_json_graph(g: Graph, path: str) -> None:
    """Write ``{"name", "n", "edges"[, "labels"]}`` as JSON (the service's
    dataset format).  ``labels`` is present only for labeled graphs."""
    doc = {"name": g.name, "n": g.n, "edges": [[int(u), int(v)] for u, v in g.edges()]}
    if g.labels is not None:
        doc["labels"] = [int(x) for x in g.labels]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")


def read_json_graph(path: str, name: str = "") -> Graph:
    """Read a graph written by :func:`write_json_graph`.

    ``n`` is optional in the document (inferred as max id + 1); duplicate
    edges and self loops are dropped, matching :func:`read_edge_list`.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    pairs = [(int(u), int(v)) for u, v in doc.get("edges", [])]
    edges, max_id = _normalize_edges(pairs)
    n = int(doc["n"]) if "n" in doc else max_id + 1
    labels = doc.get("labels")
    if labels is not None:
        labels = [int(x) for x in labels]
    return Graph(
        n, edges, name=name or doc.get("name") or os.path.basename(path), labels=labels
    )


def load_graph_file(path: str, name: str = "") -> Graph:
    """Load a graph file by extension: ``.json`` JSON, anything else edge list."""
    if path.endswith(".json"):
        return read_json_graph(path, name=name)
    return read_edge_list(path, name=name)
