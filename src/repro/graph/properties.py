"""Structural property helpers for data graphs (connectivity, stats)."""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from .graph import Graph

__all__ = [
    "connected_components",
    "num_connected_components",
    "is_connected",
    "largest_component_subgraph",
    "graph_summary",
    "triangle_count",
]


def connected_components(g: Graph) -> np.ndarray:
    """Component id (0-based, by discovery order) for each vertex; BFS."""
    comp = np.full(g.n, -1, dtype=np.int64)
    cid = 0
    for start in range(g.n):
        if comp[start] != -1:
            continue
        comp[start] = cid
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in g.neighbors(u):
                if comp[v] == -1:
                    comp[v] = cid
                    queue.append(int(v))
        cid += 1
    return comp


def num_connected_components(g: Graph) -> int:
    """Number of connected components of ``g``."""
    if g.n == 0:
        return 0
    return int(connected_components(g).max()) + 1


def is_connected(g: Graph) -> bool:
    """Whether ``g`` is connected (vacuously true for <= 1 vertex)."""
    return g.n <= 1 or num_connected_components(g) == 1


def largest_component_subgraph(g: Graph) -> Graph:
    """Induced subgraph on the largest connected component (relabelled)."""
    if g.n == 0:
        return g
    comp = connected_components(g)
    sizes = np.bincount(comp)
    target = int(sizes.argmax())
    keep = np.nonzero(comp == target)[0]
    remap: Dict[int, int] = {int(old): new for new, old in enumerate(keep)}
    edges: List = []
    for u, v in g.edges():
        if comp[u] == target and comp[v] == target:
            edges.append((remap[u], remap[v]))
    return Graph(len(keep), edges, name=g.name)


def triangle_count(g: Graph) -> int:
    """Exact triangle count via the MINBUCKET degree-ordering rule.

    Each vertex enumerates pairs of *higher* neighbours and checks the
    closing edge — the classic heuristic the paper generalises (Section 1,
    "Degree Based Approaches").  Serves both as a utility and as the
    smallest instance of the paper's degree-ordering idea.
    """
    rank = g.degree_order_rank()
    total = 0
    for u in range(g.n):
        nbrs = g.neighbors(u)
        higher = nbrs[rank[nbrs] > rank[u]]
        hs = set(int(x) for x in higher)
        for i, v in enumerate(higher):
            for w in higher[i + 1 :]:
                if int(w) in hs and g.has_edge(int(v), int(w)):
                    total += 1
    return total


def graph_summary(g: Graph) -> Dict[str, float]:
    """Table 1-style characteristics row."""
    return {
        "name": g.name,
        "nodes": g.n,
        "edges": g.m,
        "avg_deg": round(g.avg_degree(), 2),
        "max_deg": g.max_degree(),
        "skew": round(g.degree_skew(), 1),
        "components": num_connected_components(g),
    }
