"""Data-graph substrate: CSR graphs, generators, degree-sequence tools."""

from .degree import (
    is_lambda_balanced,
    lambda_balance,
    moment,
    power_law_exponent_fit,
    truncated_power_law_sequence,
)
from .generators import (
    chung_lu,
    chung_lu_power_law,
    erdos_renyi,
    grid_road_network,
    random_tree,
    ring_of_cliques,
    rmat,
)
from .graph import CSR, Graph
from .io import read_edge_list, write_edge_list
from .sampling import bfs_ball, induced_subgraph, random_induced_sample
from .properties import (
    connected_components,
    graph_summary,
    is_connected,
    largest_component_subgraph,
    num_connected_components,
    triangle_count,
)

__all__ = [
    "CSR",
    "Graph",
    "chung_lu",
    "chung_lu_power_law",
    "erdos_renyi",
    "rmat",
    "grid_road_network",
    "random_tree",
    "ring_of_cliques",
    "truncated_power_law_sequence",
    "lambda_balance",
    "is_lambda_balanced",
    "moment",
    "power_law_exponent_fit",
    "read_edge_list",
    "write_edge_list",
    "connected_components",
    "num_connected_components",
    "is_connected",
    "largest_component_subgraph",
    "graph_summary",
    "triangle_count",
    "induced_subgraph",
    "bfs_ball",
    "random_induced_sample",
]
