"""Degree-sequence utilities for the theory substrate (paper Sections 9-10).

The paper analyses the DB algorithm on Chung-Lu random graphs whose expected
degree sequence is *λ-balanced* (Section 9.2) or satisfies the *truncated
power law* (Section 9.2 / Claim 10.1).  This module constructs and checks
such sequences.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = [
    "truncated_power_law_sequence",
    "zipf_degree_sequence",
    "lambda_balance",
    "is_lambda_balanced",
    "power_law_exponent_fit",
    "moment",
]


def zipf_degree_sequence(
    n: int,
    gamma: float,
    avg_degree: float,
    max_degree: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Zipf-style heavy-tailed degree sequence with an explicit hub cap.

    ``d_i ∝ (i+1)^(-1/(gamma-1))`` rescaled to the requested average and
    clipped to ``[1, max_degree]``.  Unlike the Section 9 truncated power
    law this allows hubs well above ``sqrt(n)``, which is what the *real*
    Table 1 graphs look like (epinions: max degree 3558 vs avg 6) — used
    for the dataset stand-ins, not for the theory benches.
    """
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    raw = ranks ** (-1.0 / (gamma - 1.0))
    seq = raw * (avg_degree * n / raw.sum())
    cap = max_degree if max_degree is not None else n - 1
    seq = np.clip(seq, 1.0, cap)
    # Rescale the tail so the clip does not drag the average down.
    deficit = avg_degree * n - seq.sum()
    if deficit > 0:
        tail = seq < cap
        seq[tail] += deficit / max(tail.sum(), 1)
        seq = np.clip(seq, 1.0, cap)
    if rng is not None:
        rng.shuffle(seq)
    return seq


def truncated_power_law_sequence(
    n: int, alpha: float, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Degree sequence following the paper's truncated power law.

    For each ``0 <= j <= (1/2) log2 n`` the number of vertices with degree
    ``2^j`` is ``Theta(n / 2^(alpha*j))`` (paper Section 9.2).  We realise
    the Theta as ``round(n / 2^(alpha*j))`` (at least one vertex per level)
    and pad with degree-1 vertices so that exactly ``n`` degrees are
    produced.  Degrees never exceed ``sqrt(n)`` as the Chung-Lu model
    requires.

    Parameters
    ----------
    n:
        Number of vertices.
    alpha:
        Power-law exponent, must lie in the open interval ``(1, 2)``.
    rng:
        Optional generator used to shuffle the sequence (so vertex ids are
        not correlated with degree — important for the 1-D block partition
        of the distributed engine).
    """
    if not (1.0 < alpha < 2.0):
        raise ValueError(f"alpha must be in (1, 2), got {alpha}")
    if n < 4:
        raise ValueError("need at least 4 vertices for a power-law sequence")
    levels = int(math.floor(0.5 * math.log2(n)))
    degrees: list = []
    for j in range(levels, -1, -1):
        count = max(1, int(round(n / 2 ** (alpha * j))))
        degree = min(2**j, int(math.isqrt(n)))
        degrees.extend([degree] * count)
        if len(degrees) >= n:
            break
    if len(degrees) < n:
        degrees.extend([1] * (n - len(degrees)))
    seq = np.array(degrees[:n], dtype=np.float64)
    if rng is not None:
        rng.shuffle(seq)
    return seq


def moment(degrees: np.ndarray, s: float) -> float:
    """``sum_u d_u^s`` over the degree sequence."""
    return float(np.sum(np.asarray(degrees, dtype=np.float64) ** s))


def lambda_balance(degrees: np.ndarray, max_power: int = 4) -> float:
    """Smallest λ for which the sequence is λ-balanced up to ``max_power``.

    A sequence is λ-balanced (paper Section 9.2) if for all integers
    ``a, b >= 1``::

        sum_u d_u^(a+b)  <=  λ · (sum_u d_u^a) · (sum_u d_u^b)

    We return ``max_{1<=a<=b, a+b<=max_power+1} ratio`` where ratio is the
    LHS/RHS quotient — the tightest λ over the examined powers (the paper's
    proofs only ever use small constant powers).
    """
    d = np.asarray(degrees, dtype=np.float64)
    if np.any(d < 1):
        raise ValueError("balanced sequences require d_u >= 1 for all u")
    worst = 0.0
    for a in range(1, max_power + 1):
        for b in range(a, max_power + 1):
            lhs = moment(d, a + b)
            rhs = moment(d, a) * moment(d, b)
            worst = max(worst, lhs / rhs)
    return worst


def is_lambda_balanced(degrees: np.ndarray, lam: float, max_power: int = 4) -> bool:
    """Whether the sequence is λ-balanced for the given λ (small powers)."""
    return lambda_balance(degrees, max_power=max_power) <= lam


def power_law_exponent_fit(degrees: np.ndarray) -> float:
    """Crude MLE-style estimate of the power-law exponent of a sequence.

    Used by tests/benchmarks to confirm generated graphs have the intended
    skew.  Uses the continuous Hill estimator ``1 + n / sum(ln(d/d_min))``
    restricted to degrees ``>= 2``.
    """
    d = np.asarray(degrees, dtype=np.float64)
    d = d[d >= 2]
    if len(d) == 0:
        return float("inf")
    dmin = d.min()
    denom = np.sum(np.log(d / dmin)) + 1e-12
    return float(1.0 + len(d) / denom)
