"""Random-graph generators used throughout the evaluation.

The paper's experiments use (i) real SNAP graphs — which we substitute with
Chung-Lu power-law stand-ins (see DESIGN.md §2), (ii) R-MAT graphs for weak
scaling (Section 8.4) with the Graph500 parameters, and (iii) the Chung-Lu
model for the theoretical analysis (Section 9.2).  A perturbed-grid
generator models the road network (low skew), and Erdős–Rényi is provided
for tests.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .degree import truncated_power_law_sequence
from .graph import Graph

__all__ = [
    "chung_lu",
    "chung_lu_power_law",
    "erdos_renyi",
    "rmat",
    "grid_road_network",
    "random_tree",
    "ring_of_cliques",
]


def _dedupe(n: int, pairs: np.ndarray) -> list:
    """Canonicalize (u<v), drop self loops and duplicates."""
    seen = set()
    out = []
    for u, v in pairs:
        u = int(u)
        v = int(v)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        out.append(key)
    return out


def chung_lu(
    degrees: Sequence[float],
    rng: np.random.Generator,
    name: str = "chung-lu",
) -> Graph:
    """Sample a Chung-Lu graph for the given expected degree sequence.

    Each edge ``(u, v)``, ``u < v``, is present independently with
    probability ``min(1, d_u d_v / (2m))`` where ``2m = sum_u d_u``
    (paper Section 9.2).  Implemented with vectorized numpy sampling over
    the upper-triangular probability matrix in row blocks, so graphs with a
    few thousand vertices sample in milliseconds without materialising an
    ``n x n`` matrix.
    """
    d = np.asarray(degrees, dtype=np.float64)
    n = len(d)
    two_m = d.sum()
    if two_m <= 0:
        return Graph(n, [], name=name)
    edges = []
    # Row-block sampling keeps peak memory at O(block * n).
    block = max(1, int(4_000_000 // max(n, 1)))
    for start in range(0, n, block):
        stop = min(n, start + block)
        rows = d[start:stop, None] * d[None, :] / two_m
        np.clip(rows, 0.0, 1.0, out=rows)
        sample = rng.random(rows.shape) < rows
        # keep strictly upper-triangular part (u < v) of the full matrix
        us, vs = np.nonzero(sample)
        us = us + start
        keep = us < vs
        edges.append(np.column_stack((us[keep], vs[keep])))
    all_edges = np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64)
    return Graph(n, _dedupe(n, all_edges), name=name)


def chung_lu_power_law(
    n: int,
    alpha: float,
    rng: np.random.Generator,
    name: str = "",
    avg_degree_target: Optional[float] = None,
) -> Graph:
    """Chung-Lu graph with a truncated power-law expected degree sequence.

    ``alpha`` in ``(1, 2)`` controls skew: values near 1 give heavy-tailed
    graphs (epinions/enron-like), values near 2 give mild tails.  If
    ``avg_degree_target`` is given, the sequence is rescaled (degrees
    capped to ``sqrt(n)`` to stay inside the Chung-Lu regime).
    """
    seq = truncated_power_law_sequence(n, alpha, rng=rng)
    if avg_degree_target is not None:
        scale = avg_degree_target * n / seq.sum()
        seq = np.maximum(1.0, seq * scale)
        seq = np.minimum(seq, math.isqrt(n))
    return chung_lu(seq, rng, name=name or f"chung-lu(a={alpha})")


def erdos_renyi(n: int, p: float, rng: np.random.Generator, name: str = "er") -> Graph:
    """G(n, p) random graph (test workloads)."""
    if not (0.0 <= p <= 1.0):
        raise ValueError("p must be in [0, 1]")
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(len(iu)) < p
    pairs = np.column_stack((iu[mask], ju[mask]))
    return Graph(n, [(int(u), int(v)) for u, v in pairs], name=name)


def rmat(
    scale: int,
    edge_factor: int,
    rng: np.random.Generator,
    a: float = 0.5,
    b: float = 0.1,
    c: float = 0.1,
    d: float = 0.3,
    name: str = "rmat",
) -> Graph:
    """R-MAT recursive matrix generator (Chakrabarti et al., SDM 2004).

    Defaults are the Graph 500 parameters the paper quotes for its weak
    scaling study (A=0.5, B=0.1, C=0.1, D=0.3, edge factor 16).  Self loops
    and duplicate edges are discarded, matching common practice, so the
    realised edge count is slightly below ``edge_factor * 2^scale``.
    """
    if abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError("R-MAT probabilities must sum to 1")
    n = 1 << scale
    m_target = edge_factor * n
    # Vectorized: at each of `scale` levels every edge picks a quadrant.
    us = np.zeros(m_target, dtype=np.int64)
    vs = np.zeros(m_target, dtype=np.int64)
    thresholds = np.array([a, a + b, a + b + c])
    for level in range(scale):
        r = rng.random(m_target)
        quad = np.searchsorted(thresholds, r, side="right")
        bit = 1 << (scale - level - 1)
        us += np.where((quad == 2) | (quad == 3), bit, 0)
        vs += np.where((quad == 1) | (quad == 3), bit, 0)
    pairs = np.column_stack((us, vs))
    return Graph(n, _dedupe(n, pairs), name=name)


def grid_road_network(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    rewire_prob: float = 0.02,
    name: str = "road",
) -> Graph:
    """Planar-ish low-skew graph modelling roadNetCA (Table 1).

    A ``rows x cols`` grid with a small fraction of random long-range
    rewires (freeways).  Maximum degree stays tiny, matching the road
    network's max degree of 14 versus avg 1.3 in the paper.
    """
    n = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = set()
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.add((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.add((vid(r, c), vid(r + 1, c)))
    extra = int(rewire_prob * len(edges))
    for _ in range(extra):
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return Graph(n, sorted(edges), name=name)


def random_tree(n: int, rng: np.random.Generator, name: str = "tree") -> Graph:
    """Uniform random recursive tree on ``n`` vertices (test workloads)."""
    edges = [(int(rng.integers(i)), i) for i in range(1, n)]
    return Graph(n, edges, name=name)


def ring_of_cliques(
    num_cliques: int, clique_size: int, name: str = "ring-of-cliques"
) -> Graph:
    """Deterministic structured graph with many short cycles (test workloads)."""
    n = num_cliques * clique_size
    edges = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
        nxt = ((c + 1) % num_cliques) * clique_size
        if num_cliques > 1 and (base, nxt) not in edges and (nxt, base) not in edges:
            edges.append((base, nxt) if base < nxt else (nxt, base))
    return Graph(n, sorted(set(edges)), name=name)
