"""Subgraph sampling from large data graphs.

Used by the verification harness (cross-checking the fast counters
against brute force on induced samples of graphs too big to brute force
whole) and for scale sweeps.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from .graph import Graph

__all__ = ["induced_subgraph", "bfs_ball", "random_induced_sample"]


def induced_subgraph(g: Graph, vertices: Sequence[int]) -> Tuple[Graph, Dict[int, int]]:
    """Induced subgraph on ``vertices`` (relabelled 0..len-1).

    Returns the subgraph and the old->new vertex mapping.
    """
    keep = sorted(set(int(v) for v in vertices))
    for v in keep:
        if not (0 <= v < g.n):
            raise ValueError(f"vertex {v} out of range")
    remap = {old: new for new, old in enumerate(keep)}
    keep_set = set(keep)
    edges: List[Tuple[int, int]] = []
    for u in keep:
        for v in g.neighbors(u):
            v = int(v)
            if u < v and v in keep_set:
                edges.append((remap[u], remap[v]))
    return Graph(len(keep), edges, name=f"{g.name}|induced{len(keep)}"), remap


def bfs_ball(g: Graph, center: int, max_vertices: int) -> List[int]:
    """Vertices of the BFS ball around ``center``, capped at ``max_vertices``."""
    if not (0 <= center < g.n):
        raise ValueError("center out of range")
    seen: Set[int] = {center}
    order = [center]
    queue = deque([center])
    while queue and len(order) < max_vertices:
        u = queue.popleft()
        for v in g.neighbors(u):
            v = int(v)
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
                if len(order) >= max_vertices:
                    break
    return order


def random_induced_sample(
    g: Graph,
    max_vertices: int,
    rng: np.random.Generator,
    connected: bool = True,
) -> Tuple[Graph, Dict[int, int]]:
    """Random induced sample: a BFS ball around a random center (connected)
    or a uniform vertex subset."""
    if g.n == 0:
        return g, {}
    if connected:
        center = int(rng.integers(g.n))
        verts = bfs_ball(g, center, max_vertices)
    else:
        size = min(max_vertices, g.n)
        verts = list(rng.choice(g.n, size=size, replace=False))
    return induced_subgraph(g, verts)
