"""Thin JSON-over-HTTP surface for :class:`CountingService` (stdlib only).

Endpoints
---------
``POST /count``      synchronous counting; body ``{"dataset", "query", ...}``
``POST /jobs``       asynchronous counting; returns the job to poll (202)
``GET  /jobs/<id>``  job status/progress (+ result when done)
``GET  /jobs``       recent jobs, newest first
``GET  /datasets``   registered datasets with engine cache stats
``GET  /healthz``    liveness probe
``GET  /stats``      cache/queue/request counters, executor pools, metrics
``GET  /metrics``    Prometheus text exposition of the obs registry

Status mapping: unknown dataset/query/job → 404, malformed request →
400, saturated queue → 429 (with ``Retry-After``), sync deadline → 504.
Built on :class:`http.server.ThreadingHTTPServer`: one thread per
connection, which is exactly what the service's admission control is
sized against.

Every request is instrumented: a trace ID is minted per request (echoed
in the ``X-Repro-Trace-Id`` response header and threaded through the
engine), the per-endpoint counter/latency histogram from
:mod:`repro.obs.catalogue` is updated, and — with ``--access-log`` —
one structured JSON line per request goes to stderr.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Tuple

from .. import obs
from ..obs import catalogue as obs_catalogue
from .jobs import ServiceSaturated, UnknownJobError
from .registry import UnknownDatasetError
from .service import (
    BadRequestError,
    CountingService,
    ServiceTimeout,
    UnknownQueryError,
)

__all__ = ["ServiceHTTPServer", "make_server", "serve_forever"]

#: request body size guard (queries are tiny; anything bigger is abuse)
MAX_BODY_BYTES = 1 << 20

#: fixed endpoints; anything else maps to "other" so one misbehaving
#: client scanning paths cannot explode the metric label cardinality
_ENDPOINTS = frozenset(
    {"/", "/healthz", "/stats", "/datasets", "/jobs", "/count", "/metrics"}
)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`CountingService`."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    # headers and body go out as two small writes on a keep-alive socket;
    # without this, Nagle + delayed ACK pins every response at ~40ms
    disable_nagle_algorithm = True

    #: last status sent on this connection (set by the send helpers; read
    #: by the instrumentation wrapper — handler instances are per-thread)
    _status: int = 0
    _trace_id: str = ""

    # ------------------------------------------------------------------
    @property
    def service(self) -> CountingService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: object) -> None:  # noqa: A003
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    def _send_json(self, status: int, doc: dict, retry_after: Optional[int] = None) -> None:
        body = json.dumps(doc).encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            self.send_header("X-Repro-Trace-Id", self._trace_id)
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if self._trace_id:
            self.send_header("X-Repro-Trace-Id", self._trace_id)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, status: int, message: str, retry_after: Optional[int] = None) -> None:
        # error paths may leave an unread request body on the socket; on a
        # keep-alive connection the next request would be parsed starting
        # inside those stale bytes, so close instead of resyncing
        self.close_connection = True
        self._send_json(status, {"error": message}, retry_after=retry_after)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequestError("request body must be a JSON object")
        if length > MAX_BODY_BYTES:
            raise BadRequestError(f"request body over {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"bad JSON body: {exc}") from None
        if not isinstance(doc, dict):
            raise BadRequestError("request body must be a JSON object")
        return doc

    def _count_args(self) -> Tuple[str, object, dict]:
        doc = self._read_body()
        dataset = doc.pop("dataset", None)
        query = doc.pop("query", None)
        if not isinstance(dataset, str) or not dataset:
            raise BadRequestError("missing 'dataset' (string)")
        if query is None:
            raise BadRequestError("missing 'query' (name or edge dict)")
        return dataset, query, doc

    # ------------------------------------------------------------------
    # request instrumentation
    # ------------------------------------------------------------------
    def _endpoint_label(self) -> str:
        """Bounded-cardinality endpoint label for the request metrics."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in _ENDPOINTS:
            return path
        if path.startswith("/jobs/"):
            return "/jobs/{id}"
        return "other"

    def _instrumented(self, method: str, handler: Callable[[], None]) -> None:
        """Wrap one request: trace ID, latency histogram, access log."""
        self._status = 0
        self._trace_id = obs.new_trace_id()
        token = obs.set_trace_id(self._trace_id)
        t0 = time.perf_counter()
        try:
            handler()
        finally:
            obs.reset_trace_id(token)
            duration = time.perf_counter() - t0
            endpoint = self._endpoint_label()
            obs_catalogue.http_requests().inc(
                endpoint=endpoint, method=method, status=str(self._status or 0)
            )
            obs_catalogue.http_request_seconds().observe(duration, endpoint=endpoint)
            if self.server.access_log:  # type: ignore[attr-defined]
                line = json.dumps(
                    {
                        "ts": round(time.time(), 3),
                        "method": method,
                        "path": self.path,
                        "status": self._status or 0,
                        "duration_ms": round(duration * 1000, 3),
                        "trace_id": self._trace_id,
                    },
                    sort_keys=True,
                )
                print(line, file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._instrumented("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._instrumented("POST", self._handle_post)

    def _handle_get(self) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                # liveness probes poll in tight loops: answer from two
                # plain reads, never the full /stats walk
                self._send_json(200, {
                    "ok": True,
                    "uptime_seconds": time.time() - self.service.started_at,
                    "datasets": len(self.service.registry),
                })
            elif path == "/stats":
                self._send_json(200, self.service.stats())
            elif path == "/metrics":
                self._send_text(200, obs.render_prometheus(), obs.CONTENT_TYPE)
            elif path == "/datasets":
                self._send_json(200, {"datasets": self.service.datasets()})
            elif path == "/jobs":
                jobs = [j.to_dict(include_result=False) for j in self.service.queue.jobs()]
                self._send_json(200, {"jobs": jobs})
            elif path.startswith("/jobs/"):
                job = self.service.job(path[len("/jobs/"):])
                self._send_json(200, {"job": job.to_dict()})
            else:
                self._error(404, f"no such endpoint {path!r}")
        except UnknownJobError as exc:
            self._error(404, f"unknown job {exc.args[0]!r}")
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            self._error(500, f"{type(exc).__name__}: {exc}")

    def _handle_post(self) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/")
            if path == "/count":
                dataset, query, params = self._count_args()
                timeout = params.pop("timeout", None)
                try:
                    timeout = float(timeout) if timeout is not None else 300.0
                except (TypeError, ValueError):
                    raise BadRequestError(f"bad timeout {timeout!r}") from None
                result, cached = self.service.count(
                    dataset, query, timeout=timeout, **params,
                )
                self._send_json(200, {"cached": cached, "result": result.to_dict()})
            elif path == "/jobs":
                dataset, query, params = self._count_args()
                job = self.service.submit(dataset, query, **params)
                # a cache-hit submission is already done: ship the result
                # in the 202 so well-behaved clients never need to poll
                self._send_json(202, {"job": job.to_dict(include_result=job.done)})
            else:
                self._error(404, f"no such endpoint {path!r}")
        except (UnknownDatasetError, UnknownQueryError) as exc:
            self._error(404, str(exc))
        except BadRequestError as exc:
            self._error(400, str(exc))
        except ServiceSaturated as exc:
            self._error(429, str(exc), retry_after=1)
        except ServiceTimeout as exc:
            self._error(504, str(exc))
        except Exception as exc:  # noqa: BLE001 - boundary: report, don't die
            self._error(500, f"{type(exc).__name__}: {exc}")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`CountingService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: CountingService,
                 verbose: bool = False, access_log: bool = False) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        #: structured JSON request log to stderr (off by default so tests
        #: and embedded servers stay quiet)
        self.access_log = access_log

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def make_server(
    service: CountingService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    access_log: bool = False,
) -> ServiceHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) without starting to serve."""
    return ServiceHTTPServer((host, port), service, verbose=verbose,
                             access_log=access_log)


def serve_forever(server: ServiceHTTPServer) -> threading.Thread:
    """Serve on a daemon thread; returns the thread (stop via ``server.shutdown()``)."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    return thread
