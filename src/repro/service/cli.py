"""``repro-serve`` — boot the counting service over HTTP.

Examples::

    repro-serve --dataset condmat --dataset enron --port 8321
    repro-serve --dataset web=/data/web.edges --method ps-vec --workers 4
    python -m repro.service --dataset condmat --port 0   # ephemeral port

``--workers``/``--queue-depth``/``--cache-size`` size the service
(execution threads, admission bound, LRU entries); ``--method``,
``--trials``, ``--seed``, ``--engine-workers`` and ``--partition`` set
the :class:`EngineConfig` defaults every request inherits.  SIGINT and
SIGTERM shut down cleanly: the HTTP server stops accepting, the job
queue drains, and every engine's shard-worker pool (and its
shared-memory segments) is released before exit.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

__all__ = ["run_serve", "main"]


def run_serve(
    args: argparse.Namespace, stop: Optional[threading.Event] = None
) -> int:
    """Build the service from parsed args and serve until SIGINT/SIGTERM.

    ``stop`` injects an external shutdown trigger (tests embed the server
    in a thread and set it); signal handlers are only installed when
    running on the main thread, where Python allows them.
    """
    # imported here so `repro-count <other subcommand>` never pays for
    # (or depends on) the service/HTTP stack
    from ..engine import EngineConfig
    from .httpd import make_server, serve_forever
    from .registry import DatasetRegistry
    from .service import CountingService

    config = EngineConfig(
        method=args.method,
        trials=args.trials,
        seed=args.seed,
        workers=args.engine_workers,
        partition_strategy=args.partition,
    )
    registry = DatasetRegistry(config)
    for spec in args.datasets or ["condmat"]:
        try:
            entry = registry.load(spec)
        except (OSError, ValueError) as exc:
            print(f"error loading dataset {spec!r}: {exc}", file=sys.stderr)
            registry.close()
            return 2
        registry.warm(entry.name)
        print(f"[repro-serve] dataset {entry.name}: n={entry.graph.n} m={entry.graph.m} "
              f"({entry.source})")

    service = CountingService(
        registry=registry,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_size=args.cache_size,
    )
    try:
        server = make_server(service, host=args.host, port=args.port,
                             verbose=args.verbose, access_log=args.access_log)
    except OSError as exc:
        # bind failure (port taken, bad host): release the worker threads
        # and any warm shard pools instead of leaking them to atexit
        print(f"error binding {args.host}:{args.port}: {exc}", file=sys.stderr)
        service.close()
        return 2
    stop = stop if stop is not None else threading.Event()

    def _shutdown(signum: int, _frame: object) -> None:  # pragma: no cover - signal path
        print(f"[repro-serve] signal {signum}: shutting down", flush=True)
        stop.set()

    previous = {}
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous[sig] = signal.signal(sig, _shutdown)
    thread = serve_forever(server)
    print(f"[repro-serve] listening on {server.url} "
          f"(workers={args.workers}, queue={args.queue_depth}, "
          f"cache={args.cache_size}, method={args.method})", flush=True)
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.shutdown()
        thread.join(timeout=5.0)
        server.server_close()
        service.close()
        print("[repro-serve] stopped; pools released", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    # the flag set lives in repro.cli (pure argparse, shared with the
    # `repro-count serve` subcommand)
    from ..cli import add_serve_arguments

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve color-coding subgraph counts over JSON/HTTP "
        "(job queue, result cache, warm dataset engines)",
    )
    add_serve_arguments(parser)
    return run_serve(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
