"""Bounded job queue with worker threads and admission control.

Every counting execution — synchronous ``POST /count`` included — flows
through one :class:`JobQueue`: a bounded ``queue.Queue`` drained by N
daemon worker threads.  Admission control is the queue bound: when all
workers are busy and the backlog is full, :meth:`submit` raises
:class:`ServiceSaturated` and the HTTP layer answers ``429`` instead of
letting latency grow without bound.

Jobs carry their full lifecycle (``queued → running → done | failed``)
with timestamps, so ``GET /jobs/<id>`` doubles as a progress probe; a
bounded history of finished jobs is kept for late pollers.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional

from ..obs import catalogue as obs_catalogue

__all__ = ["Job", "JobQueue", "ServiceSaturated", "UnknownJobError"]

#: job lifecycle states
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class ServiceSaturated(RuntimeError):
    """Queue bound hit: the service sheds this request (HTTP 429)."""


class UnknownJobError(KeyError):
    """Job id not queued, running, or in the finished history (HTTP 404)."""


class Job:
    """One unit of counting work moving through the queue.

    ``fn`` is the zero-argument closure the service builds (engine call +
    cache fill); the queue only schedules it.  ``event`` fires on
    completion — the sync path submits and waits on it.
    """

    _seq = itertools.count(1)

    def __init__(self, fn: Callable[[], object], label: str = "", fingerprint: str = "") -> None:
        self.id = uuid.uuid4().hex[:16]
        self.seq = next(Job._seq)
        self.label = label
        self.fingerprint = fingerprint
        self.fn = fn
        self.state = QUEUED
        self.result: Optional[object] = None
        self.error: Optional[str] = None
        self.created_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.event = threading.Event()
        #: latest refining-CI snapshot from the engine's progress hook
        #: (single whole-dict assignment: readers see either the previous
        #: complete snapshot or the new one, never a torn mix)
        self.progress_detail: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.state in (DONE, FAILED)

    @property
    def progress(self) -> float:
        """Lifecycle progress in [0, 1].

        0.0 queued, 1.0 finished; while running, the engine's trial
        progress (``trials_done / max_trials``) when a snapshot has
        arrived, else the coarse 0.5 midpoint.  Adaptive runs that stop
        early jump from their last ratio straight to 1.0 — progress is
        monotone either way.
        """
        if self.done:
            return 1.0
        if self.state == RUNNING:
            detail = self.progress_detail
            if detail:
                done_trials = int(detail.get("trials_done", 0))  # type: ignore[arg-type]
                cap = int(detail.get("max_trials", 0))  # type: ignore[arg-type]
                if cap > 0:
                    return min(0.95, max(0.05, done_trials / cap))
            return 0.5
        return 0.0

    def update_progress(self, snapshot: Dict[str, object]) -> None:
        """Engine progress hook: publish the latest refining-CI snapshot."""
        self.progress_detail = snapshot

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; True when it did within timeout."""
        return self.event.wait(timeout)

    def to_dict(self, include_result: bool = True) -> Dict[str, object]:
        """JSON-safe job status (the ``GET /jobs/<id>`` payload)."""
        doc: Dict[str, object] = {
            "id": self.id,
            "label": self.label,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "progress": self.progress,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        detail = self.progress_detail
        if detail is not None:
            doc["progress_detail"] = detail
        if self.error is not None:
            doc["error"] = self.error
        if include_result and self.state == DONE and self.result is not None:
            result = self.result
            doc["result"] = result.to_dict() if hasattr(result, "to_dict") else result
        return doc


class JobQueue:
    """Fixed worker-thread pool over a bounded FIFO of :class:`Job`.

    ``depth`` bounds the *backlog* (jobs accepted but not yet running);
    with ``workers`` threads the service holds at most ``workers +
    depth`` admitted jobs at a time.  ``history`` bounds how many
    finished jobs stay pollable — softly: a job that finished less than
    ``retention_seconds`` ago survives the bound (so a just-acknowledged
    id can always be polled, even under a flood of cache-hit
    submissions), up to a hard cap of ``8 × history``.
    """

    def __init__(
        self,
        workers: int = 2,
        depth: int = 32,
        history: int = 256,
        retention_seconds: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker thread")
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = int(depth)
        self._retention = float(retention_seconds)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(maxsize=self.depth)
        self._jobs: Dict[str, Job] = {}
        self._finished: List[str] = []
        self._history = int(history)
        self._lock = threading.Lock()
        self._closed = False
        self._submitted = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._running = 0
        self._threads = [
            threading.Thread(target=self._worker_loop, name=f"repro-job-{i}", daemon=True)
            for i in range(int(workers))
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Admit ``job`` or raise :class:`ServiceSaturated` when full.

        The closed-check and the enqueue are one atomic step: a job can
        never land in the queue after :meth:`close` has drained the
        backlog (where it would sit unserved forever).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is closed")
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._rejected += 1
                raise ServiceSaturated(
                    f"job queue saturated ({self.depth} queued); retry later"
                ) from None
            self._jobs[job.id] = job
            self._submitted += 1
        obs_catalogue.service_queue_depth().set(self._queue.qsize())
        return job

    def _trim_history_locked(self) -> None:
        """Drop old finished jobs past the bound (call with the lock held).

        Jobs younger than the retention window survive the count bound so
        an id handed out moments ago never 404s on its first poll; the
        ``8 × history`` hard cap keeps memory bounded under sustained
        cache-hit submission floods.
        """
        now = time.time()
        while len(self._finished) > self._history:
            oldest = self._jobs.get(self._finished[0])
            if (
                oldest is not None
                and oldest.finished_at is not None
                and now - oldest.finished_at < self._retention
                and len(self._finished) <= 8 * self._history
            ):
                break
            self._jobs.pop(self._finished.pop(0), None)

    def expose(self, job: Job) -> Job:
        """Make ``job`` visible to :meth:`get` before it is submitted.

        The service publishes a job to its in-flight table and submits it
        as two steps; exposing it first means a concurrent joiner's
        ``202`` id can always be polled, even in the window before (or a
        failure of) the actual submission.
        """
        with self._lock:
            self._jobs[job.id] = job
        return job

    def adopt(self, job: Job) -> Job:
        """Record an already-finished job (cache-hit submissions) so it
        stays pollable through :meth:`get` like any executed job."""
        if not job.done:
            raise ValueError("only finished jobs can be adopted")
        with self._lock:
            self._jobs[job.id] = job
            self._finished.append(job.id)
            self._trim_history_locked()
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def jobs(self, limit: int = 50) -> List[Job]:
        """Most recent jobs, newest first."""
        with self._lock:
            ordered = sorted(self._jobs.values(), key=lambda j: j.seq, reverse=True)
        return ordered[: max(0, limit)]

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            job.state = RUNNING
            job.started_at = time.time()
            obs_catalogue.service_job_wait_seconds().observe(
                max(0.0, job.started_at - job.created_at)
            )
            obs_catalogue.service_queue_depth().set(self._queue.qsize())
            with self._lock:
                self._running += 1
            try:
                job.result = job.fn()
                job.state = DONE
            except Exception as exc:  # noqa: BLE001 - reported to the poller
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = FAILED
            finally:
                job.finished_at = time.time()
                obs_catalogue.service_job_run_seconds().observe(
                    max(0.0, job.finished_at - (job.started_at or job.finished_at))
                )
                obs_catalogue.service_jobs().inc(state=job.state)
                with self._lock:
                    self._running -= 1
                    if job.state == DONE:
                        self._completed += 1
                    else:
                        self._failed += 1
                    self._finished.append(job.id)
                    self._trim_history_locked()
                job.event.set()
                self._queue.task_done()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Exact queue counters (the ``/stats`` payload)."""
        with self._lock:
            return {
                "workers": len(self._threads),
                "depth": self.depth,
                "queued": self._queue.qsize(),
                "running": self._running,
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "cancelled": self._cancelled,
                "rejected": self._rejected,
            }

    def close(self, timeout: float = 5.0) -> None:
        """Stop the worker threads (idempotent).

        Queued-but-not-started jobs are **cancelled** (marked failed,
        waiters released) rather than drained, so shutdown latency is
        bounded by the jobs already running — a SIGTERM with a full
        backlog never hangs for backlog × job-duration.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        while True:  # empty the backlog so the sentinels enqueue promptly
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                job.error = "cancelled: service shutting down"
                job.state = FAILED
                job.finished_at = time.time()
                with self._lock:
                    self._cancelled += 1
                job.event.set()
            self._queue.task_done()
        for _ in self._threads:
            # blocks at most until a worker finishes its current job
            self._queue.put(None)
        for t in self._threads:
            t.join(timeout=timeout)
