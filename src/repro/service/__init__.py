"""Async counting service: job queue, result cache, dataset registry.

This package turns the one-shot counting library into a long-lived
deployable system.  A :class:`CountingService` owns named, pre-converted
datasets (each with a warm :class:`~repro.engine.CountingEngine` whose
plan caches and ``ps-dist`` shard pools persist across requests), runs
every execution through a bounded :class:`~repro.service.jobs.JobQueue`
(worker threads + 429 admission control), and serves repeats from a
fingerprint-keyed :class:`~repro.service.cache.ResultCache` in
microseconds::

    from repro.service import CountingService

    service = CountingService()
    service.registry.load("condmat")
    result, cached = service.count("condmat", "glet1", trials=5, seed=1)
    job = service.submit("condmat", "wiki", trials=5)   # async: poll job.id

Over the wire (``repro-serve`` / ``python -m repro.service``) the same
surface is JSON-over-HTTP — see :mod:`repro.service.httpd` for the
endpoints and :mod:`repro.service.client` for the Python client.
"""

from .cache import ResultCache
from .jobs import Job, JobQueue, ServiceSaturated, UnknownJobError
from .registry import DatasetEntry, DatasetRegistry, UnknownDatasetError
from .service import (
    BadRequestError,
    CountingService,
    ServiceTimeout,
    UnknownQueryError,
)

__all__ = [
    "CountingService",
    "DatasetRegistry",
    "DatasetEntry",
    "ResultCache",
    "JobQueue",
    "Job",
    "ServiceSaturated",
    "ServiceTimeout",
    "BadRequestError",
    "UnknownDatasetError",
    "UnknownQueryError",
    "UnknownJobError",
]
