"""Keyed LRU result cache with hit/miss/eviction accounting.

The service keys entries on the engine's stable
:func:`~repro.engine.fingerprint.request_fingerprint` — equal keys
guarantee bit-identical :class:`~repro.engine.result.RunResult` payloads,
so a hit can be served without touching the counting stack at all
(microseconds instead of the full DP).  The cache is thread-safe; every
public operation takes one lock, and the counters are exact even under
the hammer-test levels of concurrency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..obs import catalogue as obs_catalogue

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded thread-safe LRU mapping fingerprint → cached value.

    ``capacity <= 0`` disables caching entirely (every ``get`` is a miss,
    ``put`` is a no-op) — useful for benchmarking the uncached path
    without restructuring the service.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Optional[object]]:
        """``(hit, value)`` for ``key``; a hit refreshes its LRU position."""
        value: Optional[object] = None
        with self._lock:
            hit = key in self._entries
            if hit:
                self._entries.move_to_end(key)
                self._hits += 1
                value = self._entries[key]
            else:
                self._misses += 1
        # metric update outside the cache lock (obs has its own)
        obs_catalogue.service_cache().inc(result="hit" if hit else "miss")
        return hit, value

    def put(self, key: str, value: object) -> None:
        """Insert/refresh ``key``, evicting the least recently used entry
        when over capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Exact counters + size (stable keys; the ``/stats`` payload)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "size": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        return (
            f"ResultCache(size={snap['size']}/{snap['capacity']}, "
            f"hits={snap['hits']}, misses={snap['misses']}, "
            f"evictions={snap['evictions']})"
        )
