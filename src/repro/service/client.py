"""Stdlib Python client for the counting service (tests + benchmarks).

:class:`ServiceClient` speaks the JSON-over-HTTP protocol of
:mod:`repro.service.httpd` over a plain :class:`http.client.HTTPConnection`
(one keep-alive connection per client, so cached-path latency measures
the service, not TCP handshakes).  Errors map back to typed exceptions so
callers can tell saturation (retry) from bad requests (don't).

``python -m repro.service.client --base-url URL --self-test`` drives a
live server through every endpoint and exits non-zero on any failure —
CI's service-smoke job runs exactly that against a booted ``repro-serve``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
from typing import List, Optional, Tuple, Union
from urllib.parse import urlparse

__all__ = ["ServiceClient", "ServiceAPIError", "SaturatedError", "main", "self_test"]


class ServiceAPIError(RuntimeError):
    """Non-2xx answer from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class SaturatedError(ServiceAPIError):
    """HTTP 429 — the job queue shed this request; retry later."""


class ServiceClient:
    """One keep-alive JSON client bound to a service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parsed = urlparse(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"need an http://host:port base url, got {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):  # one silent retry over a fresh connection
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {"error": raw.decode("utf-8", "replace")}
        if response.status == 429:
            raise SaturatedError(response.status, doc.get("error", "saturated"))
        if response.status >= 400:
            raise ServiceAPIError(response.status, doc.get("error", "request failed"))
        return doc

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def datasets(self) -> List[dict]:
        return self._request("GET", "/datasets")["datasets"]

    def count(
        self, dataset: str, query: Union[str, dict], **params: object
    ) -> Tuple[dict, bool]:
        """Synchronous count: ``(result_dict, served_from_cache)``."""
        body = {"dataset": dataset, "query": query, **params}
        doc = self._request("POST", "/count", body)
        return doc["result"], bool(doc["cached"])

    def submit(self, dataset: str, query: Union[str, dict], **params: object) -> dict:
        """Asynchronous count: returns the job dict to poll by ``id``."""
        body = {"dataset": dataset, "query": query, **params}
        return self._request("POST", "/jobs", body)["job"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self) -> List[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def wait(self, job_id: str, timeout: float = 60.0, interval: float = 0.05) -> dict:
        """Poll ``GET /jobs/<id>`` until the job finishes; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout:g}s")
            time.sleep(interval)


# ----------------------------------------------------------------------
# endpoint self-test (CI's service-smoke client pass)
# ----------------------------------------------------------------------

def self_test(base_url: str, dataset: Optional[str] = None, query: str = "glet1") -> int:
    """Drive every endpoint of a live server; 0 on success, 1 on failure.

    Asserts the sync/async/cached paths agree bit for bit and that the
    cache hit counter moves — the end-to-end smoke CI runs against a
    freshly booted ``repro-serve``.
    """
    checks: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append(name)
        status = "ok" if ok else "FAIL"
        print(f"[self-test] {name:28s} {status}  {detail}")
        if not ok:
            raise AssertionError(f"endpoint check failed: {name} {detail}")

    with ServiceClient(base_url) as client:
        health = client.healthz()
        check("GET /healthz", bool(health.get("ok")), f"uptime={health.get('uptime_seconds', 0):.1f}s")
        datasets = client.datasets()
        check("GET /datasets", len(datasets) > 0, f"{[d['name'] for d in datasets]}")
        dataset = dataset or datasets[0]["name"]

        first, cached_first = client.count(dataset, query, trials=2, seed=0)
        check("POST /count (cold)", not cached_first and first["trials"] == 2,
              f"estimate={first['estimate']:.6g}")
        second, cached_second = client.count(dataset, query, trials=2, seed=0)
        check("POST /count (cached)", cached_second
              and second["colorful_counts"] == first["colorful_counts"],
              "bit-identical")

        job = client.submit(dataset, query, trials=2, seed=1)
        check("POST /jobs", job["state"] in ("queued", "running", "done"), f"id={job['id']}")
        done = client.wait(job["id"], timeout=120.0)
        check("GET /jobs/<id>", done["state"] == "done",
              f"progress={done['progress']}")
        again = client.submit(dataset, query, trials=2, seed=1)
        finished = client.wait(again["id"], timeout=120.0)
        check("POST /jobs (cached)",
              finished["result"]["colorful_counts"] == done["result"]["colorful_counts"],
              "bit-identical")
        check("GET /jobs", any(j["id"] == job["id"] for j in client.jobs()), "listed")

        stats = client.stats()
        cache = stats["cache"]
        check("GET /stats", cache["hits"] >= 2 and cache["misses"] >= 1,
              f"hits={cache['hits']} misses={cache['misses']}")

        for bad, expect in (
            ({"dataset": "nope", "query": query}, 404),
            ({"dataset": dataset, "query": "nope"}, 404),
            ({"dataset": dataset, "query": query, "trials": 0}, 400),
        ):
            try:
                client.count(**bad)
            except ServiceAPIError as exc:
                check(f"error path {expect}", exc.status == expect, f"got {exc.status}")
            else:
                check(f"error path {expect}", False, "no error raised")

    print(f"[self-test] all {len(checks)} endpoint checks passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.client",
        description="Python client for the repro counting service",
    )
    parser.add_argument("--base-url", required=True, help="e.g. http://127.0.0.1:8321")
    parser.add_argument("--self-test", action="store_true",
                        help="drive every endpoint, exit non-zero on failure")
    parser.add_argument("--dataset", default=None, help="dataset for --self-test")
    parser.add_argument("--query", default="glet1", help="query for --self-test")
    args = parser.parse_args(argv)
    if args.self_test:
        try:
            return self_test(args.base_url, dataset=args.dataset, query=args.query)
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            print(f"[self-test] FAILED: {exc}", file=sys.stderr)
            return 1
    with ServiceClient(args.base_url) as client:
        print(json.dumps(client.healthz(), indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
