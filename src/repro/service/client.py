"""Stdlib Python client for the counting service (tests + benchmarks).

:class:`ServiceClient` speaks the JSON-over-HTTP protocol of
:mod:`repro.service.httpd` over a plain :class:`http.client.HTTPConnection`
(one keep-alive connection per client, so cached-path latency measures
the service, not TCP handshakes).  Errors map back to typed exceptions so
callers can tell saturation (retry) from bad requests (don't).

``python -m repro.service.client --base-url URL --self-test`` drives a
live server through every endpoint and exits non-zero on any failure —
CI's service-smoke job runs exactly that against a booted ``repro-serve``.
``--obs-check`` additionally issues scripted traffic and reconciles the
server's ``/metrics`` exposition against the client-side tally, exactly
— CI's obs-smoke job runs it.
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import time
from typing import List, Optional, Tuple, Union
from urllib.parse import urlparse

__all__ = [
    "ServiceClient",
    "ServiceAPIError",
    "SaturatedError",
    "main",
    "obs_check",
    "self_test",
]


class ServiceAPIError(RuntimeError):
    """Non-2xx answer from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class SaturatedError(ServiceAPIError):
    """HTTP 429 — the job queue shed this request; retry later."""


class ServiceClient:
    """One keep-alive JSON client bound to a service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parsed = urlparse(base_url if "//" in base_url else f"http://{base_url}")
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"need an http://host:port base url, got {base_url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):  # one silent retry over a fresh connection
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=payload, headers=headers)
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            doc = {"error": raw.decode("utf-8", "replace")}
        if response.status == 429:
            raise SaturatedError(response.status, doc.get("error", "saturated"))
        if response.status >= 400:
            raise ServiceAPIError(response.status, doc.get("error", "request failed"))
        return doc

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def datasets(self) -> List[dict]:
        return self._request("GET", "/datasets")["datasets"]

    def count(
        self, dataset: str, query: Union[str, dict], **params: object
    ) -> Tuple[dict, bool]:
        """Synchronous count: ``(result_dict, served_from_cache)``."""
        body = {"dataset": dataset, "query": query, **params}
        doc = self._request("POST", "/count", body)
        return doc["result"], bool(doc["cached"])

    def submit(self, dataset: str, query: Union[str, dict], **params: object) -> dict:
        """Asynchronous count: returns the job dict to poll by ``id``."""
        body = {"dataset": dataset, "query": query, **params}
        return self._request("POST", "/jobs", body)["job"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self) -> List[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def metrics_text(self) -> str:
        """Raw ``GET /metrics`` body (Prometheus text exposition).

        Bypasses :meth:`_request` — the body is text, not JSON."""
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request("GET", "/metrics")
                response = self._conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, BrokenPipeError):
                self.close()
                if attempt:
                    raise
        if response.status >= 400:
            raise ServiceAPIError(response.status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def wait(self, job_id: str, timeout: float = 60.0, interval: float = 0.05) -> dict:
        """Poll ``GET /jobs/<id>`` until the job finishes; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout:g}s")
            time.sleep(interval)


# ----------------------------------------------------------------------
# endpoint self-test (CI's service-smoke client pass)
# ----------------------------------------------------------------------

def self_test(base_url: str, dataset: Optional[str] = None, query: str = "glet1") -> int:
    """Drive every endpoint of a live server; 0 on success, 1 on failure.

    Asserts the sync/async/cached paths agree bit for bit and that the
    cache hit counter moves — the end-to-end smoke CI runs against a
    freshly booted ``repro-serve``.
    """
    checks: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append(name)
        status = "ok" if ok else "FAIL"
        print(f"[self-test] {name:28s} {status}  {detail}")
        if not ok:
            raise AssertionError(f"endpoint check failed: {name} {detail}")

    with ServiceClient(base_url) as client:
        health = client.healthz()
        check("GET /healthz", bool(health.get("ok")), f"uptime={health.get('uptime_seconds', 0):.1f}s")
        datasets = client.datasets()
        check("GET /datasets", len(datasets) > 0, f"{[d['name'] for d in datasets]}")
        dataset = dataset or datasets[0]["name"]

        first, cached_first = client.count(dataset, query, trials=2, seed=0)
        check("POST /count (cold)", not cached_first and first["trials"] == 2,
              f"estimate={first['estimate']:.6g}")
        second, cached_second = client.count(dataset, query, trials=2, seed=0)
        check("POST /count (cached)", cached_second
              and second["colorful_counts"] == first["colorful_counts"],
              "bit-identical")

        job = client.submit(dataset, query, trials=2, seed=1)
        check("POST /jobs", job["state"] in ("queued", "running", "done"), f"id={job['id']}")
        done = client.wait(job["id"], timeout=120.0)
        check("GET /jobs/<id>", done["state"] == "done",
              f"progress={done['progress']}")
        again = client.submit(dataset, query, trials=2, seed=1)
        finished = client.wait(again["id"], timeout=120.0)
        check("POST /jobs (cached)",
              finished["result"]["colorful_counts"] == done["result"]["colorful_counts"],
              "bit-identical")
        check("GET /jobs", any(j["id"] == job["id"] for j in client.jobs()), "listed")

        stats = client.stats()
        cache = stats["cache"]
        check("GET /stats", cache["hits"] >= 2 and cache["misses"] >= 1,
              f"hits={cache['hits']} misses={cache['misses']}")

        for bad, expect in (
            ({"dataset": "nope", "query": query}, 404),
            ({"dataset": dataset, "query": "nope"}, 404),
            ({"dataset": dataset, "query": query, "trials": 0}, 400),
        ):
            try:
                client.count(**bad)
            except ServiceAPIError as exc:
                check(f"error path {expect}", exc.status == expect, f"got {exc.status}")
            else:
                check(f"error path {expect}", False, "no error raised")

    print(f"[self-test] all {len(checks)} endpoint checks passed")
    return 0


def obs_check(base_url: str, dataset: Optional[str] = None, query: str = "glet1") -> int:
    """Scripted traffic + exact ``/metrics`` reconciliation; 0 on success.

    Scrapes the Prometheus exposition before and after a known mix of
    requests and asserts the *deltas* match the client-side tally bit for
    bit — counters are exact, not sampled.  Only endpoints whose request
    count this routine fully controls are reconciled (job polling loops
    issue a data-dependent number of GETs, so ``/jobs/{id}`` is not).
    """
    from ..obs.exposition import parse_prometheus_text

    checks: List[str] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append(name)
        print(f"[obs-check] {name:34s} {'ok' if ok else 'FAIL'}  {detail}")
        if not ok:
            raise AssertionError(f"metrics reconciliation failed: {name} {detail}")

    def sample(doc: dict, name: str, **labels: str) -> float:
        key = tuple(sorted(labels.items()))
        return float(doc.get(name, {}).get(key, 0.0))

    def total(doc: dict, name: str) -> float:
        return float(sum(doc.get(name, {}).values()))

    with ServiceClient(base_url) as client:
        dataset = dataset or client.datasets()[0]["name"]
        before = parse_prometheus_text(client.metrics_text())

        # unique seeds per invocation so reruns against a warm server
        # still produce exactly 4 cache misses
        base_seed = int(time.time()) % 1_000_000

        for i in range(3):  # 3 cold sync counts: 3 misses, 3 engine runs
            client.count(dataset, query, trials=2, seed=base_seed + i)
        for i in range(3):  # 3 warm repeats: 3 hits, zero engine runs
            result, cached = client.count(dataset, query, trials=2, seed=base_seed + i)
            check(f"repeat {i} served from cache", cached)
        job = client.submit(dataset, query, trials=2, seed=base_seed + 3)  # miss
        client.wait(job["id"], timeout=120.0)
        again = client.submit(dataset, query, trials=2, seed=base_seed + 3)  # hit
        if not again.get("state") == "done":
            client.wait(again["id"], timeout=120.0)
        client.healthz()
        client.healthz()
        try:
            client._request("GET", "/no-such-endpoint")
        except ServiceAPIError as exc:
            check("scan path answers 404", exc.status == 404)

        after = parse_prometheus_text(client.metrics_text())

    def delta(name: str, **labels: str) -> float:
        return sample(after, name, **labels) - sample(before, name, **labels)

    check(
        "http /count POSTs == 6",
        delta("repro_http_requests_total",
              endpoint="/count", method="POST", status="200") == 6.0,
    )
    check(
        "http /count latency count == 6",
        delta("repro_http_request_seconds_count", endpoint="/count") == 6.0,
    )
    check(
        "http /healthz GETs == 2",
        delta("repro_http_requests_total",
              endpoint="/healthz", method="GET", status="200") == 2.0,
    )
    check(
        "http scan 404s == 1",
        delta("repro_http_requests_total",
              endpoint="other", method="GET", status="404") == 1.0,
    )
    check(
        "cache misses == 4",
        delta("repro_service_cache_total", result="miss") == 4.0,
        f"hit delta={delta('repro_service_cache_total', result='hit'):g}",
    )
    check(
        "cache hits == 4",
        delta("repro_service_cache_total", result="hit") == 4.0,
    )
    check(
        "jobs done == 4",
        delta("repro_service_jobs_total", state="done") == 4.0,
    )
    check(
        "engine requests == 4",
        total(after, "repro_engine_requests_total")
        - total(before, "repro_engine_requests_total") == 4.0,
    )
    engine_trials = total(after, "repro_engine_trials_total") - total(
        before, "repro_engine_trials_total"
    )
    check("engine trials == 8", engine_trials == 8.0, "4 runs x 2 trials")

    print(f"[obs-check] all {len(checks)} reconciliation checks passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.client",
        description="Python client for the repro counting service",
    )
    parser.add_argument("--base-url", required=True, help="e.g. http://127.0.0.1:8321")
    parser.add_argument("--self-test", action="store_true",
                        help="drive every endpoint, exit non-zero on failure")
    parser.add_argument("--obs-check", action="store_true",
                        help="scripted traffic + exact /metrics reconciliation")
    parser.add_argument("--dataset", default=None, help="dataset for --self-test")
    parser.add_argument("--query", default="glet1", help="query for --self-test")
    args = parser.parse_args(argv)
    if args.self_test:
        try:
            return self_test(args.base_url, dataset=args.dataset, query=args.query)
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            print(f"[self-test] FAILED: {exc}", file=sys.stderr)
            return 1
    if args.obs_check:
        try:
            return obs_check(args.base_url, dataset=args.dataset, query=args.query)
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            print(f"[obs-check] FAILED: {exc}", file=sys.stderr)
            return 1
    with ServiceClient(args.base_url) as client:
        print(json.dumps(client.healthz(), indent=2))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
