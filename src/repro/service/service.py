"""`CountingService` — the long-lived orchestrator behind the HTTP API.

One service owns the three amortizing layers and threads every request
through them in order:

1. :class:`~repro.service.cache.ResultCache` — keyed on the engine's
   stable request fingerprint; a hit is served without touching the
   counting stack;
2. **in-flight dedup** (single flight) — concurrent identical requests
   attach to the one job already computing that fingerprint instead of
   recomputing it, so the cache-miss cost is paid exactly once per key;
3. :class:`~repro.service.jobs.JobQueue` — bounded admission + worker
   threads; sync requests submit-and-wait, async requests submit-and-poll.

Datasets (graphs + warm engines + shard pools) live in the
:class:`~repro.service.registry.DatasetRegistry`; results are
bit-identical to a direct :meth:`CountingEngine.count` with the same
parameters, which the concurrency hammer test asserts.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple, Union

from .. import obs
from ..counting.xp import BackendUnavailable, resolve_namespace
from ..engine import CountingEngine, CountRequest, EngineConfig, PrecisionSpec, RunResult
from ..engine.backends import DEFAULT_REGISTRY
from ..engine.fingerprint import request_fingerprint
from ..query.library import MAX_NODE_LABEL, coerce_node_labels, resolve_query_name
from ..query.query import QueryGraph
from .cache import ResultCache
from .jobs import Job, JobQueue, ServiceSaturated, UnknownJobError
from .registry import DatasetEntry, DatasetRegistry, UnknownDatasetError

__all__ = [
    "CountingService",
    "BadRequestError",
    "ServiceTimeout",
    "ServiceSaturated",
    "UnknownDatasetError",
    "UnknownJobError",
    "UnknownQueryError",
]

#: request fields a client may override per call (everything else is
#: fixed by the service's EngineConfig)
REQUEST_FIELDS = (
    "method", "trials", "seed", "num_colors", "workers", "coloring_strategy",
    "namespace", "labels", "precision",
)

#: upper bounds on the untrusted per-request knobs — one HTTP client
#: must not be able to materialize gigabytes of colorings, fork
#: thousands of processes, or cache unbounded shard pools
MAX_TRIALS = 1_000
MAX_WORKERS = 32
MAX_NUM_COLORS = 64
#: wire label values share the CLI's cap (well below int64 so label
#: arithmetic can never overflow and typos fail loudly)
MAX_LABEL = MAX_NODE_LABEL


class BadRequestError(ValueError):
    """Malformed or unsupported request parameters (HTTP 400)."""


class UnknownQueryError(KeyError):
    """Query name not in the paper library (HTTP 404)."""


class ServiceTimeout(RuntimeError):
    """A synchronous request ran past its deadline (HTTP 504)."""


class CountingService:
    """Async counting service: dataset registry + job queue + result cache.

    ``workers``/``queue_depth`` size the execution layer, ``cache_size``
    the result cache; ``config`` is the engine-wide default every request
    inherits from (method, trials, seed, palette, shard workers, ...).
    """

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        config: Optional[EngineConfig] = None,
        workers: int = 2,
        queue_depth: int = 32,
        cache_size: int = 256,
        history: int = 256,
    ) -> None:
        if registry is not None and config is not None and registry.config is not config:
            raise ValueError("pass the EngineConfig either via registry or config, not both")
        self.registry = registry if registry is not None else DatasetRegistry(config)
        self.config = self.registry.config
        self.cache = ResultCache(cache_size)
        self.queue = JobQueue(workers=workers, depth=queue_depth, history=history)
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._inflight: Dict[str, Job] = {}
        self._closed = False
        self._count_requests = 0
        self._job_requests = 0
        self._computed = 0
        self._inflight_joins = 0

    # ------------------------------------------------------------------
    # request construction
    # ------------------------------------------------------------------
    def resolve_query(self, spec: Union[str, dict, QueryGraph]) -> QueryGraph:
        """Turn a wire query spec into a :class:`QueryGraph`.

        A string names one of the ten Figure 8 paper queries or a
        labeled library template; a dict carries explicit structure
        (``{"edges": [[u, v], ...], "name": ...}``) for ad-hoc queries.
        """
        if isinstance(spec, QueryGraph):
            return spec
        if isinstance(spec, str):
            try:
                return resolve_query_name(spec)
            except KeyError as exc:
                raise UnknownQueryError(str(exc)) from None
        if isinstance(spec, dict):
            unknown = sorted(set(spec) - {"edges", "name", "labels"})
            if unknown:
                # reject rather than drop: a typo'd 'labels' key silently
                # producing unlabeled counts would be the worst failure mode
                raise BadRequestError(
                    f"unknown query spec fields {unknown}; "
                    "allowed: ['edges', 'labels', 'name']"
                )
            edges = spec.get("edges")
            if not edges:
                raise BadRequestError("custom query needs a non-empty 'edges' list")
            try:
                pairs = [(int(u), int(v)) for u, v in edges]
                query = QueryGraph(pairs, name=str(spec.get("name", "custom")))
            except (TypeError, ValueError) as exc:
                raise BadRequestError(f"bad query edges: {exc}") from None
            if spec.get("labels") is not None:
                # labels nested in an ad-hoc query spec; a top-level
                # request 'labels' field still wins (effective_query)
                query = query.with_labels(self.coerce_label_spec(query, spec["labels"]))
            return query
        raise BadRequestError(f"query spec must be a name or edge dict, got {type(spec).__name__}")

    def coerce_label_spec(self, query: QueryGraph, value: object) -> Dict[object, int]:
        """Wire label spec → ``{query node: int}`` covering every node.

        Two spellings are accepted: a JSON object keyed by node name
        (``{"0": 1, "1": 0, ...}`` — JSON object keys are strings, so
        they are matched against ``str(node)``), or a list with one label
        per node in the query's deterministic node order.  The grammar
        (and its coercion/bounds discipline) is shared with the CLI via
        :func:`repro.query.library.coerce_node_labels`.
        """
        try:
            return coerce_node_labels(query, value, max_label=MAX_LABEL)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from None

    def build_request(self, query: QueryGraph, params: Dict[str, object]) -> CountRequest:
        """Validate wire params and build the resolved :class:`CountRequest`.

        Coerces JSON value types (``"2"``/``2.0`` → ``2``, so equivalent
        spellings share a fingerprint) and rejects unknown fields,
        unknown methods, ``trials < 1``, ``num_colors < k``, malformed
        ``precision`` documents and malformed label specs eagerly, so a
        queued job can only fail for genuinely exceptional reasons.

        ``precision`` accepts everything
        :meth:`~repro.engine.config.PrecisionSpec.coerce` does on the
        wire: a bare trial count (sugar for a fixed run) or a mapping
        with any of ``rel_error`` / ``confidence`` / ``min_trials`` /
        ``max_trials``.
        """
        unknown = sorted(set(params) - set(REQUEST_FIELDS))
        if unknown:
            raise BadRequestError(
                f"unknown request fields {unknown}; allowed: {sorted(REQUEST_FIELDS)}"
            )
        kwargs: Dict[str, object] = {}
        labels = params.get("labels")
        if labels is not None:
            kwargs["labels"] = self.coerce_label_spec(query, labels)
        precision = params.get("precision")
        if precision is not None:
            try:
                kwargs["precision"] = PrecisionSpec.coerce(precision)
            except (TypeError, ValueError) as exc:
                raise BadRequestError(f"bad value for 'precision': {exc}") from None
        for field in REQUEST_FIELDS:
            if field in ("labels", "precision"):
                continue
            value = params.get(field)
            if value is None:
                continue
            coerce = (
                str if field in ("method", "coloring_strategy", "namespace") else int
            )
            try:
                coerced = coerce(value)
            except (TypeError, ValueError):
                raise BadRequestError(
                    f"bad value for {field!r}: {value!r} (need {coerce.__name__})"
                ) from None
            if coerce is int and isinstance(value, float) and value != coerced:
                raise BadRequestError(f"bad value for {field!r}: {value!r} (need int)")
            kwargs[field] = coerced
        try:
            request = CountRequest(query=query, **kwargs).resolved(self.config)
        except TypeError as exc:
            raise BadRequestError(str(exc)) from None
        if request.method != "auto" and request.method not in DEFAULT_REGISTRY:
            raise BadRequestError(
                f"unknown method {request.method!r}; use one of "
                f"{DEFAULT_REGISTRY.names()} or 'auto'"
            )
        if request.namespace is not None:
            # resolve eagerly: a typo'd or unavailable namespace (cupy
            # with no device) is a 400 here, not a dead queued job
            try:
                resolve_namespace(str(request.namespace))
            except (ValueError, BackendUnavailable) as exc:
                raise BadRequestError(str(exc)) from None
        if not 1 <= int(request.trials) <= MAX_TRIALS:
            raise BadRequestError(f"trials must be in [1, {MAX_TRIALS}]")
        if request.effective_precision().max_trials > MAX_TRIALS:
            raise BadRequestError(
                f"precision.max_trials must be in [1, {MAX_TRIALS}]"
            )
        if not 1 <= int(request.workers) <= MAX_WORKERS:
            raise BadRequestError(f"workers must be in [1, {MAX_WORKERS}]")
        if request.num_colors is not None and not (
            query.k <= int(request.num_colors) <= MAX_NUM_COLORS
        ):
            raise BadRequestError(
                f"num_colors must be in [k={query.k}, {MAX_NUM_COLORS}]"
            )
        return request

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(
        self,
        entry: DatasetEntry,
        request: CountRequest,
        fp: str,
        trace_id: Optional[str] = None,
    ) -> RunResult:
        """Run one admitted request on the dataset's engine, fill the cache.

        The in-flight job for this fingerprint (still registered — it is
        only popped in the ``finally`` below) receives the engine's
        refining-CI snapshots, so ``GET /jobs/<id>`` shows live trial
        progress while an adaptive run converges.  ``trace_id`` is the
        admitting HTTP request's trace ID, re-bound here because this
        runs on a job-worker thread, not the handler's.
        """
        with self._lock:
            job = self._inflight.get(fp)
        on_progress = job.update_progress if job is not None else None
        token = obs.set_trace_id(trace_id) if trace_id is not None else None
        try:
            result = entry.engine.count(request, on_progress=on_progress)
            self.cache.put(fp, result)
            with self._lock:
                self._computed += 1
            return result
        finally:
            if token is not None:
                obs.reset_trace_id(token)
            with self._lock:
                self._inflight.pop(fp, None)

    def _admit(
        self,
        dataset: str,
        query_spec: Union[str, dict, QueryGraph],
        params: Dict[str, object],
    ) -> Tuple[Optional[RunResult], Optional[Job], str]:
        """Cache lookup → in-flight join → queue submit, in that order.

        Returns ``(result, job, fingerprint)`` where exactly one of
        ``result`` (cache hit) and ``job`` (to wait on / poll) is set.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
        entry = self.registry.count_request(dataset)
        query = self.resolve_query(query_spec)
        request = self.build_request(query, params)
        effective = request.effective_query()
        if effective.labels is not None and entry.graph.labels is None:
            # fail labeled requests eagerly with a 400, not a queued job
            # that can only die with a 500
            raise BadRequestError(
                f"dataset {dataset!r} carries no vertex labels; labeled "
                "queries need a labeled dataset"
            )
        if request.method != "auto":
            # surface unsupported query/palette/label combinations as an
            # eager 400 with the backend's own (accurate) reason — e.g.
            # treelet rejects labels, ps-vec rejects palettes over 62
            backend = DEFAULT_REGISTRY.get(request.method)
            try:
                backend.check(effective, request.num_colors)
            except ValueError as exc:
                raise BadRequestError(str(exc)) from None
        # the generation suffix retires cache entries when a dataset is
        # re-registered under the same name with different contents
        fp = request_fingerprint(
            f"{dataset}@g{entry.generation}", request, self.config
        )
        # cache lookup and in-flight check are one atomic step: a worker
        # fills the cache *before* it drops its in-flight entry (which
        # needs this same lock), so a miss here always finds the job —
        # each fingerprint is computed exactly once
        with self._lock:
            hit, value = self.cache.get(fp)
            if hit:
                return value, None, fp  # type: ignore[return-value]
            job = self._inflight.get(fp)
            if job is not None:
                self._inflight_joins += 1
                return None, job, fp
            label = f"{dataset}/{query.name or 'custom'}"
            # capture the admitting request's trace ID into the closure:
            # the job runs on a worker thread where the handler's
            # contextvar binding is not visible
            trace_id = obs.current_trace_id()
            job = Job(
                lambda: self._execute(entry, request, fp, trace_id),
                label=label,
                fingerprint=fp,
            )
            self._inflight[fp] = job
            # visible to GET /jobs/<id> from the instant a joiner can see
            # it, even before (or without) a successful queue submission
            self.queue.expose(job)
        try:
            self.queue.submit(job)
        except ServiceSaturated as exc:
            with self._lock:
                self._inflight.pop(fp, None)
            # a concurrent identical request may have joined this job in
            # the window before the pop; fail it loudly so no waiter
            # sleeps to its timeout on a job that will never run
            job.error = f"rejected: {exc}"
            job.state = "failed"
            job.finished_at = time.time()
            job.event.set()
            self.queue.adopt(job)  # pollable + history-trimmed like any job
            raise
        return None, job, fp

    def count(
        self,
        dataset: str,
        query: Union[str, dict, QueryGraph],
        timeout: Optional[float] = 300.0,
        **params: object,
    ) -> Tuple[RunResult, bool]:
        """Synchronous counting: ``(RunResult, served_from_cache)``.

        Bit-identical to ``CountingEngine.count`` with the same resolved
        parameters.  Raises :class:`ServiceSaturated` when the queue is
        full and :class:`ServiceTimeout` when the deadline passes.
        """
        with self._lock:
            self._count_requests += 1
        result, job, _fp = self._admit(dataset, query, params)
        if result is not None:
            return result, True
        assert job is not None
        if not job.wait(timeout):
            raise ServiceTimeout(f"request still {job.state} after {timeout:g}s")
        if job.state != "done":
            error = job.error or "job failed"
            if error.startswith("rejected:"):
                # joined a job whose submission was shed by admission
                # control — this request was effectively rejected too
                raise ServiceSaturated(error)
            raise RuntimeError(error)
        return job.result, False  # type: ignore[return-value]

    def submit(
        self, dataset: str, query: Union[str, dict, QueryGraph], **params: object
    ) -> Job:
        """Asynchronous counting: admit and return the job to poll.

        A cache hit still returns a job — already ``done``, carrying the
        cached result — so clients poll one uniform shape.
        """
        with self._lock:
            self._job_requests += 1
        result, job, fp = self._admit(dataset, query, params)
        if job is not None:
            return job
        done = Job(lambda: result, label="cached", fingerprint=fp)
        done.state = "done"
        done.result = result
        done.started_at = done.finished_at = time.time()
        done.event.set()
        return self.queue.adopt(done)

    def job(self, job_id: str) -> Job:
        """Look up a submitted job by id (raises :class:`UnknownJobError`)."""
        return self.queue.get(job_id)

    # ------------------------------------------------------------------
    # observability + lifecycle
    # ------------------------------------------------------------------
    def datasets(self) -> List[Dict[str, object]]:
        return self.registry.describe()

    def stats(self) -> Dict[str, object]:
        """One JSON-safe snapshot of every layer (``GET /stats``)."""
        with self._lock:
            requests = {
                "count": self._count_requests,
                "jobs": self._job_requests,
                "computed": self._computed,
                "inflight_joins": self._inflight_joins,
                "inflight": len(self._inflight),
            }
        executors: Dict[str, List[Dict[str, object]]] = {}
        for name in self.registry.names():
            engine: CountingEngine = self.registry.get(name).engine
            pools = [ex.describe() for ex in engine.executors()]
            if pools:
                executors[name] = pools
        return {
            "uptime_seconds": time.time() - self.started_at,
            "requests": requests,
            "cache": self.cache.snapshot(),
            "queue": self.queue.stats(),
            "datasets": self.datasets(),
            "executors": executors,
            # the nested metrics snapshot mirrors GET /metrics (additive
            # key: existing /stats consumers are unaffected)
            "obs": obs.registry().snapshot(),
        }

    def close(self) -> None:
        """Drain the queue, stop workers, release every engine pool.

        Idempotent; the ``repro-serve`` signal handlers and the engine
        ``atexit`` hook both funnel through here, so a SIGTERM'd service
        leaves no worker processes or shared-memory segments behind.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.queue.close()
        self.registry.close()

    def __enter__(self) -> "CountingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            closed = self._closed
        return (
            f"CountingService(datasets={len(self.registry)}, "
            f"cache={self.cache.snapshot()['size']}, closed={closed})"
        )
