"""Named dataset registry: pre-converted graphs + warm counting engines.

Loading a graph, converting it to CSR and (for distributed methods)
spinning up a shard-worker pool are the expensive one-time costs the
service amortizes.  The registry does all of it **once per dataset**:

* builtin Table 1 stand-ins load by name (``"condmat"``);
* files load from edge-list or JSON paths, optionally aliased
  (``"web=/data/web.edges"``);
* every dataset gets one long-lived :class:`CountingEngine` sharing the
  service's :class:`EngineConfig` — its plan cache, partition cache and
  pooled ``ps-dist`` executors persist across requests;
* ``warm()`` pre-touches the CSR form and, when the config asks for a
  distributed method, starts the shard pool before traffic arrives.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bench.datasets import dataset as builtin_dataset, dataset_names
from ..engine import CountingEngine, EngineConfig
from ..engine.backends import DIST_METHOD
from ..graph.graph import Graph
from ..graph.io import load_graph_file

__all__ = ["DatasetEntry", "DatasetRegistry", "UnknownDatasetError"]


class UnknownDatasetError(KeyError):
    """Raised for a dataset name the registry does not hold (HTTP 404)."""

    def __init__(self, name: str, known: List[str]) -> None:
        super().__init__(name)
        self.name = name
        self.known = known

    def __str__(self) -> str:
        return f"unknown dataset {self.name!r}; registered: {self.known}"


@dataclass
class DatasetEntry:
    """One registered dataset: the shared graph plus its warm engine."""

    name: str
    graph: Graph
    engine: CountingEngine
    source: str = "builtin"
    #: bumped every time this name is (re)registered — the service keys
    #: its result cache on ``name@generation`` so replacing a dataset can
    #: never serve the old graph's counts as cache hits
    generation: int = 0
    #: exact request counter (service-level, guarded by the registry lock)
    requests: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def describe(self) -> Dict[str, object]:
        """JSON-safe summary (the ``GET /datasets`` row)."""
        return {
            "name": self.name,
            "n": self.graph.n,
            "m": self.graph.m,
            "source": self.source,
            "requests": self.requests,
            "engine": self.engine.stats.snapshot(),
        }


class DatasetRegistry:
    """Thread-safe collection of :class:`DatasetEntry` objects.

    One registry per service; engines share ``config`` so a request that
    omits a field inherits the service-wide default.
    """

    def __init__(self, config: Optional[EngineConfig] = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self._entries: Dict[str, DatasetEntry] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def add(self, name: str, graph: Graph, source: str = "custom") -> DatasetEntry:
        """Register ``graph`` under ``name`` with a fresh warm engine.

        Re-registering an existing name replaces it: the old engine is
        closed and the entry's ``generation`` is bumped, which retires
        every cached result keyed against the previous graph.
        """
        if not name:
            raise ValueError("dataset name must be non-empty")
        entry = DatasetEntry(
            name=name,
            graph=graph,
            engine=CountingEngine(graph, self.config),
            source=source,
        )
        with self._lock:
            old = self._entries.get(name)
            entry.generation = old.generation + 1 if old is not None else 0
            self._entries[name] = entry
        if old is not None:
            old.engine.close()
        return entry

    def load(self, spec: str) -> DatasetEntry:
        """Register a dataset from a CLI-style spec string.

        ``"condmat"`` loads the builtin Table 1 stand-in of that name;
        ``"alias=/path/to/file"`` loads an edge-list (or ``.json``) file
        under ``alias``; a bare path loads the file under its basename.
        """
        if "=" in spec:
            name, path = spec.split("=", 1)
            return self.add(name, load_graph_file(path, name=name), source=path)
        if spec in dataset_names():
            return self.add(spec, builtin_dataset(spec), source="builtin")
        name = os.path.basename(spec) or spec
        return self.add(name, load_graph_file(spec, name=name), source=spec)

    def warm(self, name: str) -> None:
        """Pre-build the expensive per-dataset artifacts before traffic.

        Touches the CSR conversion cache and — when the service config
        runs the distributed backend (``method="ps-dist"``) — starts the
        shard-worker pool so the first request pays none of the startup.
        """
        entry = self.get(name)
        entry.graph.to_csr()
        if self.config.method == DIST_METHOD and self.config.workers >= 1:
            entry.engine.executor_for(max(self.config.workers, 1))

    # ------------------------------------------------------------------
    def get(self, name: str) -> DatasetEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise UnknownDatasetError(name, self.names())
        return entry

    def count_request(self, name: str) -> DatasetEntry:
        """Like :meth:`get` but bumps the entry's request counter."""
        entry = self.get(name)
        with entry._lock:
            entry.requests += 1
        return entry

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> List[Dict[str, object]]:
        """Per-dataset summaries (``GET /datasets``)."""
        return [self.get(name).describe() for name in self.names()]

    def close(self) -> None:
        """Close every dataset engine (stops pooled shard workers)."""
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            entry.engine.close()
