"""repro — Color Coding Beyond Trees.

A reproduction of *"Subgraph Counting: Color Coding Beyond Trees"*
(Chakaravarthy, Kapralov, Murali, Petrini, Que, Sabharwal, Schieber;
IPDPS 2016): distributed color-coding for counting occurrences of
treewidth-2 query graphs in large data graphs.

Public surface (see subpackages for the full API):

* :mod:`repro.graph` — CSR data graphs and generators;
* :mod:`repro.query` — query graphs, treewidth, the Figure 8 library;
* :mod:`repro.decomposition` — decomposition trees and the plan heuristic;
* :mod:`repro.counting` — the PS baseline, the DB algorithm, the treelet
  DP, brute-force references and the color-coding estimator;
* :mod:`repro.engine` — the unified counting engine (pluggable backends,
  plan/partition caches, batch + process-parallel execution);
* :mod:`repro.distributed` — the simulated distributed engine;
* :mod:`repro.theory` — the Section 9 analysis toolkit;
* :mod:`repro.bench` — dataset stand-ins and the experiment harness.
"""

from . import counting, decomposition, distributed, engine, graph, motifs, query, tables

__version__ = "1.1.0"

# Convenience re-exports for the quickstart path.
from .counting import count, count_colorful, count_exact, estimate_matches, make_context
from .decomposition import build_decomposition, choose_plan, enumerate_plans
from .engine import CountingEngine, CountRequest, EngineConfig, PrecisionSpec, RunResult
from .graph import Graph
from .query import QueryGraph, paper_queries, paper_query

__all__ = [
    "Graph",
    "QueryGraph",
    "paper_query",
    "paper_queries",
    "CountingEngine",
    "CountRequest",
    "EngineConfig",
    "PrecisionSpec",
    "RunResult",
    "count",
    "count_colorful",
    "count_exact",
    "estimate_matches",
    "make_context",
    "build_decomposition",
    "choose_plan",
    "enumerate_plans",
    "counting",
    "decomposition",
    "distributed",
    "engine",
    "graph",
    "motifs",
    "query",
    "tables",
    "__version__",
]
