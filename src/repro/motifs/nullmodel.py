"""Null models for motif significance (degree-preserving randomisation).

Motif analysis (Milo et al., cited by the paper's introduction) compares
observed motif counts against an ensemble of random graphs with the same
degree sequence.  The standard generator is the double-edge-swap Markov
chain: repeatedly pick two edges ``(a,b)`` and ``(c,d)`` and rewire to
``(a,d)``/``(c,b)`` when that keeps the graph simple — the degree of
every vertex is untouched.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from ..graph.graph import Graph

__all__ = ["double_edge_swap", "null_ensemble"]


def double_edge_swap(
    g: Graph,
    rng: np.random.Generator,
    nswaps: Optional[int] = None,
    max_tries_factor: int = 20,
) -> Graph:
    """A degree-preserving randomisation of ``g``.

    Performs ``nswaps`` successful double edge swaps (default ``4 * m``,
    enough to decorrelate moderate graphs).  Swaps that would create self
    loops or parallel edges are rejected; gives up gracefully (returning
    the partially mixed graph) after ``max_tries_factor * nswaps``
    attempts, which only triggers on near-degenerate inputs such as
    stars.
    """
    if g.m < 2:
        return g
    target = nswaps if nswaps is not None else 4 * g.m
    edges: List[Tuple[int, int]] = list(g.edges())
    edge_set: Set[Tuple[int, int]] = set(edges)
    done = 0
    tries = 0
    max_tries = max_tries_factor * max(target, 1)
    while done < target and tries < max_tries:
        tries += 1
        i, j = rng.integers(len(edges)), rng.integers(len(edges))
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        # random orientation of the second edge
        if rng.random() < 0.5:
            c, d = d, c
        # proposed: (a, d) and (c, b)
        if a == d or c == b:
            continue
        e1 = (a, d) if a < d else (d, a)
        e2 = (c, b) if c < b else (b, c)
        if e1 in edge_set or e2 in edge_set or e1 == e2:
            continue
        edge_set.discard(edges[i])
        edge_set.discard(edges[j])
        edge_set.add(e1)
        edge_set.add(e2)
        edges[i] = e1
        edges[j] = e2
        done += 1
    return Graph(g.n, sorted(edge_set), name=f"{g.name}|null")


def null_ensemble(
    g: Graph,
    samples: int,
    rng: np.random.Generator,
    nswaps: Optional[int] = None,
) -> List[Graph]:
    """Independent degree-preserving randomisations of ``g``."""
    return [double_edge_swap(g, rng, nswaps=nswaps) for _ in range(samples)]
