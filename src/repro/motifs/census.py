"""Motif census: enumerate and count all small treewidth-2 motifs.

The applications motivating the paper (biological network analysis,
graphlet profiles) do not count a single query — they count *every*
motif of a given size and compare profiles across networks.  This module
provides:

* :func:`all_tw2_motifs` — every connected treewidth-≤2 graph on ``k``
  nodes, up to isomorphism (for ``k ≤ 5``; enumerated by brute force over
  edge subsets with canonical-form deduplication);
* :func:`motif_census` — the census vector of a data graph over a motif
  set, using the color-coding estimator per motif.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence

from ..engine import CountingEngine, CountRequest
from ..graph.graph import Graph
from ..query.automorphisms import automorphism_count
from ..query.isomorphism import canonical_form
from ..query.query import QueryGraph
from ..query.treewidth import is_treewidth_at_most_2

__all__ = ["all_tw2_motifs", "motif_census", "CensusEntry"]


def all_tw2_motifs(k: int) -> List[QueryGraph]:
    """All connected treewidth-≤2 graphs on ``k`` nodes, up to isomorphism.

    Brute-force enumeration over the ``2^(k choose 2)`` edge subsets with
    canonical-form deduplication — limited to ``k <= 5`` (1024 subsets).
    Named ``motif{k}-{index}`` in a deterministic order.
    """
    if not (2 <= k <= 5):
        raise ValueError("motif enumeration supported for 2 <= k <= 5")
    pairs = list(combinations(range(k), 2))
    seen = {}
    for mask in range(1, 1 << len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if (mask >> i) & 1]
        if len(edges) < k - 1:
            continue  # cannot be connected
        q = QueryGraph(edges, nodes=range(k))
        if not q.is_connected():
            continue
        if not is_treewidth_at_most_2(q):
            continue
        key = canonical_form(q)
        if key not in seen:
            seen[key] = q
    motifs = []
    for i, key in enumerate(sorted(seen, key=lambda fs: sorted(fs))):
        q = seen[key]
        q.name = f"motif{k}-{i}"
        motifs.append(q)
    return motifs


class CensusEntry:
    """One motif's census record."""

    __slots__ = ("motif", "match_estimate", "subgraph_estimate", "relative_std")

    def __init__(self, motif: QueryGraph, match_estimate: float, relative_std: float):
        self.motif = motif
        self.match_estimate = match_estimate
        self.subgraph_estimate = match_estimate / automorphism_count(motif)
        self.relative_std = relative_std

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CensusEntry({self.motif.name}, subgraphs~{self.subgraph_estimate:.3g})"
        )


def motif_census(
    g: Graph,
    motifs: Optional[Sequence[QueryGraph]] = None,
    k: int = 4,
    trials: int = 5,
    seed: int = 0,
    method: str = "db",
    num_colors: Optional[int] = None,
    engine: Optional[CountingEngine] = None,
) -> List[CensusEntry]:
    """Census vector of ``g`` over ``motifs`` (default: all size-``k``
    treewidth-2 motifs).

    Runs as one :meth:`CountingEngine.count_many` batch, so each motif's
    decomposition plan is built once and reused across trials — pass a
    shared ``engine`` (bound to the same ``g``) to also reuse plans
    across repeated censuses of one graph, e.g. sweeping trial counts
    or palettes.
    """
    motifs = list(motifs) if motifs is not None else all_tw2_motifs(k)
    if engine is not None and engine.graph is not g:
        raise ValueError("engine is bound to a different graph than g")
    engine = engine if engine is not None else CountingEngine(g)
    requests = [
        CountRequest(
            query=q,
            trials=trials,
            seed=seed + 7 * i,
            method=method,
            num_colors=num_colors,
        )
        for i, q in enumerate(motifs)
    ]
    results = engine.count_many(requests)
    return [
        CensusEntry(q, result.estimate, result.relative_std)
        for q, result in zip(motifs, results)
    ]
