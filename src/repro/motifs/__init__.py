"""Motif analysis on top of the counting engine (census, null models,
significance profiles) — the application workflow of the paper's intro."""

from .census import CensusEntry, all_tw2_motifs, motif_census
from .nullmodel import double_edge_swap, null_ensemble
from .significance import (
    MotifSignificance,
    motif_significance,
    significance_profile,
)

__all__ = [
    "all_tw2_motifs",
    "motif_census",
    "CensusEntry",
    "double_edge_swap",
    "null_ensemble",
    "MotifSignificance",
    "motif_significance",
    "significance_profile",
]
