"""Motif significance: z-scores against a degree-preserving null model.

The network-motif methodology (Milo et al., Science 2002 — the paper's
reference [23]): a motif is *significant* in a network when its count
deviates from the null ensemble by many standard deviations.  The
significance profile (normalised z-score vector across motifs) is the
classic fingerprint used to compare networks across domains, and the
workload that makes fast subgraph counting matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..counting.estimator import estimate_matches
from ..decomposition.planner import heuristic_plan
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .nullmodel import null_ensemble

__all__ = ["MotifSignificance", "motif_significance", "significance_profile"]


@dataclass
class MotifSignificance:
    """Observed-vs-null statistics for one motif."""

    motif_name: str
    observed: float
    null_mean: float
    null_std: float

    @property
    def z_score(self) -> float:
        if self.null_std > 0:
            return (self.observed - self.null_mean) / self.null_std
        return 0.0 if self.observed == self.null_mean else float("inf")

    @property
    def abundance(self) -> float:
        """Relative abundance (observed - null) / (observed + null)."""
        denom = self.observed + self.null_mean
        return (self.observed - self.null_mean) / denom if denom > 0 else 0.0


def motif_significance(
    g: Graph,
    motifs: Sequence[QueryGraph],
    null_samples: int = 5,
    trials: int = 4,
    seed: int = 0,
    method: str = "db",
) -> List[MotifSignificance]:
    """Z-scores of each motif's estimated count against the null ensemble.

    Both the observed network and every null sample are counted with the
    same color-coding estimator (same trial budget), so estimator noise
    affects numerator and denominator symmetrically.
    """
    rng = np.random.default_rng(seed)
    nulls = null_ensemble(g, null_samples, rng)
    out: List[MotifSignificance] = []
    for i, q in enumerate(motifs):
        plan = heuristic_plan(q)
        observed = estimate_matches(
            g, q, trials=trials, seed=seed + 31 * i, method=method, plan=plan
        ).estimate
        null_counts = [
            estimate_matches(
                nh, q, trials=trials, seed=seed + 31 * i + 7 * j + 1,
                method=method, plan=plan,
            ).estimate
            for j, nh in enumerate(nulls)
        ]
        out.append(
            MotifSignificance(
                motif_name=q.name,
                observed=observed,
                null_mean=float(np.mean(null_counts)),
                null_std=float(np.std(null_counts, ddof=1)) if len(null_counts) > 1 else 0.0,
            )
        )
    return out


def significance_profile(results: Sequence[MotifSignificance]) -> np.ndarray:
    """Normalised z-score vector (the Milo et al. "SP" fingerprint)."""
    zs = np.array([r.z_score for r in results], dtype=np.float64)
    zs[~np.isfinite(zs)] = 0.0
    norm = np.linalg.norm(zs)
    return zs / norm if norm > 0 else zs
