"""Structured tracing: spans, trace IDs, and Chrome trace-event export.

The API is built for a hot path that is *usually off*:

* ``obs.span(name, **args)`` returns a shared no-op context manager
  unless observability is enabled **and** a trace is actively being
  collected in this process.  The common case costs two module-global
  reads — cheap enough to leave in the vectorized DP sweep.
* Trace **IDs** ride a :mod:`contextvars` variable so they survive
  thread hops inside a process; crossing a ``fork`` boundary (trial
  pools, shard workers) they are re-established explicitly from pool
  initargs / pipe messages.
* Timestamps are ``time.perf_counter()`` (RP001-clean).  On Linux
  ``perf_counter`` is ``CLOCK_MONOTONIC``, which is shared across
  forked processes, so shard-worker span timestamps line up with the
  master's on the same timeline.

Export is the Chrome trace-event JSON format (``chrome://tracing`` /
Perfetto ``ui.perfetto.dev``): complete events (``"ph": "X"``) with
microsecond timestamps.  ``python -m repro.obs.view trace.json`` prints
a terminal summary of the same file.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import uuid
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from . import state

__all__ = [
    "new_trace_id",
    "current_trace_id",
    "set_trace_id",
    "reset_trace_id",
    "trace_id_scope",
    "Span",
    "NoopSpan",
    "Trace",
    "span",
    "active_trace",
    "install_trace",
    "start_trace",
    "finish_trace",
    "collect",
    "add_events",
    "chrome_events",
    "chrome_document",
    "write_chrome_trace",
]

#: one recorded span: name/trace_id/pid/tid/t0/dur/args
Event = Dict[str, Any]

_TRACE_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_obs_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID (random, not time-derived)."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> Optional[str]:
    """The trace ID bound to the current context, if any."""
    return _TRACE_ID.get()


def set_trace_id(trace_id: Optional[str]) -> "contextvars.Token[Optional[str]]":
    """Bind ``trace_id`` to the current context; returns a reset token."""
    return _TRACE_ID.set(trace_id)


def reset_trace_id(token: "contextvars.Token[Optional[str]]") -> None:
    """Undo a :func:`set_trace_id`."""
    _TRACE_ID.reset(token)


@contextmanager
def trace_id_scope(trace_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``trace_id`` for the duration of the ``with`` block."""
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


class Span:
    """A live timed section; records one event into ``trace`` on exit."""

    __slots__ = ("_trace", "name", "args", "_t0")

    def __init__(self, trace: "Trace", name: str, args: Dict[str, Any]) -> None:
        self._trace = trace
        self.name = name
        self.args = args
        self._t0 = 0.0

    def add(self, **args: Any) -> None:
        """Attach extra attributes discovered while the span is open."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        dur = perf_counter() - self._t0
        self._trace.add_event(
            {
                "name": self.name,
                "trace_id": _TRACE_ID.get() or self._trace.trace_id,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "t0": self._t0,
                "dur": dur,
                "args": dict(self.args),
            }
        )


class NoopSpan:
    """Shared do-nothing span (stateless, safe to reenter concurrently)."""

    __slots__ = ()

    def add(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NOOP_SPAN = NoopSpan()


class Trace:
    """A thread-safe collector of span events under one trace ID."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self._lock = threading.Lock()
        self._events: List[Event] = []

    def add_event(self, event: Event) -> None:
        with self._lock:
            self._events.append(event)

    def extend(self, events: Sequence[Event]) -> None:
        with self._lock:
            self._events.extend(events)

    def events(self) -> List[Event]:
        with self._lock:
            return list(self._events)

    def drain(self) -> List[Event]:
        """Return all events and empty the collector (worker ship-back)."""
        with self._lock:
            events = self._events
            self._events = []
        return events

    def span(self, name: str, **args: Any) -> Span:
        """An explicit span bound to this trace (ignores the kill-switch
        gate on the process-active trace; the caller already opted in)."""
        return Span(self, name, args)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# the process-active collector obs.span() records into; None almost always
_ACTIVE: Optional[Trace] = None
_ACTIVE_LOCK = threading.Lock()


def span(name: str, **args: Any) -> Union[Span, NoopSpan]:
    """A span on the process-active trace — or a shared no-op.

    This is *the* instrument-point entry: call sites pay two global
    reads when tracing is off, which is the perf-gated common case.
    """
    if not state.enabled:
        return _NOOP_SPAN
    trace = _ACTIVE
    if trace is None:
        return _NOOP_SPAN
    return Span(trace, name, args)


def active_trace() -> Optional[Trace]:
    """The collector :func:`span` currently records into, if any."""
    return _ACTIVE


def install_trace(trace: Optional[Trace]) -> Optional[Trace]:
    """Swap the process-active collector; returns the previous one."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = trace
    return previous


def start_trace(trace_id: Optional[str] = None) -> Trace:
    """Begin collecting spans process-wide; errors if already collecting."""
    global _ACTIVE
    trace = Trace(trace_id)
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError(
                f"a trace is already being collected (id={_ACTIVE.trace_id})"
            )
        _ACTIVE = trace
    return trace


def finish_trace() -> Optional[Trace]:
    """Stop collecting and return the finished trace (None if idle)."""
    return install_trace(None)


@contextmanager
def collect(trace_id: Optional[str] = None) -> Iterator[Trace]:
    """Collect every span in this process (and its workers) into one trace.

    Binds the trace ID to the current context so engine/service code
    reuses it, installs the collector, and tears both down on exit.
    """
    trace = start_trace(trace_id)
    token = _TRACE_ID.set(trace.trace_id)
    try:
        yield trace
    finally:
        _TRACE_ID.reset(token)
        install_trace(None)


def add_events(events: Sequence[Event]) -> None:
    """Merge externally produced events (shard workers) into the active
    trace; silently dropped when no trace is being collected."""
    if not events:
        return
    trace = _ACTIVE
    if trace is not None:
        trace.extend(events)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def chrome_events(events: Sequence[Event]) -> List[Dict[str, Any]]:
    """Render recorded events as Chrome complete events (``ph: X``)."""
    out: List[Dict[str, Any]] = []
    for ev in events:
        args = dict(ev.get("args", {}))
        if ev.get("trace_id"):
            args["trace_id"] = ev["trace_id"]
        out.append(
            {
                "name": ev["name"],
                "ph": "X",
                "ts": ev["t0"] * 1e6,
                "dur": ev["dur"] * 1e6,
                "pid": ev.get("pid", 0),
                "tid": ev.get("tid", 0),
                "args": _json_safe(args),
            }
        )
    return out


def chrome_document(trace: Trace) -> Dict[str, Any]:
    """The full Chrome trace JSON document for a finished trace."""
    return {
        "traceEvents": chrome_events(trace.events()),
        "displayTimeUnit": "ms",
        "metadata": {"trace_id": trace.trace_id, "tool": "repro.obs"},
    }


def write_chrome_trace(path: Union[str, "os.PathLike[str]"], trace: Trace) -> str:
    """Write ``trace`` as Chrome trace JSON; returns the path written."""
    doc = chrome_document(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return os.fspath(path)
