"""The global observability kill-switch.

One process-wide flag gates every span and every metric observation.
:func:`disable` compiles the instrumentation down to near-no-ops — a
single module-attribute read per call site — which is what the perf
gate measures: the vectorized kernels with observability disabled must
stay within 1.05x of their uninstrumented timing.

The flag is deliberately a plain module attribute rather than a lock-
protected object: readers tolerate a stale value for one observation
(metrics are monotone counters, a span more or less around a toggle is
harmless), and the hot path must not pay for synchronization.
"""

from __future__ import annotations

__all__ = ["enabled", "enable", "disable", "is_enabled"]

#: whether spans and metric observations do anything; mutated only by
#: :func:`enable` / :func:`disable`
enabled: bool = True


def enable() -> None:
    """Turn spans and metric observations back on."""
    global enabled
    enabled = True


def disable() -> None:
    """Compile spans and metric observations to near-no-ops.

    While disabled, ``obs.span(...)`` returns a shared no-op context
    manager, observations return immediately, and metric lookups on a
    registry never create new entries (zero registry growth).
    """
    global enabled
    enabled = False


def is_enabled() -> bool:
    """Whether observability is currently on."""
    return enabled
