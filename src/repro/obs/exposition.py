"""Prometheus text exposition (v0.0.4) — render and parse.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
into the plain-text scrape format served at ``GET /metrics``:

.. code-block:: text

    # HELP repro_http_requests_total HTTP requests served
    # TYPE repro_http_requests_total counter
    repro_http_requests_total{endpoint="/count",method="POST",status="200"} 7
    # HELP repro_http_request_seconds HTTP request latency
    # TYPE repro_http_request_seconds histogram
    repro_http_request_seconds_bucket{endpoint="/count",le="0.005"} 3
    ...
    repro_http_request_seconds_sum{endpoint="/count"} 0.0421
    repro_http_request_seconds_count{endpoint="/count"} 7

:func:`parse_prometheus_text` is the inverse the tests and the CI
``obs-smoke`` lane use to reconcile scraped values against client-side
request counts; it raises :class:`ValueError` on any malformed line, so
"the exposition parses" is itself an assertion.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import metrics as _metrics

__all__ = ["render_prometheus", "parse_prometheus_text", "CONTENT_TYPE"]

#: the content type Prometheus scrapers expect for text exposition
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: one parsed exposition: metric name -> {sorted (label,value) pairs -> value}
ParsedSeries = Dict[str, Dict[Tuple[Tuple[str, str], ...], float]]


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(names: Tuple[str, ...], values: Tuple[str, ...],
               extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(zip(names, values))
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: Optional[_metrics.MetricsRegistry] = None) -> str:
    """Render ``registry`` (default: the process registry) as text."""
    registry = registry if registry is not None else _metrics.registry()
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (_metrics.Counter, _metrics.Gauge)):
            for key, value in metric.samples():
                labels = _label_str(metric.label_names, key)
                lines.append(f"{metric.name}{labels} {_fmt_value(value)}")
        elif isinstance(metric, _metrics.Histogram):
            for key, cumulative, total_sum, count in metric.samples():
                edges = [_fmt_value(b) for b in metric.buckets] + ["+Inf"]
                for edge, bucket_count in zip(edges, cumulative):
                    labels = _label_str(metric.label_names, key, ("le", edge))
                    lines.append(f"{metric.name}_bucket{labels} {bucket_count}")
                labels = _label_str(metric.label_names, key)
                lines.append(f"{metric.name}_sum{labels} {_fmt_value(total_sum)}")
                lines.append(f"{metric.name}_count{labels} {count}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+\d+)?$"  # optional timestamp
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _parse_labels(body: str) -> Tuple[Tuple[str, str], ...]:
    pairs: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(body):
        m = _LABEL_RE.match(body, pos)
        if m is None:
            raise ValueError(f"malformed label body: {body!r} at offset {pos}")
        pairs.append((m.group(1), _unescape_label(m.group(2))))
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ValueError(f"malformed label body: {body!r} at offset {pos}")
            pos += 1
    return tuple(sorted(pairs))


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def parse_prometheus_text(text: str) -> ParsedSeries:
    """Parse text exposition into ``{name: {label_pairs: value}}``.

    Histogram children appear under their full sample names
    (``<base>_bucket``, ``<base>_sum``, ``<base>_count``).  Raises
    :class:`ValueError` on any line that is neither a comment, blank,
    nor a well-formed sample.
    """
    out: ParsedSeries = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw!r}")
        labels = _parse_labels(m.group("labels")) if m.group("labels") else ()
        value = _parse_value(m.group("value"))
        series = out.setdefault(m.group("name"), {})
        if labels in series:
            raise ValueError(f"line {lineno}: duplicate sample: {raw!r}")
        series[labels] = value
    return out
