"""Terminal viewer for observability artifacts.

Two input shapes share this one viewer (satellite of ISSUE 9 — the
old simulated-trace path and the new measured-trace path render here):

* a Chrome trace-event JSON written by ``repro-count count --trace``
  (or :func:`repro.obs.tracing.write_chrome_trace`) — summarised as a
  per-span-name table with counts and wall totals;
* a ``LoadStats`` JSON dump from :mod:`repro.distributed.runtime`
  (``--load-stats``) — rendered through the existing
  :func:`repro.distributed.trace.format_trace` stage report.

Usage::

    python -m repro.obs.view trace.json
    python -m repro.obs.view --load-stats loadstats.json

The ``repro.distributed`` import is deliberately inside the function
body: :mod:`repro.obs` is an RP004 layer-0 package, and the lazy import
is the sanctioned escape hatch for a leaf *tool* reaching upward.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["chrome_summary", "load_stats_summary", "main"]


def chrome_summary(doc: Dict[str, Any]) -> str:
    """Summarise a Chrome trace document as a per-span-name table."""
    events: List[Dict[str, Any]] = list(doc.get("traceEvents", []))
    trace_ids = sorted(
        {
            str(ev.get("args", {}).get("trace_id"))
            for ev in events
            if ev.get("args", {}).get("trace_id")
        }
    )
    pids = sorted({int(ev.get("pid", 0)) for ev in events})
    by_name: Dict[str, Dict[str, float]] = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        row = by_name.setdefault(
            str(ev.get("name", "?")), {"count": 0.0, "total_us": 0.0, "max_us": 0.0}
        )
        dur = float(ev.get("dur", 0.0))
        row["count"] += 1
        row["total_us"] += dur
        row["max_us"] = max(row["max_us"], dur)

    lines = [
        f"events: {len(events)}, spans: {len(by_name)}, "
        f"processes: {len(pids)}, trace ids: {', '.join(trace_ids) or '-'}"
    ]
    lines.append(f"{'span':32s} {'count':>7s} {'total ms':>12s} {'max ms':>10s}")
    for name, row in sorted(
        by_name.items(), key=lambda kv: kv[1]["total_us"], reverse=True
    ):
        lines.append(
            f"{name:32s} {int(row['count']):>7d} "
            f"{row['total_us'] / 1000:>12.3f} {row['max_us'] / 1000:>10.3f}"
        )
    return "\n".join(lines)


def load_stats_summary(doc: Dict[str, Any], top: int = 10) -> str:
    """Render a ``LoadStats.to_dict()`` document via the distributed
    stage-report formatter (one viewer for both trace flavours)."""
    from repro.distributed.runtime import LoadStats
    from repro.distributed.trace import format_trace

    return format_trace(LoadStats.from_dict(doc), top=top)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.view",
        description="Summarise a Chrome trace JSON or a LoadStats dump.",
    )
    parser.add_argument("path", help="trace JSON file to summarise")
    parser.add_argument(
        "--load-stats",
        action="store_true",
        help="treat the input as a LoadStats.to_dict() document",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="stages to show in --load-stats mode (default 10)",
    )
    args = parser.parse_args(argv)

    with open(args.path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if args.load_stats:
        print(load_stats_summary(doc, top=args.top))
    else:
        print(chrome_summary(doc))
    return 0


if __name__ == "__main__":
    sys.exit(main())
