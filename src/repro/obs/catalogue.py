"""The metric catalogue: every instrument point's name, labels, buckets.

One accessor per time series keeps names/labels/buckets in a single
reviewable place (documented in ``docs/OBSERVABILITY.md``) and makes
each call site one line: ``catalogue.plan_cache().inc(result="hit")``.

Accessors are get-or-create against the process registry on every call
— deliberately not cached at module scope, so :func:`repro.obs.state.disable`
can guarantee zero registry growth (a disabled lookup returns an
unregistered no-op shell) and tests can reason about a registry they
reset around.
"""

from __future__ import annotations

from typing import Tuple

from . import metrics as _metrics

__all__ = [
    "LATENCY_BUCKETS",
    "engine_requests",
    "engine_request_seconds",
    "engine_trials",
    "engine_plan_cache",
    "engine_stopped_early",
    "dist_supersteps",
    "dist_exchanged_rows",
    "service_queue_depth",
    "service_job_wait_seconds",
    "service_job_run_seconds",
    "service_jobs",
    "service_cache",
    "http_requests",
    "http_request_seconds",
]

#: request-latency bucket edges (seconds) shared by every `_seconds`
#: histogram so endpoint/engine latencies compare on one axis
LATENCY_BUCKETS: Tuple[float, ...] = _metrics.DEFAULT_BUCKETS


# -- engine -----------------------------------------------------------------

def engine_requests() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_engine_requests_total",
        help="Count requests completed by CountingEngine, by backend",
        labels=("method",),
    )


def engine_request_seconds() -> _metrics.Histogram:
    return _metrics.registry().histogram(
        "repro_engine_request_seconds",
        help="End-to-end CountingEngine.count() latency, by backend",
        labels=("method",),
        buckets=LATENCY_BUCKETS,
    )


def engine_trials() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_engine_trials_total",
        help="Colorful trials executed across all count requests",
    )


def engine_plan_cache() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_engine_plan_cache_total",
        help="Decomposition-plan cache lookups, by result",
        labels=("result",),
    )


def engine_stopped_early() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_engine_stopped_early_total",
        help="Adaptive-precision runs that stopped before the trial cap",
    )


# -- distributed executor ---------------------------------------------------

def dist_supersteps() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_dist_supersteps_total",
        help="BSP supersteps (DP stages) executed by ShardedExecutor",
    )


def dist_exchanged_rows() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_dist_exchanged_rows_total",
        help="Boundary table rows exchanged master<->workers",
    )


# -- service ----------------------------------------------------------------

def service_queue_depth() -> _metrics.Gauge:
    return _metrics.registry().gauge(
        "repro_service_queue_depth",
        help="Jobs currently waiting in the JobQueue",
    )


def service_job_wait_seconds() -> _metrics.Histogram:
    return _metrics.registry().histogram(
        "repro_service_job_wait_seconds",
        help="Time a job spent queued before a worker picked it up",
        buckets=LATENCY_BUCKETS,
    )


def service_job_run_seconds() -> _metrics.Histogram:
    return _metrics.registry().histogram(
        "repro_service_job_run_seconds",
        help="Time a job spent executing on a worker thread",
        buckets=LATENCY_BUCKETS,
    )


def service_jobs() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_service_jobs_total",
        help="Jobs finished, by terminal state",
        labels=("state",),
    )


def service_cache() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_service_cache_total",
        help="ResultCache lookups, by result",
        labels=("result",),
    )


# -- httpd ------------------------------------------------------------------

def http_requests() -> _metrics.Counter:
    return _metrics.registry().counter(
        "repro_http_requests_total",
        help="HTTP requests served, by endpoint/method/status",
        labels=("endpoint", "method", "status"),
    )


def http_request_seconds() -> _metrics.Histogram:
    return _metrics.registry().histogram(
        "repro_http_request_seconds",
        help="HTTP request latency, by endpoint",
        labels=("endpoint",),
        buckets=LATENCY_BUCKETS,
    )
