"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The design goals, in order:

1. **Cheap hot path.**  An observation is one ``state.enabled`` read,
   one label-key build, and one short ``with self._lock`` block.  No
   allocation beyond the label tuple, no string formatting, no I/O.
2. **Exact accounting.**  Every increment lands; histogram bucket
   counts are exact under concurrent writers (the service hammer test
   asserts this bit-for-bit).
3. **Zero growth when disabled.**  With :func:`repro.obs.state.disable`
   active, registry lookups for metrics that do not already exist
   return *unregistered* instances whose observations no-op, so a
   disabled run leaves the registry byte-identical.

Metric *names* follow Prometheus conventions (``_total`` counters,
``_seconds`` histograms); rendering lives in
:mod:`repro.obs.exposition`, the instrument-point catalogue in
:mod:`repro.obs.catalogue`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type, TypeVar

from . import state

__all__ = [
    "MetricError",
    "Metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "registry",
]

#: default latency buckets (seconds) — identical to the Prometheus
#: client-library defaults so scraped dashboards transfer directly
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: one sample's label values, ordered like the metric's label names
LabelKey = Tuple[str, ...]


class MetricError(ValueError):
    """Misuse of the metrics API (bad labels, type clash, negative inc)."""


class Metric:
    """Common base: name, help text, declared label names, one lock."""

    kind: str = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)

        self._lock = threading.Lock()

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        """Validate the caller's labels against the declared set."""
        if len(labels) != len(self.label_names) or any(
            k not in labels for k in self.label_names
        ):
            raise MetricError(
                f"metric {self.name!r} takes labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[k]) for k in self.label_names)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe rendering of the metric and all its samples."""
        raise NotImplementedError


_M = TypeVar("_M", bound=Metric)


class Counter(Metric):
    """A monotone counter, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help=help, labels=labels)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not state.enabled:
            return
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "labels": list(self.label_names),
            "samples": [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in self.samples()
            ],
        }


class Gauge(Metric):
    """A value that can go up and down (queue depth, inflight jobs)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        super().__init__(name, help=help, labels=labels)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not state.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not state.enabled:
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        with self._lock:
            return sorted(self._values.items())

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "labels": list(self.label_names),
            "samples": [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in self.samples()
            ],
        }


class Histogram(Metric):
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) edges.

    Bucket counts are stored *non*-cumulative internally (one list slot
    per edge plus a final ``+Inf`` slot); the exposition layer renders
    the cumulative form the text format requires.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help=help, labels=labels)
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise MetricError(f"histogram {self.name!r} needs at least one bucket")
        if len(set(edges)) != len(edges):
            raise MetricError(f"histogram {self.name!r} has duplicate bucket edges")
        self.buckets: Tuple[float, ...] = edges
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: object) -> None:
        if not state.enabled:
            return
        v = float(value)
        key = self._key(labels)
        # first edge >= v; past the last edge lands in the +Inf slot
        slot = bisect_left(self.buckets, v)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[slot] += 1
            self._sums[key] += v

    def sample(self, **labels: object) -> Tuple[List[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, total count)."""
        key = self._key(labels)
        with self._lock:
            counts = list(self._counts.get(key, [0] * (len(self.buckets) + 1)))
            total_sum = self._sums.get(key, 0.0)
        cumulative: List[int] = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        return cumulative, total_sum, running

    def samples(self) -> List[Tuple[LabelKey, List[int], float, int]]:
        """All label children as (key, cumulative counts, sum, count)."""
        with self._lock:
            keys = sorted(self._counts)
        out: List[Tuple[LabelKey, List[int], float, int]] = []
        for key in keys:
            cumulative, total_sum, count = self.sample(
                **dict(zip(self.label_names, key))
            )
            out.append((key, cumulative, total_sum, count))
        return out

    def snapshot(self) -> Dict[str, object]:
        rendered = []
        for key, cumulative, total_sum, count in self.samples():
            edges = [*(str(b) for b in self.buckets), "+Inf"]
            rendered.append(
                {
                    "labels": dict(zip(self.label_names, key)),
                    "buckets": dict(zip(edges, cumulative)),
                    "sum": total_sum,
                    "count": count,
                }
            )
        return {
            "kind": self.kind,
            "labels": list(self.label_names),
            "buckets": list(self.buckets),
            "samples": rendered,
        }


class MetricsRegistry:
    """Get-or-create metric store; one process-wide default instance.

    Lookups are keyed by metric name; asking for an existing name with
    a different type or label set raises :class:`MetricError` so two
    call sites cannot silently shear one time series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def _get_or_create(
        self,
        cls: Type[_M],
        name: str,
        help: str,
        labels: Sequence[str],
        **kwargs: object,
    ) -> _M:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                if not state.enabled:
                    # disabled: hand back an unregistered shell whose
                    # observations no-op — zero registry growth
                    return cls(name, help=help, labels=labels, **kwargs)  # type: ignore[arg-type]
                metric = cls(name, help=help, labels=labels, **kwargs)  # type: ignore[arg-type]
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise MetricError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        if tuple(metric.label_names) != tuple(labels):
            raise MetricError(
                f"metric {name!r} already registered with labels "
                f"{sorted(metric.label_names)}, requested {sorted(labels)}"
            )
        return metric

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """All registered metrics, sorted by name (stable exposition)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: m.name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested JSON-safe dump of every metric (the ``/stats`` shape)."""
        return {m.name: m.snapshot() for m in self.collect()}


_DEFAULT_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry (what ``/metrics`` serves)."""
    return _DEFAULT_REGISTRY
