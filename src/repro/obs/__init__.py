"""`repro.obs` — structured tracing, metrics, and exposition (layer 0).

Stdlib-only observability substrate every other package may import:

* **Tracing** (:mod:`repro.obs.tracing`): ``obs.span(name, **args)``
  context managers on ``perf_counter``, per-request trace IDs on a
  contextvar, Chrome trace-event export, cross-process event merge.
* **Metrics** (:mod:`repro.obs.metrics`): a process-wide thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms; the instrument-point catalogue is
  :mod:`repro.obs.catalogue`.
* **Exposition** (:mod:`repro.obs.exposition`): Prometheus text
  rendering (served at ``GET /metrics``) and a strict parser for
  reconciliation tests.

The global kill-switch :func:`disable` compiles spans and observations
down to near-no-ops — the perf-smoke gate holds the vectorized kernels
with observability disabled to ≤1.05x their uninstrumented timing.
``python -m repro.obs.view`` summarises trace files (and ``LoadStats``
dumps from :mod:`repro.distributed`) in the terminal.
"""

from .exposition import CONTENT_TYPE, parse_prometheus_text, render_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    registry,
)
from .state import disable, enable, is_enabled
from .tracing import (
    NoopSpan,
    Span,
    Trace,
    active_trace,
    add_events,
    chrome_document,
    chrome_events,
    collect,
    current_trace_id,
    finish_trace,
    install_trace,
    new_trace_id,
    reset_trace_id,
    set_trace_id,
    span,
    start_trace,
    trace_id_scope,
    write_chrome_trace,
)

__all__ = [
    # state
    "enable",
    "disable",
    "is_enabled",
    # metrics
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "registry",
    # tracing
    "Span",
    "NoopSpan",
    "Trace",
    "span",
    "collect",
    "active_trace",
    "install_trace",
    "start_trace",
    "finish_trace",
    "add_events",
    "new_trace_id",
    "current_trace_id",
    "set_trace_id",
    "reset_trace_id",
    "trace_id_scope",
    "chrome_events",
    "chrome_document",
    "write_chrome_trace",
    # exposition
    "render_prometheus",
    "parse_prometheus_text",
    "CONTENT_TYPE",
]
