"""Simulated distributed engine: partitions, runtime accounting, metrics."""

from .engine import DEFAULT_KAPPA, DistributedRun, run_distributed
from .metrics import (
    MethodComparison,
    ScalingCurve,
    compare_methods,
    improvement_factor,
    strong_scaling,
)
from .partition import (
    Partition,
    block_partition,
    cyclic_partition,
    hash_partition,
    make_partition,
)
from .runtime import ExecutionContext, LoadStats, StageRecord, sequential_context
from .trace import format_trace, hotspots, rank_profile, stage_report

__all__ = [
    "Partition",
    "block_partition",
    "cyclic_partition",
    "hash_partition",
    "make_partition",
    "ExecutionContext",
    "LoadStats",
    "StageRecord",
    "sequential_context",
    "DistributedRun",
    "run_distributed",
    "DEFAULT_KAPPA",
    "MethodComparison",
    "ScalingCurve",
    "compare_methods",
    "improvement_factor",
    "strong_scaling",
    "stage_report",
    "rank_profile",
    "hotspots",
    "format_trace",
]
