"""Distributed engine: real sharded execution plus the simulated predictor.

The ``ps-dist`` executor (:mod:`repro.distributed.executor`) runs the
vectorized PS dynamic program across real worker processes over
shared-memory CSR shards; the historical simulation (``runtime`` /
``metrics``) stays as its prediction and planning layer.
"""

from .engine import DEFAULT_KAPPA, DistributedRun, ShardedRun, run_distributed, run_sharded
from .executor import ShardedExecutor, ShardResult, count_colorful_ps_dist
from .metrics import (
    MethodComparison,
    ScalingCurve,
    compare_methods,
    improvement_factor,
    strong_scaling,
)
from .partition import (
    Partition,
    block_partition,
    cyclic_partition,
    hash_partition,
    make_partition,
)
from .runtime import (
    ExecutionContext,
    LoadStats,
    StageRecord,
    WallStageRecord,
    WallStats,
    sequential_context,
)
from .trace import format_trace, hotspots, rank_profile, stage_report

__all__ = [
    "ShardedExecutor",
    "ShardResult",
    "ShardedRun",
    "run_sharded",
    "count_colorful_ps_dist",
    "WallStageRecord",
    "WallStats",
    "Partition",
    "block_partition",
    "cyclic_partition",
    "hash_partition",
    "make_partition",
    "ExecutionContext",
    "LoadStats",
    "StageRecord",
    "sequential_context",
    "DistributedRun",
    "run_distributed",
    "DEFAULT_KAPPA",
    "MethodComparison",
    "ScalingCurve",
    "compare_methods",
    "improvement_factor",
    "strong_scaling",
    "stage_report",
    "rank_profile",
    "hotspots",
    "format_trace",
]
