"""Distributed counting engine: run a plan at a given simulated rank count.

Ties together the partition, the execution context and the plan solver,
returning both the (exact, rank-count independent) colorful count and the
per-rank load statistics from which the scaling figures are derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..counting.solver import solve_plan
from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .partition import make_partition
from .runtime import ExecutionContext, LoadStats

__all__ = ["DistributedRun", "run_distributed"]

#: relative cost of shipping one table entry vs one local table operation
DEFAULT_KAPPA = 0.5


@dataclass
class DistributedRun:
    """Result of one simulated distributed counting run."""

    count: int
    nranks: int
    method: str
    stats: LoadStats
    kappa: float = DEFAULT_KAPPA

    @property
    def makespan(self) -> float:
        return self.stats.makespan(self.kappa)

    @property
    def serial_time(self) -> float:
        return self.stats.serial_time()

    @property
    def speedup(self) -> float:
        """Modeled speedup over a single rank."""
        ms = self.makespan
        return self.serial_time / ms if ms > 0 else 1.0

    @property
    def max_load(self) -> float:
        return self.stats.max_load()

    @property
    def avg_load(self) -> float:
        return self.stats.avg_load()

    @property
    def imbalance(self) -> float:
        return self.stats.imbalance()


def run_distributed(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    nranks: int,
    method: str = "db",
    plan: Optional[Plan] = None,
    strategy: str = "block",
    kappa: float = DEFAULT_KAPPA,
) -> DistributedRun:
    """Count colorful matches while attributing work to ``nranks`` ranks.

    The returned count is exact and independent of ``nranks``; the load
    statistics depend on the partition, mirroring the paper's Section 7
    ownership rule.
    """
    plan = plan or heuristic_plan(query)
    ctx = ExecutionContext(make_partition(g.n, nranks, strategy), track=True)
    count = solve_plan(plan, g, np.asarray(colors), ctx=ctx, method=method)
    return DistributedRun(count=count, nranks=nranks, method=method, stats=ctx.stats, kappa=kappa)
