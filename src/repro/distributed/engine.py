"""Distributed counting engine: predicted (simulated) and real sharded runs.

:func:`run_distributed` ties together the partition, the execution
context and the plan solver, returning both the (exact, rank-count
independent) colorful count and the per-rank load statistics from which
the scaling figures are derived.  With the real sharded executor in
place it doubles as the *prediction* layer: :func:`run_sharded` executes
the same plan across actual worker processes and returns the measured
per-rank :class:`WallStats` side by side with the simulated
:class:`LoadStats` prediction, so the cost model can be validated
against (and used to plan for) real parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..counting.solver import solve_plan
from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .partition import make_partition
from .runtime import ExecutionContext, LoadStats, WallStats

__all__ = ["DistributedRun", "run_distributed", "ShardedRun", "run_sharded"]

#: relative cost of shipping one table entry vs one local table operation
DEFAULT_KAPPA = 0.5


@dataclass
class DistributedRun:
    """Result of one simulated distributed counting run."""

    count: int
    nranks: int
    method: str
    stats: LoadStats
    kappa: float = DEFAULT_KAPPA

    @property
    def makespan(self) -> float:
        return self.stats.makespan(self.kappa)

    @property
    def serial_time(self) -> float:
        return self.stats.serial_time()

    @property
    def speedup(self) -> float:
        """Modeled speedup over a single rank."""
        ms = self.makespan
        return self.serial_time / ms if ms > 0 else 1.0

    @property
    def max_load(self) -> float:
        return self.stats.max_load()

    @property
    def avg_load(self) -> float:
        return self.stats.avg_load()

    @property
    def imbalance(self) -> float:
        return self.stats.imbalance()


def run_distributed(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    nranks: int,
    method: str = "db",
    plan: Optional[Plan] = None,
    strategy: str = "block",
    kappa: float = DEFAULT_KAPPA,
) -> DistributedRun:
    """Count colorful matches while attributing work to ``nranks`` ranks.

    The returned count is exact and independent of ``nranks``; the load
    statistics depend on the partition, mirroring the paper's Section 7
    ownership rule.
    """
    plan = plan or heuristic_plan(query)
    ctx = ExecutionContext(make_partition(g.n, nranks, strategy), track=True)
    count = solve_plan(plan, g, np.asarray(colors), ctx=ctx, method=method)
    return DistributedRun(count=count, nranks=nranks, method=method, stats=ctx.stats, kappa=kappa)


@dataclass
class ShardedRun:
    """Result of one *real* sharded run: measured stats plus the prediction.

    ``measured`` is the per-rank wall/CPU accounting recorded by the
    executor's workers; ``predicted`` (when requested) is the simulated
    :class:`LoadStats` for the same plan, coloring and partition — the
    cost model the measured run can be compared against.
    """

    count: int
    nranks: int
    measured: WallStats
    predicted: Optional[LoadStats] = None
    kappa: float = DEFAULT_KAPPA

    @property
    def wall_seconds(self) -> float:
        """End-to-end measured wall time, including the boundary exchange."""
        return self.measured.wall_seconds

    @property
    def critical_seconds(self) -> float:
        """Measured makespan: sum over supersteps of the slowest rank."""
        return self.measured.critical_seconds()

    @property
    def imbalance(self) -> float:
        """Measured per-rank CPU imbalance (max/avg; 1.0 is perfect)."""
        return self.measured.imbalance()

    @property
    def predicted_makespan(self) -> float:
        """Modeled makespan from the simulated run (0.0 when not predicted)."""
        return self.predicted.makespan(self.kappa) if self.predicted is not None else 0.0

    @property
    def predicted_imbalance(self) -> float:
        return self.predicted.imbalance() if self.predicted is not None else 1.0


def run_sharded(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    workers: int,
    plan: Optional[Plan] = None,
    strategy: str = "block",
    predict: bool = False,
    kappa: float = DEFAULT_KAPPA,
) -> ShardedRun:
    """Count colorful matches on a real pool of ``workers`` shard processes.

    The count is bit-identical to ``ps``/``ps-vec`` on the same plan and
    coloring.  With ``predict=True`` the simulated PS accounting runs as
    well (same partition), so the returned :class:`ShardedRun` carries
    the predicted cost model next to the measured per-rank wall times.
    """
    from .executor import ShardedExecutor

    plan = plan or heuristic_plan(query)
    with ShardedExecutor(g, workers=workers, strategy=strategy) as executor:
        count, measured = executor.count(plan, np.asarray(colors))
    predicted: Optional[LoadStats] = None
    if predict:
        ctx = ExecutionContext(make_partition(g.n, workers, strategy), track=True)
        solve_plan(plan, g, np.asarray(colors), ctx=ctx, method="ps")
        predicted = ctx.stats
    return ShardedRun(
        count=count, nranks=workers, measured=measured,
        predicted=predicted, kappa=kappa,
    )
