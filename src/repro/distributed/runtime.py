"""Rank-attributed accounting: predicted (simulated) and measured stats.

The paper runs on Blue Gene/Q with MPI ranks; its scaling results are
driven by how projection-table operations distribute over the ranks that
own the table entries (Section 7's ownership rule: entry ``(u, v, α)``
lives at the owner of ``v``).  :class:`LoadStats` executes the *real*
algorithm once while attributing every operation to the rank that would
perform it and every cross-owner hand-off to a message, organised in
supersteps (one per join stage).  Modeled makespan::

    T(R) = Σ_stages  max_r ( ops_r + κ · msgs_r )

with κ the cost of shipping one table entry relative to one local table
operation.  Speedups and load statistics (Figures 11-13) are derived from
these counters.  See DESIGN.md §2 for why this substitution preserves the
paper's observed behaviour.

Since the ``ps-dist`` executor (:mod:`repro.distributed.executor`) runs
shards in real worker processes, the simulated counters serve as the
**predicted** cost model; :class:`WallStats` is its measured twin —
per-rank wall/CPU seconds per superstep, recorded from the actual run,
with the same makespan/imbalance/speedup surface so predicted and
measured numbers can be compared side by side.

The executor additionally folds each superstep's :class:`WallStats` row
(rows exchanged, slowest rank's wall/CPU) into the measured-trace spans
of :mod:`repro.obs` when a trace is being collected, so per-stage
accounting and wall-clock spans line up in one Chrome trace.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph.graph import Graph
from .partition import Partition, make_partition

__all__ = [
    "StageRecord",
    "LoadStats",
    "WallStageRecord",
    "WallStats",
    "ExecutionContext",
    "sequential_context",
]


class StageRecord:
    """Per-rank operation/message counts for one superstep."""

    __slots__ = ("name", "ops", "msgs")

    def __init__(self, name: str, nranks: int) -> None:
        self.name = name
        self.ops = np.zeros(nranks, dtype=np.float64)
        self.msgs = np.zeros(nranks, dtype=np.float64)

    def makespan(self, kappa: float) -> float:
        return float(np.max(self.ops + kappa * self.msgs))

    def total_ops(self) -> float:
        return float(self.ops.sum())

    def total_msgs(self) -> float:
        return float(self.msgs.sum())


class LoadStats:
    """Accumulated superstep records for one counting run."""

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.stages: List[StageRecord] = []
        self._by_name: dict = {}

    # ------------------------------------------------------------------
    def new_stage(self, name: str) -> StageRecord:
        """Get-or-create the superstep record for ``name``.

        Stages are keyed by name so that independent work scheduled in the
        same logical join step (e.g. the DB algorithm's per-``h`` path
        sweeps, which a real MPI implementation overlaps) accumulates into
        one superstep instead of artificially serialising.
        """
        rec = self._by_name.get(name)
        if rec is None:
            rec = StageRecord(name, self.nranks)
            self.stages.append(rec)
            self._by_name[name] = rec
        return rec

    # -- aggregates -----------------------------------------------------
    def total_ops(self) -> float:
        return float(sum(s.total_ops() for s in self.stages))

    def total_msgs(self) -> float:
        return float(sum(s.total_msgs() for s in self.stages))

    def per_rank_ops(self) -> np.ndarray:
        out = np.zeros(self.nranks, dtype=np.float64)
        for s in self.stages:
            out += s.ops
        return out

    def max_load(self) -> float:
        """Maximum per-rank operation count (paper Figure 11 'Max Load')."""
        return float(self.per_rank_ops().max()) if self.stages else 0.0

    def avg_load(self) -> float:
        """Average per-rank operation count (Figure 11 'Avg Load')."""
        return float(self.per_rank_ops().mean()) if self.stages else 0.0

    def makespan(self, kappa: float = 0.5) -> float:
        """Modeled parallel time (sum of per-stage critical paths)."""
        return float(sum(s.makespan(kappa) for s in self.stages))

    def serial_time(self) -> float:
        """Modeled 1-rank time: every operation is local, no messages."""
        return self.total_ops()

    def speedup(self, kappa: float = 0.5) -> float:
        ms = self.makespan(kappa)
        return self.serial_time() / ms if ms > 0 else 1.0

    def imbalance(self) -> float:
        """max/avg per-rank load; 1.0 is perfectly balanced."""
        avg = self.avg_load()
        return self.max_load() / avg if avg > 0 else 1.0

    def to_dict(self) -> dict:
        """JSON-safe rendering: per-stage per-rank ops/msgs as plain lists."""
        return {
            "nranks": self.nranks,
            "stages": [
                {
                    "name": s.name,
                    "ops": [float(x) for x in s.ops],
                    "msgs": [float(x) for x in s.msgs],
                }
                for s in self.stages
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "LoadStats":
        """Rebuild the exact accounting from :meth:`to_dict` output."""
        out = cls(int(doc["nranks"]))
        for stage in doc.get("stages", ()):
            rec = out.new_stage(str(stage["name"]))
            rec.ops += np.asarray(stage["ops"], dtype=np.float64)
            rec.msgs += np.asarray(stage["msgs"], dtype=np.float64)
        return out

    def coarsen(self, factor: int) -> "LoadStats":
        """Merge groups of ``factor`` adjacent ranks into one.

        For block partitions, the ``R``-rank block partition refines the
        ``R/factor``-rank one, so coarsening a fine-grained run reproduces
        the coarse run's statistics exactly (up to block-boundary rounding)
        — one tracked execution yields the whole strong-scaling curve.
        Messages between merged ranks become local and are dropped, which
        matches what fewer ranks would observe.
        """
        if factor < 1 or self.nranks % factor:
            raise ValueError(f"factor {factor} must divide nranks {self.nranks}")
        out = LoadStats(self.nranks // factor)
        for s in self.stages:
            rec = out.new_stage(s.name)
            rec.ops += s.ops.reshape(-1, factor).sum(axis=1)
            # conservative: keep all messages (some became rank-local)
            rec.msgs += s.msgs.reshape(-1, factor).sum(axis=1)
        return out


class WallStageRecord:
    """Measured per-rank timings for one superstep of a real sharded run.

    ``cpu`` is per-rank process CPU seconds (robust when workers share
    cores), ``wall`` per-rank wall seconds, ``rows`` the number of table
    rows the rank shipped in the boundary exchange of this stage.
    """

    __slots__ = ("name", "cpu", "wall", "rows")

    def __init__(self, name: str, nranks: int) -> None:
        self.name = name
        self.cpu = np.zeros(nranks, dtype=np.float64)
        self.wall = np.zeros(nranks, dtype=np.float64)
        self.rows = np.zeros(nranks, dtype=np.int64)

    def makespan(self) -> float:
        """Measured critical path of the stage: slowest rank's CPU time."""
        return float(np.max(self.cpu))


class WallStats:
    """Measured per-rank timings for one sharded run (LoadStats' twin).

    The simulated :class:`LoadStats` predicts where time goes; this class
    records where it actually went, superstep by superstep.  The
    *critical path* sums each stage's slowest rank — the measured
    analogue of the modeled makespan, and the strong-scaling metric the
    scaling bench reports (CPU seconds, so oversubscribed CI runners
    where workers time-slice cores still measure shard compute).
    """

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self.stages: List[WallStageRecord] = []
        #: end-to-end wall seconds including orchestration (set by the executor)
        self.wall_seconds: float = 0.0

    def new_stage(self, name: str) -> WallStageRecord:
        rec = WallStageRecord(name, self.nranks)
        self.stages.append(rec)
        return rec

    # -- aggregates -----------------------------------------------------
    def total_cpu(self) -> float:
        """Summed CPU seconds over all ranks and stages (serial-work proxy)."""
        return float(sum(s.cpu.sum() for s in self.stages))

    def per_rank_cpu(self) -> np.ndarray:
        out = np.zeros(self.nranks, dtype=np.float64)
        for s in self.stages:
            out += s.cpu
        return out

    def critical_seconds(self) -> float:
        """Measured makespan: sum of each superstep's slowest rank."""
        return float(sum(s.makespan() for s in self.stages))

    def exchanged_rows(self) -> int:
        """Total table rows shipped through the boundary exchange."""
        return int(sum(int(s.rows.sum()) for s in self.stages))

    def imbalance(self) -> float:
        """max/avg per-rank CPU seconds; 1.0 is perfectly balanced."""
        per_rank = self.per_rank_cpu()
        avg = float(per_rank.mean()) if self.nranks else 0.0
        return float(per_rank.max()) / avg if avg > 0 else 1.0

    def speedup_over(self, baseline: "WallStats") -> float:
        """Measured strong-scaling speedup vs a (usually 1-rank) baseline."""
        crit = self.critical_seconds()
        return baseline.critical_seconds() / crit if crit > 0 else 1.0

    def to_dict(self) -> dict:
        """JSON-safe rendering (per-stage per-rank cpu/wall/rows lists)."""
        return {
            "nranks": self.nranks,
            "wall_seconds": float(self.wall_seconds),
            "stages": [
                {
                    "name": s.name,
                    "cpu": [float(x) for x in s.cpu],
                    "wall": [float(x) for x in s.wall],
                    "rows": [int(x) for x in s.rows],
                }
                for s in self.stages
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "WallStats":
        """Rebuild measured stats from :meth:`to_dict` output."""
        out = cls(int(doc["nranks"]))
        out.wall_seconds = float(doc.get("wall_seconds", 0.0))
        for stage in doc.get("stages", ()):
            rec = out.new_stage(str(stage["name"]))
            rec.cpu += np.asarray(stage["cpu"], dtype=np.float64)
            rec.wall += np.asarray(stage["wall"], dtype=np.float64)
            rec.rows += np.asarray(stage["rows"], dtype=np.int64)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WallStats(nranks={self.nranks}, stages={len(self.stages)}, "
            f"critical={self.critical_seconds():.4f}s)"
        )


class ExecutionContext:
    """Threads partition + accounting through the counting kernels.

    A 1-rank context (``sequential_context``) is near-free: the kernels
    call :meth:`op` and :meth:`emit` with pre-aggregated counts (one call
    per table entry, not per candidate), so accounting overhead is a small
    constant factor regardless of rank count.
    """

    __slots__ = ("partition", "stats", "_stage", "track")

    def __init__(self, partition: Partition, track: bool = True) -> None:
        self.partition = partition
        self.stats = LoadStats(partition.nranks)
        self._stage: Optional[StageRecord] = None
        self.track = track

    # ------------------------------------------------------------------
    @property
    def nranks(self) -> int:
        return self.partition.nranks

    def begin_stage(self, name: str) -> None:
        if self.track:
            self._stage = self.stats.new_stage(name)

    def op(self, key_vertex: int, count: float = 1.0) -> None:
        """``count`` table operations at the owner of ``key_vertex``."""
        if self.track and self._stage is not None:
            self._stage.ops[self.partition.owners[key_vertex]] += count

    def emit(self, from_vertex: int, to_vertex: int, count: float = 1.0) -> None:
        """``count`` produced entries handed from owner(from) to owner(to).

        Counted as messages only when the owners differ (paper: "this
        entry is communicated to the owner of w, where it gets stored").
        """
        if self.track and self._stage is not None:
            src = self.partition.owners[from_vertex]
            dst = self.partition.owners[to_vertex]
            if src != dst:
                self._stage.msgs[src] += count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionContext(nranks={self.nranks}, stages={len(self.stats.stages)})"


def sequential_context(g: Graph, track: bool = False) -> ExecutionContext:
    """1-rank context; with ``track=False`` accounting is skipped entirely."""
    return ExecutionContext(make_partition(g.n, 1), track=track)
