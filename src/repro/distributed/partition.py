"""Vertex partitioning strategies (paper Section 7, "engine" layer).

The paper distributes the data graph via a 1-D decomposition: "the
vertices are equally distributed among the processors using block
distribution, and each vertex is owned by some processor."  Block is the
default; cyclic and hashed variants are provided for the partitioning
ablation bench.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["Partition", "block_partition", "cyclic_partition", "hash_partition", "make_partition"]


class Partition:
    """Owner map from vertices to ranks."""

    __slots__ = ("nranks", "owners")

    def __init__(self, nranks: int, owners: np.ndarray) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        if owners.size and (owners.min() < 0 or owners.max() >= nranks):
            raise ValueError("owner ids out of range")
        self.nranks = nranks
        self.owners = owners.astype(np.int64)

    def owner(self, v: int) -> int:
        return int(self.owners[v])

    def rank_sizes(self) -> np.ndarray:
        return np.bincount(self.owners, minlength=self.nranks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Partition(nranks={self.nranks}, n={len(self.owners)})"


def block_partition(n: int, nranks: int) -> Partition:
    """Contiguous equal blocks of vertex ids (the paper's choice)."""
    owners = np.minimum((np.arange(n, dtype=np.int64) * nranks) // max(n, 1), nranks - 1)
    return Partition(nranks, owners)


def cyclic_partition(n: int, nranks: int) -> Partition:
    """Round-robin assignment (ablation)."""
    return Partition(nranks, np.arange(n, dtype=np.int64) % nranks)


def hash_partition(n: int, nranks: int, seed: int = 0x9E3779B9) -> Partition:
    """Deterministic pseudo-random assignment (ablation)."""
    v = np.arange(n, dtype=np.uint64)
    h = (v * np.uint64(seed)) ^ (v >> np.uint64(16))
    return Partition(nranks, (h % np.uint64(nranks)).astype(np.int64))


_STRATEGIES: dict = {
    "block": block_partition,
    "cyclic": cyclic_partition,
    "hash": hash_partition,
}


def make_partition(n: int, nranks: int, strategy: str = "block") -> Partition:
    """Partition factory: ``block`` (paper default), ``cyclic`` or ``hash``."""
    try:
        fn: Callable = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(f"unknown partition strategy {strategy!r}") from None
    return fn(n, nranks)
