"""Real sharded multiprocess executor for the vectorized PS dynamic program.

This is the ``ps-dist`` backend: the data graph's vertices are
partitioned across N worker *processes* (reusing the
:mod:`repro.distributed.partition` strategies), each worker runs the
shard-restricted vectorized PS sweep over the rows whose path-start
vertex it owns, and between supersteps the per-shard boundary table
slices are exchanged through the master and re-combined into the full
projection tables every rank needs for its next join.  Summing the
per-shard results reproduces the sequential ``ps``/``ps-vec`` count **bit
for bit**: integer table sums are exact, and the shard invariant (path
extensions never change a row's start vertex) puts every table row in
exactly one shard.

Data placement
--------------
* the CSR adjacency (``indptr``/``indices``) and the per-trial coloring
  live in :mod:`multiprocessing.shared_memory` segments — workers map
  them zero-copy and read-only (:class:`_ShardGraph` is a view, never a
  copy of the graph);
* decomposition plans are shipped once per executor (workers re-derive
  the same bottom-up block order from ``Plan.blocks()``);
* boundary table slices travel over per-worker pipes: worker → master
  (shard), master → workers (combined), one round per superstep.

Measured vs predicted
---------------------
Each worker reports per-stage CPU and wall seconds, collected into a
:class:`repro.distributed.runtime.WallStats` — the *measured* side of the
runtime.  The long-standing simulated :class:`LoadStats` accounting stays
as the *predicted* cost model; :func:`repro.distributed.engine.run_sharded`
returns both so plans can be validated against reality.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
import weakref
from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..obs import catalogue as obs_catalogue
from ..counting.labels import label_masks_from_arrays
from ..counting.xp import cpu_namespace
from ..counting.vectorized import (
    MAX_COLORS_VEC,
    VecBinaryTable,
    VecUnaryTable,
    VectorizedSolver,
    _SUM_LIMIT,
    _group_sum,
)
from ..decomposition.blocks import LEAF, SINGLETON
from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..graph.graph import CSR, Graph
from ..query.query import QueryGraph
from .partition import make_partition
from .runtime import WallStats

__all__ = ["ShardedExecutor", "ShardResult", "count_colorful_ps_dist", "DEFAULT_DIST_WORKERS"]

#: shard count used when callers pass ``workers=None``
DEFAULT_DIST_WORKERS = min(4, os.cpu_count() or 1)


class ShardResult(NamedTuple):
    """One distributed counting run: the exact count plus measured stats."""

    count: int
    stats: WallStats


class _ShardGraph:
    """Zero-copy CSR view over the shared-memory adjacency arrays.

    Quacks enough like :class:`repro.graph.graph.Graph` for the
    vectorized kernels (``n``, ``degrees``, ``to_csr``, ``labels``)
    without ever copying ``indptr``/``indices`` out of shared memory.
    """

    __slots__ = ("n", "m", "indptr", "indices", "degrees", "labels")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Optional[np.ndarray] = None,
    ) -> None:
        self.n = len(indptr) - 1
        self.m = len(indices) // 2
        self.indptr = indptr
        self.indices = indices
        self.degrees = np.diff(indptr)
        self.labels = labels

    def to_csr(self) -> CSR:
        return CSR(self.indptr, self.indices)


# ----------------------------------------------------------------------
# table payloads (pipe exchange format: plain tuples of arrays)
# ----------------------------------------------------------------------

def _pack(result: object) -> tuple:
    """Flatten a solved block result for pipe transport."""
    if isinstance(result, (int, np.integer)):
        return ("count", int(result))
    if isinstance(result, VecUnaryTable):
        return ("unary", result.boundary, result.u, result.sig, result.cnt)
    if isinstance(result, VecBinaryTable):
        return ("binary", result.boundary, result.u, result.v, result.sig, result.cnt)
    raise TypeError(f"unexpected block result {type(result).__name__}")


def _unpack(payload: tuple) -> object:
    """Rebuild a table object from its pipe payload."""
    kind = payload[0]
    if kind == "count":
        return payload[1]
    if kind == "unary":
        return VecUnaryTable(payload[1], payload[2], payload[3], payload[4])
    return VecBinaryTable(payload[1], payload[2], payload[3], payload[4], payload[5])


def _payload_rows(payload: tuple) -> int:
    """Number of table rows a payload ships (0 for scalar counts)."""
    return 0 if payload[0] == "count" else len(payload[-1])


def _combine_shards(payloads: Sequence[tuple]) -> object:
    """Reduce per-rank shards into the full table (or total count).

    Shard keys may overlap when a block's output is keyed by a path *end*
    vertex, so the concatenation is re-aggregated with the same
    lexsort + segment-sum the sequential kernels use — the combined table
    is bit-identical to the one the unsharded solver builds, including
    the int64 overflow guards.
    """
    kind = payloads[0][0]
    if any(p[0] != kind for p in payloads):  # pragma: no cover - protocol bug guard
        raise RuntimeError("mixed shard payload kinds")
    if kind == "count":
        total = sum(p[1] for p in payloads)
        if float(total) > _SUM_LIMIT:
            raise OverflowError(
                "ps-dist total count would exceed int64; rerun with the "
                "arbitrary-precision 'ps' backend"
            )
        return total
    if kind == "unary":
        boundary = payloads[0][1]
        u = np.concatenate([p[2] for p in payloads])
        sig = np.concatenate([p[3] for p in payloads])
        cnt = np.concatenate([p[4] for p in payloads])
        (u, sig), cnt = _group_sum((u, sig), cnt)
        return VecUnaryTable(boundary, u, sig, cnt)
    boundary = payloads[0][1]
    u = np.concatenate([p[2] for p in payloads])
    v = np.concatenate([p[3] for p in payloads])
    sig = np.concatenate([p[4] for p in payloads])
    cnt = np.concatenate([p[5] for p in payloads])
    (u, v, sig), cnt = _group_sum((u, v, sig), cnt)
    return VecBinaryTable(boundary, u, v, sig, cnt)


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment created by the master.

    Workers are multiprocessing children: on POSIX the master's
    resource-tracker fd is handed to them for every start method (fork
    inherits it, spawn/forkserver ship it in the preparation data), so
    the register performed by attaching is an idempotent duplicate of the
    master's create-time registration and cleanup stays solely with the
    master's unlink.  Do NOT unregister here — that would strip the
    shared tracker's entry and make the master's unlink double-remove
    (observed as KeyError spam from the tracker).  On Windows named
    shared memory has no tracker/unlink semantics at all.
    """
    return shared_memory.SharedMemory(name=name)


def _worker_main(
    conn: Connection,
    rank: int,
    nranks: int,
    strategy: str,
    shm_names: Sequence[str],
    n: int,
    nnz: int,
    has_labels: bool,
) -> None:  # pragma: no cover - exercised in subprocesses
    """Worker loop: solve shard-restricted blocks on request.

    Protocol (master → worker): ``("plan", key, plan)`` registers a plan,
    ``("trial", key, k, qlabels, trace_id)`` starts a trial (fresh solver
    over the current shared coloring; ``qlabels`` is the labeled query's
    node → label map, or ``None``; ``trace_id`` is the master's obs trace
    ID when a trace is being collected, else ``None``), ``("block", idx)``
    solves one block's shard, ``("table", idx, payload)`` installs a
    combined child table, ``("stop",)`` exits.  Worker → master:
    ``("shard", idx, payload, cpu_seconds, wall_seconds, events)`` —
    ``events`` is the list of obs span events recorded in this worker
    since the last reply (empty when no trace is active) — or
    ``("error", exception)``.
    """
    shms = [_attach_shm(nm) for nm in shm_names]
    indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=shms[0].buf)
    indices = np.ndarray((nnz,), dtype=np.int64, buffer=shms[1].buf)
    colors = np.ndarray((n,), dtype=np.int64, buffer=shms[2].buf)
    labels = (
        np.ndarray((n,), dtype=np.int64, buffer=shms[3].buf) if has_labels else None
    )
    g = _ShardGraph(indptr, indices, labels)
    start_mask = make_partition(n, nranks, strategy).owners == rank
    plans: Dict[int, List] = {}
    blocks: Optional[List] = None
    solver: Optional[VectorizedSolver] = None
    # the master only ever recv()s one reply per "block" request, so a
    # failure in any other op is held here and reported on the next
    # "block" — sending it eagerly would desync the request/reply pairing
    pending_error: Optional[BaseException] = None
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            op = msg[0]
            if op == "stop":
                break
            try:
                if op == "plan":
                    plans[msg[1]] = msg[2].blocks()
                elif op == "trial":
                    blocks = plans[msg[1]]
                    # shard tables live in shared memory and cross pipes as
                    # raw NumPy buffers, so workers pin a CPU namespace —
                    # strict still applies (it wraps NumPy), CUDA never does
                    solver = VectorizedSolver(
                        g,
                        colors,
                        msg[2],
                        start_mask=start_mask,
                        vertex_ok=label_masks_from_arrays(labels, msg[3]),
                        xp=cpu_namespace(),
                    )
                    # re-establish the master's trace across the process
                    # boundary: install a local collector so the solver's
                    # sweep spans (and the dist.solve wrapper below) are
                    # recorded here and shipped back with each shard reply
                    trace_id = msg[4] if len(msg) > 4 else None
                    obs.install_trace(
                        obs.Trace(trace_id) if trace_id is not None else None
                    )
                    if trace_id is not None:
                        obs.set_trace_id(trace_id)
                    pending_error = None  # stale failures die with their trial
                elif op == "block":
                    if pending_error is not None:
                        conn.send(("error", pending_error))
                        pending_error = None
                        continue
                    idx = msg[1]
                    wall0 = time.perf_counter()
                    cpu0 = time.process_time()
                    with obs.span("dist.solve", rank=rank, block=idx):
                        result = solver.solve(blocks[idx])
                    cpu = time.process_time() - cpu0
                    wall = time.perf_counter() - wall0
                    trace = obs.active_trace()
                    events = trace.drain() if trace is not None else []
                    conn.send(("shard", idx, _pack(result), cpu, wall, events))
                elif op == "table":
                    solver.inject(blocks[msg[1]], _unpack(msg[2]))
            except Exception as exc:  # noqa: BLE001 - forwarded to the master
                if op == "block":
                    conn.send(("error", exc))
                else:
                    pending_error = exc
    finally:
        conn.close()
        for shm in shms:
            try:
                shm.close()
            except Exception:
                pass


# ----------------------------------------------------------------------
# master
# ----------------------------------------------------------------------

def _release(
    procs: Sequence[mp.Process],
    conns: Sequence[Connection],
    shms: Sequence[shared_memory.SharedMemory],
) -> None:
    """Tear down workers and shared memory (finalizer-safe, idempotent)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=1.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for shm in shms:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass


def _share_array(arr: np.ndarray) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Copy ``arr`` into a fresh shared-memory segment, return (shm, view)."""
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 8))
    view = np.ndarray(arr.shape, dtype=np.int64, buffer=shm.buf)
    view[:] = arr
    return shm, view


class ShardedExecutor:
    """Persistent pool of shard workers bound to one data graph.

    Construction maps the graph into shared memory and spawns ``workers``
    processes; :meth:`count` then runs one coloring trial through the
    sharded DP.  Reuse the executor across trials and plans — per-call
    cost is one small message round per decomposition block.  Close with
    :meth:`close` or a ``with`` block; a dropped executor is reclaimed by
    a finalizer (workers are daemons, segments are unlinked).

    ``strategy`` picks the vertex partition (``block`` — the paper's
    choice — ``cyclic`` or ``hash``); the partition decides both shard
    load balance and which table rows each rank produces.
    """

    def __init__(
        self,
        graph: Graph,
        workers: Optional[int] = None,
        strategy: str = "block",
        start_method: Optional[str] = None,
    ) -> None:
        nranks = int(workers) if workers is not None else DEFAULT_DIST_WORKERS
        if nranks < 1:
            raise ValueError("need at least one worker")
        # validate the strategy eagerly, before processes exist
        make_partition(graph.n, nranks, strategy)
        self.graph = graph
        self.nranks = nranks
        self.strategy = strategy
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(start_method)

        indptr, indices = graph.to_csr()
        has_labels = graph.labels is not None
        shm_ip, _ = _share_array(indptr)
        shm_ix, _ = _share_array(indices)
        shm_co, colors_view = _share_array(np.zeros(graph.n, dtype=np.int64))
        self._shms = [shm_ip, shm_ix, shm_co]
        self._colors_view = colors_view
        if has_labels:
            # the per-vertex label segment rides alongside the coloring:
            # written once here, read-only in every worker
            shm_lb, _ = _share_array(graph.labels)
            self._shms.append(shm_lb)

        names = [s.name for s in self._shms]
        self._conns = []
        self._procs = []
        try:
            for rank in range(nranks):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child, rank, nranks, strategy, names,
                        graph.n, len(indices), has_labels,
                    ),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        except Exception:
            _release(self._procs, self._conns, self._shms)
            raise
        self._plan_keys: Dict[int, int] = {}
        self._plans: List[Plan] = []
        # one trial owns the pipes end-to-end; concurrent count() calls
        # (service job workers sharing a pooled executor) take turns
        # rather than interleaving the superstep message rounds.  close()
        # takes it too, so teardown waits for the run in flight; reentrant
        # because a mid-run worker failure closes from inside count()
        self._run_lock = threading.RLock()
        self._runs = 0
        self._finalizer = weakref.finalize(
            self, _release, self._procs, self._conns, self._shms
        )

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Stop the workers and unlink the shared-memory segments.

        Waits for any run in flight on another thread — pipes and shared
        memory are never torn down under a live superstep.
        """
        with self._run_lock:
            self._finalizer()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _broadcast(self, msg: tuple) -> None:
        try:
            for conn in self._conns:
                conn.send(msg)
        except OSError:
            # a worker died while the pool was idle (e.g. OOM-killed):
            # close so engine-level caches replace this executor
            self.close()
            raise RuntimeError("ps-dist worker died; executor closed") from None

    def _register_plan_locked(self, plan: Plan) -> int:
        key = self._plan_keys.get(id(plan))
        if key is None:
            key = len(self._plans)
            self._plan_keys[id(plan)] = key
            self._plans.append(plan)  # pin: id() keys must not be recycled
            self._broadcast(("plan", key, plan))
        return key

    def _gather(self, stats: WallStats, stage: str) -> List[tuple]:
        rec = stats.new_stage(stage)
        shards: List[tuple] = [None] * self.nranks  # type: ignore[list-item]
        error: Optional[BaseException] = None
        for rank, conn in enumerate(self._conns):
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                self.close()
                raise RuntimeError(f"ps-dist worker {rank} died mid-run") from None
            if msg[0] == "error":
                error = error or msg[1]
                continue
            _, _, payload, cpu, wall, events = msg
            rec.cpu[rank] = cpu
            rec.wall[rank] = wall
            rec.rows[rank] = _payload_rows(payload)
            shards[rank] = payload
            # merge shard-worker spans into the active trace (no-op when
            # nothing is being collected — workers ship an empty list then)
            obs.add_events(events)
        if error is not None:
            # workers are already idle again (they answer one message at a
            # time); the next count() starts a fresh trial
            raise error
        return shards

    # ------------------------------------------------------------------
    def count(
        self,
        plan: Plan,
        colors: Sequence[int],
        num_colors: Optional[int] = None,
    ) -> ShardResult:
        """Count colorful matches of ``plan.query`` under one coloring.

        Bit-identical to :func:`solve_plan_vectorized` on the same plan
        and coloring; also returns the measured per-rank
        :class:`WallStats` for the run.
        """
        if self.closed:
            raise RuntimeError("executor is closed")
        colors = np.asarray(colors, dtype=np.int64)
        k = plan.query.k
        kc = num_colors if num_colors is not None else k
        if kc < k:
            raise ValueError(f"need at least k={k} colors, got num_colors={kc}")
        if kc > MAX_COLORS_VEC:
            raise ValueError(
                f"ps-dist packs signatures in int64; num_colors <= {MAX_COLORS_VEC}"
            )
        if len(colors) != self.graph.n:
            raise ValueError("coloring must assign a color to every data vertex")
        if k > 0 and colors.size and (colors.min() < 0 or colors.max() >= kc):
            raise ValueError(f"colors must lie in [0, {kc})")
        qlabels = plan.query.labels
        if qlabels is not None and self.graph.labels is None:
            raise ValueError(
                "labeled query requires a labeled data graph (Graph(labels=...))"
            )

        with self._run_lock:
            stats = WallStats(self.nranks)
            t0 = time.perf_counter()
            root = plan.root
            if root.kind == LEAF:  # pragma: no cover - planner never roots a leaf
                raise ValueError("plan root must be a cycle or singleton block")
            if root.kind == SINGLETON and not root.node_ann:
                if qlabels:
                    # single-node labeled query: count compatible vertices
                    (lab,) = qlabels.values()
                    count = int((self.graph.labels == int(lab)).sum())
                else:
                    count = self.graph.n
                stats.wall_seconds = time.perf_counter() - t0
                self._runs += 1
                return ShardResult(count, stats)

            key = self._register_plan_locked(plan)
            self._colors_view[:] = colors
            # ship the trace ID only while a trace is actually being
            # collected — otherwise workers skip span recording entirely
            trace_id = (
                obs.current_trace_id() if obs.active_trace() is not None else None
            )
            self._broadcast(("trial", key, k, qlabels, trace_id))

            blocks = plan.blocks()
            stages = blocks[:-1] if root.kind == SINGLETON else blocks
            last_combined: object = None
            for idx, block in enumerate(stages):
                stage_name = f"b{idx}:{block.kind}"
                with obs.span(
                    "dist.superstep", stage=stage_name, workers=self.nranks
                ) as sp:
                    self._broadcast(("block", idx))
                    shards = self._gather(stats, stage_name)
                    last_combined = _combine_shards(shards)
                    if idx < len(stages) - 1:
                        # publish the combined child table for the parents'
                        # joins; the final stage's result is consumed only
                        # by the master
                        self._broadcast(("table", idx, _pack(last_combined)))
                    # fold the measured WallStats row into the trace span
                    rec = stats.stages[-1]
                    sp.add(
                        rows=int(rec.rows.sum()),
                        max_wall=float(rec.wall.max()),
                        max_cpu=float(rec.cpu.max()),
                    )
            if root.kind == SINGLETON:
                # bottom-up block order puts the root's only child last
                (child,) = root.node_ann.values()
                assert stages[-1] is child, "plan block order violated"
                count = last_combined.total()
            else:
                count = last_combined  # 0-boundary root cycle: scalar partials
            obs_catalogue.dist_supersteps().inc(len(stages))
            obs_catalogue.dist_exchanged_rows().inc(stats.exchanged_rows())
            stats.wall_seconds = time.perf_counter() - t0
            self._runs += 1
            return ShardResult(int(count), stats)

    def count_batch(
        self,
        plan: Plan,
        colorings: Sequence[Sequence[int]],
        num_colors: Optional[int] = None,
    ) -> List[ShardResult]:
        """Batch-of-trials protocol: run several colorings back to back.

        The whole batch executes under a single run-lock acquisition, so
        trials from one adaptive batch are never interleaved with
        concurrent :meth:`count` calls from other threads sharing the
        pool (service job workers), and the plan is registered with the
        workers at most once for the batch.  Each trial is the exact
        :meth:`count` superstep sequence — results are bit-identical to
        calling :meth:`count` per coloring in the same order.
        """
        with self._run_lock:
            return [
                self.count(plan, colors, num_colors=num_colors)
                for colors in colorings
            ]

    def describe(self) -> Dict[str, object]:
        """JSON-safe snapshot of this pool (surfaced by the service's
        ``/stats`` endpoint)."""
        # lock-free snapshot on purpose: _run_lock is held across whole
        # multi-second counting runs, and the service's /stats endpoint
        # must answer immediately; a stale integer is acceptable here.
        return {
            "workers": self.nranks,
            "strategy": self.strategy,
            "closed": self.closed,
            "plans_registered": len(self._plans),  # repro: allow[RP003]
            "runs": self._runs,  # repro: allow[RP003]
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return (
            f"ShardedExecutor(n={self.graph.n}, workers={self.nranks}, "
            f"strategy={self.strategy!r}, {state})"
        )


def count_colorful_ps_dist(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    plan: Optional[Plan] = None,
    num_colors: Optional[int] = None,
    workers: Optional[int] = None,
    strategy: str = "block",
    executor: Optional[ShardedExecutor] = None,
) -> int:
    """Colorful matches of ``query`` in ``g`` via the sharded executor.

    Pass a long-lived ``executor`` to amortise worker startup across
    trials (the engine does); otherwise a transient pool is spun up for
    this one call and torn down after.
    """
    plan = plan if plan is not None else heuristic_plan(query)
    if executor is not None:
        if executor.graph is not g:
            raise ValueError("executor is bound to a different data graph")
        return executor.count(plan, colors, num_colors=num_colors).count
    with ShardedExecutor(g, workers=workers, strategy=strategy) as ex:
        return ex.count(plan, colors, num_colors=num_colors).count
