"""Scaling metrics derived from simulated runs (Figures 10-13).

Not to be confused with :mod:`repro.obs.metrics` — that module is the
process-wide operational metrics registry (counters/gauges/histograms
served at ``GET /metrics``); this one computes the paper's scaling
*figures* (improvement factors, strong-scaling curves) from simulated
:class:`~repro.distributed.runtime.LoadStats` runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .engine import DEFAULT_KAPPA, DistributedRun, run_distributed

__all__ = [
    "improvement_factor",
    "strong_scaling",
    "ScalingCurve",
    "compare_methods",
    "MethodComparison",
]


@dataclass
class MethodComparison:
    """PS vs DB on one graph-query pair at one rank count (Figure 10/11)."""

    graph_name: str
    query_name: str
    nranks: int
    ps: DistributedRun
    db: DistributedRun

    @property
    def improvement_factor(self) -> float:
        """IF = modeled time of PS over modeled time of DB (>1 = DB wins)."""
        db_t = self.db.makespan
        return self.ps.makespan / db_t if db_t > 0 else float("inf")

    @property
    def load_reduction(self) -> float:
        """Max-load ratio PS/DB (Figure 11)."""
        db_l = self.db.max_load
        return self.ps.max_load / db_l if db_l > 0 else float("inf")


def compare_methods(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    nranks: int,
    ps_plan: Optional[Plan] = None,
    db_plan: Optional[Plan] = None,
    kappa: float = DEFAULT_KAPPA,
) -> MethodComparison:
    """Run PS and DB on identical input and package the comparison."""
    ps_plan = ps_plan or heuristic_plan(query)
    db_plan = db_plan or ps_plan
    ps = run_distributed(g, query, colors, nranks, method="ps", plan=ps_plan, kappa=kappa)
    db = run_distributed(g, query, colors, nranks, method="db", plan=db_plan, kappa=kappa)
    if ps.count != db.count:  # pragma: no cover - correctness tripwire
        raise AssertionError(
            f"PS and DB disagree on {g.name}/{query.name}: {ps.count} != {db.count}"
        )
    return MethodComparison(g.name, query.name, nranks, ps, db)


def improvement_factor(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    nranks: int,
    **kwargs,
) -> float:
    """Figure 10 cell: IF = T(PS)/T(DB) at the given rank count."""
    return compare_methods(g, query, colors, nranks, **kwargs).improvement_factor


@dataclass
class ScalingCurve:
    """Strong-scaling curve for one graph-query pair (Figure 13)."""

    graph_name: str
    query_name: str
    method: str
    ranks: List[int]
    makespans: List[float]

    def speedups(self, base_rank_index: int = 0) -> List[float]:
        base = self.makespans[base_rank_index]
        return [base / t if t > 0 else float("inf") for t in self.makespans]


def strong_scaling(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    ranks: Sequence[int],
    method: str = "db",
    plan: Optional[Plan] = None,
    kappa: float = DEFAULT_KAPPA,
) -> ScalingCurve:
    """Makespans across rank counts on fixed input (Figure 13 strong)."""
    plan = plan or heuristic_plan(query)
    makespans = []
    for r in ranks:
        run = run_distributed(g, query, colors, r, method=method, plan=plan, kappa=kappa)
        makespans.append(run.makespan)
    return ScalingCurve(g.name, query.name, method, list(ranks), makespans)
