"""Superstep trace inspection for simulated runs.

Turns the per-stage, per-rank counters of a :class:`LoadStats` into
human-readable reports: stage timelines, per-rank load profiles and
imbalance hot spots.  Used by the load-balance benches and handy when
debugging why a plan is slow (which join step concentrates on which
rank's hub vertices).

Not to be confused with :mod:`repro.obs.tracing` — that module records
*measured* spans (wall-clock trace events for Chrome/Perfetto) while
this one reports the *simulated* cost model.  Both render through one
viewer: ``python -m repro.obs.view`` summarises Chrome trace files and,
with ``--load-stats``, feeds a ``LoadStats.to_dict()`` dump through
:func:`format_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .runtime import LoadStats

__all__ = ["stage_report", "rank_profile", "hotspots", "format_trace"]


@dataclass
class StageSummary:
    name: str
    total_ops: float
    max_ops: float
    imbalance: float
    msgs: float

    def as_row(self) -> Dict[str, object]:
        return {
            "stage": self.name,
            "ops": self.total_ops,
            "max_rank_ops": self.max_ops,
            "imbalance": self.imbalance,
            "msgs": self.msgs,
        }


def stage_report(stats: LoadStats) -> List[StageSummary]:
    """Per-superstep totals, sorted by contribution to the makespan."""
    out = []
    for s in stats.stages:
        total = s.total_ops()
        mx = float(s.ops.max()) if len(s.ops) else 0.0
        avg = total / stats.nranks if stats.nranks else 0.0
        out.append(
            StageSummary(
                name=s.name,
                total_ops=total,
                max_ops=mx,
                imbalance=mx / avg if avg > 0 else 1.0,
                msgs=s.total_msgs(),
            )
        )
    out.sort(key=lambda x: -x.max_ops)
    return out


def rank_profile(stats: LoadStats) -> np.ndarray:
    """Total operations per rank across all stages."""
    return stats.per_rank_ops()


def hotspots(stats: LoadStats, top: int = 3) -> List[Dict[str, object]]:
    """The ``top`` stages dominating the modeled makespan."""
    report = stage_report(stats)[:top]
    return [s.as_row() for s in report]


def format_trace(stats: LoadStats, top: int = 10) -> str:
    """ASCII rendering of the trace (stage table + rank load bar chart)."""
    lines = [f"supersteps: {len(stats.stages)}, ranks: {stats.nranks}"]
    lines.append(f"{'stage':24s} {'ops':>12s} {'max/rank':>12s} {'imb':>6s} {'msgs':>10s}")
    for s in stage_report(stats)[:top]:
        lines.append(
            f"{s.name[:24]:24s} {s.total_ops:12.0f} {s.max_ops:12.0f} "
            f"{s.imbalance:6.2f} {s.msgs:10.0f}"
        )
    profile = rank_profile(stats)
    peak = profile.max() if len(profile) and profile.max() > 0 else 1.0
    lines.append("per-rank load:")
    for r, ops in enumerate(profile):
        bar = "#" * int(round(40 * ops / peak))
        lines.append(f"  rank {r:3d} {ops:12.0f} {bar}")
    return "\n".join(lines)
