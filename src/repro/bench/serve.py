"""Service throughput/latency bench: the ``--serve-smoke`` CI gate.

Boots a full :class:`~repro.service.CountingService` + HTTP server
in-process on an ephemeral port and drives it with the stdlib client the
way a deployment would be driven:

* one **cold** ``POST /count`` per grid cell (uncached engine latency);
* a timed **cached** loop over HTTP (the QPS figure the CI gate asserts
  a floor for — this path is a fingerprint hash, an LRU hit and one JSON
  round trip, no counting);
* the same cached loop in-process (no HTTP) to show the protocol cost;
* one async submit/poll cycle per cell.

Counts are asserted bit-identical to a direct
:meth:`CountingEngine.count` with the same parameters.  Emits
``BENCH_serve.json``-shaped records via the shared harness helpers.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..engine import CountingEngine, EngineConfig
from .datasets import dataset
from .harness import bench_record, geometric_mean

__all__ = ["SERVE_GRID", "run_serve_smoke"]

#: (dataset, query) cells the serve bench drives (small enough for CI,
#: two datasets so the registry/cache layers see real key diversity)
SERVE_GRID = (
    ("condmat", "glet1"),
    ("condmat", "wiki"),
    ("enron", "youtube"),
)

#: trials per request — tiny: the serve bench measures the service
#: layers, the kernels have their own perf gate
SERVE_TRIALS = 2


def run_serve_smoke(
    duration: float = 1.0,
    config: Optional[EngineConfig] = None,
    workers: int = 2,
    queue_depth: int = 16,
    cache_size: int = 64,
) -> Dict[str, object]:
    """Boot, drive, and measure the service; returns a JSON-ready doc.

    ``duration`` is the wall-clock budget of each cached-path timing
    loop.  The headline figure is ``cached_qps`` — the geomean over the
    grid of HTTP cached-path requests per second — plus per-cell records
    for cold latency, cached HTTP latency, and cached in-process latency.
    """
    from ..query.library import paper_query
    from ..service import CountingService
    from ..service.client import ServiceClient
    from ..service.httpd import make_server, serve_forever

    cfg = config if config is not None else EngineConfig()
    service = CountingService(
        config=cfg, workers=workers, queue_depth=queue_depth, cache_size=cache_size
    )
    records: List[Dict[str, object]] = []
    qps_values: List[float] = []
    try:
        for gname, _q in SERVE_GRID:
            if gname not in service.registry:
                service.registry.load(gname)
        server = make_server(service, port=0)
        thread = serve_forever(server)
        try:
            with ServiceClient(server.url) as client:
                assert client.healthz()["ok"]
                for gname, qname in SERVE_GRID:
                    params = dict(trials=SERVE_TRIALS, seed=cfg.seed)
                    # cold: full engine execution through queue + HTTP
                    t0 = time.perf_counter()
                    result, cached = client.count(gname, qname, **params)
                    cold = time.perf_counter() - t0
                    if cached:  # pragma: no cover - fresh service per run
                        raise AssertionError(f"first request of {gname}/{qname} hit the cache")

                    # parity: bit-identical to a direct engine call
                    with CountingEngine(dataset(gname), cfg) as engine:
                        direct = engine.count(paper_query(qname), **params)
                    if result["colorful_counts"] != direct.colorful_counts:
                        raise AssertionError(
                            f"service diverged from engine on {gname}/{qname}: "
                            f"{result['colorful_counts']} != {direct.colorful_counts}"
                        )

                    # cached over HTTP: the headline QPS loop
                    reqs, deadline = 0, time.monotonic() + duration
                    t0 = time.perf_counter()
                    while time.monotonic() < deadline:
                        _, cached = client.count(gname, qname, **params)
                        assert cached, "cached loop fell out of the cache"
                        reqs += 1
                    http_elapsed = time.perf_counter() - t0
                    http_qps = reqs / http_elapsed if http_elapsed > 0 else 0.0

                    # cached in-process: same path minus HTTP/JSON
                    calls, deadline = 0, time.monotonic() + min(duration, 0.5)
                    t0 = time.perf_counter()
                    while time.monotonic() < deadline:
                        _, cached = service.count(gname, qname, **params)
                        assert cached, "cached local loop fell out of the cache"
                        calls += 1
                    local_elapsed = time.perf_counter() - t0
                    local_qps = calls / local_elapsed if local_elapsed > 0 else 0.0

                    # async submit/poll once (protocol exercised, not timed)
                    job = client.submit(gname, qname, **params)
                    done = client.wait(job["id"], timeout=60.0)
                    if done["state"] != "done":  # pragma: no cover - smoke guard
                        raise AssertionError(f"async job failed: {done.get('error')}")

                    count = int(sum(result["colorful_counts"]))
                    records.append(bench_record(
                        "serve", gname, qname, "cold-http", cold, count=count))
                    records.append(bench_record(
                        "serve", gname, qname, "cached-http",
                        http_elapsed / max(reqs, 1), count=count,
                        qps=http_qps, requests=reqs))
                    records.append(bench_record(
                        "serve", gname, qname, "cached-local",
                        local_elapsed / max(calls, 1), count=count,
                        qps=local_qps, requests=calls))
                    qps_values.append(http_qps)
            stats = service.stats()
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
            server.server_close()
    finally:
        service.close()

    cache = stats["cache"]
    expected_hits = sum(
        int(r["requests"]) for r in records if r["method"] == "cached-http"
    ) + sum(int(r["requests"]) for r in records if r["method"] == "cached-local")
    if cache["hits"] < expected_hits:  # pragma: no cover - accounting guard
        raise AssertionError(
            f"cache hit counter lost events: {cache['hits']} < {expected_hits}"
        )
    return {
        "grid": [f"{g}/{q}" for g, q in SERVE_GRID],
        "trials": SERVE_TRIALS,
        "seed": cfg.seed,
        "duration": duration,
        "cached_qps": geometric_mean(qps_values),
        "cache": cache,
        "queue": stats["queue"],
        "records": records,
    }
