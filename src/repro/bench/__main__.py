"""``python -m repro.bench`` — perf/scaling/service runner, CI gates.

Default: the perf-smoke grid with the baseline regression gate.  With
``--scaling``: the real ``ps-dist`` strong-scaling sweep.  With
``--serve-smoke``: the counting-service throughput/latency bench (one
shared entry point for CI's smoke jobs and local runs).
"""

import sys

from .harness import main

if __name__ == "__main__":
    sys.exit(main())
