"""``python -m repro.bench`` — perf-smoke / strong-scaling runner, CI gates.

Default: the perf-smoke grid with the baseline regression gate.  With
``--scaling``: the real ``ps-dist`` strong-scaling sweep (one shared
entry point for CI's scaling-smoke job and local runs).
"""

import sys

from .harness import main

if __name__ == "__main__":
    sys.exit(main())
