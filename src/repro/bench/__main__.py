"""``python -m repro.bench`` — the perf-smoke runner / CI regression gate."""

import sys

from .harness import main

if __name__ == "__main__":
    sys.exit(main())
