"""Aggregate saved benchmark tables into one experiment report.

Each bench writes its table to ``benchmarks/results/<name>.txt``; this
module stitches them into a single document ordered like the paper's
evaluation section, for the CLI's ``report`` subcommand.
"""

from __future__ import annotations

import os
from typing import Dict, List

__all__ = ["collect_results", "render_report", "REPORT_ORDER"]

#: paper order of the result files (missing ones are skipped)
REPORT_ORDER = [
    ("table1", "Table 1 — data graphs"),
    ("fig8", "Figure 8 — query benchmark"),
    ("fig9_per_graph", "Figure 9a — avg time per graph"),
    ("fig9_per_query", "Figure 9b — avg time per query"),
    ("fig10", "Figure 10 — improvement factor grid"),
    ("fig10_summary", "Figure 10 — summary"),
    ("fig11", "Figure 11 — load balance on enron"),
    ("fig12_per_query", "Figure 12a — speedup per query"),
    ("fig12_per_graph", "Figure 12b — speedup per graph"),
    ("fig13_strong", "Figure 13a — strong scaling"),
    ("fig13_weak", "Figure 13b — weak scaling"),
    ("fig14", "Figure 14 — plan heuristic"),
    ("fig14_summary", "Figure 14 — summary"),
    ("fig15", "Figure 15 — precision"),
    ("fig15_summary", "Figure 15 — summary"),
    ("theory_xy", "Section 9 — X(q)/Y(q)"),
    ("theory_xy_summary", "Section 9 — gap summary"),
    ("ablation_plans", "Ablation — plan spread"),
    ("ablation_ps_even", "Ablation — even-split PS"),
    ("ablation_partition", "Ablation — partition strategy"),
    ("extension_colors", "Extension — larger color palettes"),
]


def collect_results(results_dir: str) -> Dict[str, str]:
    """name -> table text for every saved result file."""
    out: Dict[str, str] = {}
    if not os.path.isdir(results_dir):
        return out
    for fname in sorted(os.listdir(results_dir)):
        if fname.endswith(".txt"):
            with open(os.path.join(results_dir, fname), "r", encoding="utf-8") as fh:
                out[fname[: -len(".txt")]] = fh.read().rstrip()
    return out


def render_report(results_dir: str, include_unlisted: bool = True) -> str:
    """The full report, paper-ordered, with any extra files appended."""
    tables = collect_results(results_dir)
    if not tables:
        return (
            f"No benchmark results under {results_dir}.\n"
            "Run: pytest benchmarks/ --benchmark-only -s"
        )
    lines: List[str] = ["# Benchmark report (regenerated tables)", ""]
    used = set()
    for key, heading in REPORT_ORDER:
        if key in tables:
            used.add(key)
            lines.append(f"## {heading}")
            lines.append(tables[key])
            lines.append("")
    if include_unlisted:
        for key in sorted(set(tables) - used):
            lines.append(f"## {key}")
            lines.append(tables[key])
            lines.append("")
    return "\n".join(lines)
