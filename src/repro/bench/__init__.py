"""Benchmark support: Table 1 dataset stand-ins and the print harness."""

from .datasets import PAPER_TABLE1, DatasetSpec, all_datasets, dataset, dataset_names
from .report import REPORT_ORDER, collect_results, render_report
from .harness import (
    SIM_RANKS_HIGH,
    SIM_RANKS_LOW,
    Timer,
    bench_scale,
    engine_for,
    format_table,
    geometric_mean,
    grid_graph_names,
    grid_query_names,
    print_table,
    run_query_grid,
)

__all__ = [
    "PAPER_TABLE1",
    "DatasetSpec",
    "dataset",
    "dataset_names",
    "all_datasets",
    "bench_scale",
    "format_table",
    "print_table",
    "Timer",
    "geometric_mean",
    "grid_graph_names",
    "grid_query_names",
    "engine_for",
    "run_query_grid",
    "SIM_RANKS_LOW",
    "SIM_RANKS_HIGH",
    "collect_results",
    "render_report",
    "REPORT_ORDER",
]
