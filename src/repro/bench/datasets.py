"""Synthetic stand-ins for the Table 1 real-world graphs.

The paper evaluates on nine SNAP graphs plus a human brain network from
the Open Connectome Project.  Offline, we substitute each with a
deterministic synthetic graph scaled down ~100x whose degree-distribution
*skew ordering* matches the paper's (epinions/enron/slashdot most skewed,
roadNetCA essentially unskewed).  Each dataset records the paper's
reported statistics so benches print a paper-vs-ours Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

import numpy as np

from ..graph.degree import zipf_degree_sequence
from ..graph.generators import chung_lu, grid_road_network
from ..graph.graph import Graph
from ..graph.properties import largest_component_subgraph

__all__ = ["DatasetSpec", "dataset", "dataset_names", "all_datasets", "PAPER_TABLE1"]

#: Table 1 of the paper, verbatim.
PAPER_TABLE1: Dict[str, Dict] = {
    "brightkite": {"domain": "Geo loc.", "nodes": 58_000, "edges": 214_000, "avg_deg": 4, "max_deg": 1135},
    "condmat": {"domain": "Collab.", "nodes": 23_000, "edges": 93_000, "avg_deg": 4, "max_deg": 281},
    "astroph": {"domain": "Collab.", "nodes": 18_000, "edges": 198_000, "avg_deg": 11, "max_deg": 504},
    "enron": {"domain": "Commn.", "nodes": 36_000, "edges": 180_000, "avg_deg": 5, "max_deg": 1385},
    "hepph": {"domain": "Citation", "nodes": 34_000, "edges": 421_000, "avg_deg": 12, "max_deg": 848},
    "slashdot": {"domain": "Soc. net.", "nodes": 82_000, "edges": 900_000, "avg_deg": 11, "max_deg": 2554},
    "epinions": {"domain": "Soc. net.", "nodes": 131_000, "edges": 841_000, "avg_deg": 6, "max_deg": 3558},
    "orkut": {"domain": "Soc. net.", "nodes": 524_000, "edges": 1_300_000, "avg_deg": 3, "max_deg": 1634},
    "roadnetca": {"domain": "Road net.", "nodes": 2_000_000, "edges": 2_700_000, "avg_deg": 1.3, "max_deg": 14},
    "brain": {"domain": "Biology", "nodes": 400_000, "edges": 1_100_000, "avg_deg": 3, "max_deg": 286},
}


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in."""

    name: str
    domain: str
    n: int
    avg_degree: float
    gamma: float  # Zipf tail exponent; 0 means grid road network
    max_degree: int  # hub cap (0 for the grid)
    seed: int

    def paper_stats(self) -> Dict:
        return PAPER_TABLE1[self.name]


# Skew ordering follows the paper's max/avg degree ratios:
# epinions (593x) > orkut (545x) > brightkite (284x) ~ enron (277x) >
# slashdot (232x) > brain (95x) > hepph (71x) ~ condmat (70x) >
# astroph (46x) >> roadnetca (11x).  Hub caps are the paper's max degrees
# scaled by ~1/15 and bounded by n/5.
_SPECS: Dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        DatasetSpec("brightkite", "Geo loc.", 580, 4.0, 2.0, 95, 101),
        DatasetSpec("condmat", "Collab.", 460, 4.0, 2.4, 28, 102),
        DatasetSpec("astroph", "Collab.", 360, 8.0, 2.5, 42, 103),
        DatasetSpec("enron", "Commn.", 720, 5.0, 2.0, 115, 104),
        DatasetSpec("hepph", "Citation", 450, 9.0, 2.3, 70, 105),
        DatasetSpec("slashdot", "Soc. net.", 820, 8.0, 2.1, 160, 106),
        DatasetSpec("epinions", "Soc. net.", 900, 6.0, 1.9, 200, 107),
        DatasetSpec("orkut", "Soc. net.", 1000, 3.0, 1.9, 130, 108),
        DatasetSpec("roadnetca", "Road net.", 1200, 2.6, 0.0, 0, 109),
        DatasetSpec("brain", "Biology", 800, 3.0, 2.4, 24, 110),
    ]
}


def dataset_names() -> List[str]:
    """Names in the paper's Table 1 order."""
    return list(PAPER_TABLE1)


@lru_cache(maxsize=None)
def dataset(name: str) -> Graph:
    """Build (and cache) the stand-in graph for a paper dataset.

    Graphs are restricted to their largest connected component so every
    query has a chance to match, and generation is fully deterministic
    (fixed per-dataset seed).
    """
    try:
        spec = _SPECS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; options: {dataset_names()}") from None
    rng = np.random.default_rng(spec.seed)
    if spec.gamma == 0.0:
        side = int(round(spec.n**0.5))
        g = grid_road_network(side, spec.n // side, rng, name=spec.name)
    else:
        seq = zipf_degree_sequence(
            spec.n, spec.gamma, spec.avg_degree, max_degree=spec.max_degree, rng=rng
        )
        g = chung_lu(seq, rng, name=spec.name)
    g = largest_component_subgraph(g)
    g.name = spec.name
    return g


def all_datasets() -> Dict[str, Graph]:
    """Every Table 1 stand-in, keyed by paper dataset name."""
    return {name: dataset(name) for name in dataset_names()}
