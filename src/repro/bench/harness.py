"""Experiment harness: table formatting, scaled-down experiment grids.

Every benchmark prints its results as an aligned text table (one per
paper table/figure), with paper-reported reference values alongside where
applicable.  ``REPRO_BENCH_SCALE`` (environment variable, default 1.0)
scales workload sizes for quick smoke runs vs fuller sweeps.
"""

from __future__ import annotations

import math
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence

from ..engine import CountingEngine, CountRequest, RunResult
from ..graph.graph import Graph

__all__ = [
    "bench_scale",
    "format_table",
    "print_table",
    "Timer",
    "geometric_mean",
    "grid_graph_names",
    "grid_query_names",
    "engine_for",
    "run_query_grid",
    "SIM_RANKS_LOW",
    "SIM_RANKS_HIGH",
]

#: Simulated rank counts standing in for the paper's 32 and 512 MPI ranks
#: (scaled with the ~100x graph downscale; the *ratio* 16x is preserved).
SIM_RANKS_LOW = 2
SIM_RANKS_HIGH = 32


def bench_scale() -> float:
    """Workload scale multiplier from the environment (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def grid_graph_names(light: bool = False) -> List[str]:
    """Datasets used for graph-x-query grids; light mode trims the list."""
    full = [
        "condmat",
        "astroph",
        "enron",
        "brightkite",
        "hepph",
        "slashdot",
        "epinions",
        "orkut",
        "roadnetca",
        "brain",
    ]
    if light or bench_scale() < 1.0:
        return ["condmat", "enron", "epinions", "roadnetca"]
    return full


def grid_query_names(light: bool = False) -> List[str]:
    """Queries used for graph-x-query grids; light mode trims the list."""
    full = [
        "glet1",
        "glet2",
        "youtube",
        "wiki",
        "dros",
        "ecoli1",
        "ecoli2",
        "brain1",
        "brain2",
        "brain3",
    ]
    if light or bench_scale() < 1.0:
        return ["glet1", "youtube", "wiki", "dros"]
    return full


def engine_for(g: Graph, **config_overrides) -> CountingEngine:
    """A fresh :class:`CountingEngine` for one benchmark's graph.

    Benchmarks that sweep queries over one graph should create the
    engine once and batch through :func:`run_query_grid` so each query
    is planned exactly once for the whole sweep.
    """
    return CountingEngine(g, **config_overrides)


def run_query_grid(
    g: Graph,
    queries: Sequence,
    trials: int,
    seed: int,
    method: str = "db",
    num_colors: Optional[int] = None,
    engine: Optional[CountingEngine] = None,
) -> List[RunResult]:
    """One batched engine pass over ``queries`` (the Fig 8-10/15 shape).

    Every query's decomposition plan is built once and shared by all its
    trials; results are bit-identical to per-query ``estimate_matches``
    calls with the same ``trials``/``seed``.
    """
    engine = engine if engine is not None else engine_for(g)
    requests = [
        CountRequest(
            query=q, trials=trials, seed=seed, method=method, num_colors=num_colors
        )
        for q in queries
    ]
    return engine.count_many(requests)


class Timer:
    """Wall-clock stopwatch."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    @contextmanager
    def measure(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.elapsed = time.perf_counter() - start


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean over the positive entries (0.0 when none)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))


def format_table(
    rows: Iterable[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    floatfmt: str = ".3g",
) -> str:
    """Render dict rows as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return f"== {title} ==\n(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(row: Dict[str, object], c: str) -> str:
        v = row.get(c, "")
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    rendered = [[cell(r, c) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    rows: Iterable[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    floatfmt: str = ".3g",
) -> None:
    """Print an aligned table built by :func:`format_table`."""
    print()
    print(format_table(rows, columns=columns, title=title, floatfmt=floatfmt))
