"""Experiment harness: table formatting, grids, perf records, CI gate.

Every benchmark prints its results as an aligned text table (one per
paper table/figure), with paper-reported reference values alongside where
applicable.  ``REPRO_BENCH_SCALE`` (environment variable, default 1.0)
scales workload sizes for quick smoke runs vs fuller sweeps.

Besides the tables, benchmarks can emit machine-comparable timing records
as ``BENCH_<name>.json`` files (:func:`bench_record` /
:func:`write_bench_json`), and ``python -m repro.bench.harness`` runs the
fixed **perf-smoke** grid, emits its JSON, and — with ``--baseline`` —
fails (exit 1) when any tracked benchmark regresses more than the
tolerance (default 2x) against the committed baseline.  CI runs exactly
that; refresh the baseline with ``--update-baseline`` after intentional
performance changes.

``--scaling`` switches to the **strong-scaling** bench: the real
``ps-dist`` executor over the scaling grid at ``--workers`` shard counts
(default 1,2,4), emitting ``BENCH_scaling.json`` and — with
``--assert-speedup X`` — failing unless the geomean measured speedup at
the largest worker count reaches ``X``.  ``--serve-smoke`` switches to
the **service** bench (:mod:`repro.bench.serve`): boot the counting
service in-process, measure cold vs cached request latency, emit
``BENCH_serve.json`` and — with ``--assert-qps X`` — fail below a
cached-path throughput floor.  Every bench coloring is seeded from
``EngineConfig.seed`` (override with ``--seed``), so runs are
deterministic under CI.
"""

from __future__ import annotations

import json
import math
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine import CountingEngine, CountRequest, EngineConfig, PrecisionSpec, RunResult
from ..graph.graph import Graph

__all__ = [
    "bench_scale",
    "format_table",
    "print_table",
    "Timer",
    "geometric_mean",
    "grid_graph_names",
    "grid_query_names",
    "engine_for",
    "run_query_grid",
    "SIM_RANKS_LOW",
    "SIM_RANKS_HIGH",
    "bench_record",
    "calibration_seconds",
    "write_bench_json",
    "load_bench_json",
    "compare_to_baseline",
    "run_perf_smoke",
    "run_scaling_bench",
    "run_precision_smoke",
    "PERF_SMOKE_GRID",
    "PRECISION_GRID",
    "PRECISION_REL_ERROR",
    "PRECISION_CONFIDENCE",
    "PRECISION_MAX_TRIALS",
    "STRICT_OVERHEAD_CELL",
    "STRICT_OVERHEAD_LIMIT",
    "OBS_OVERHEAD_LIMIT",
    "SCALING_GRID",
    "SCALING_WORKERS",
    "DEFAULT_TOLERANCE",
    "main",
]

#: Simulated rank counts standing in for the paper's 32 and 512 MPI ranks
#: (scaled with the ~100x graph downscale; the *ratio* 16x is preserved).
SIM_RANKS_LOW = 2
SIM_RANKS_HIGH = 32


def bench_scale() -> float:
    """Workload scale multiplier from the environment (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def grid_graph_names(light: bool = False) -> List[str]:
    """Datasets used for graph-x-query grids; light mode trims the list."""
    full = [
        "condmat",
        "astroph",
        "enron",
        "brightkite",
        "hepph",
        "slashdot",
        "epinions",
        "orkut",
        "roadnetca",
        "brain",
    ]
    if light or bench_scale() < 1.0:
        return ["condmat", "enron", "epinions", "roadnetca"]
    return full


def grid_query_names(light: bool = False) -> List[str]:
    """Queries used for graph-x-query grids; light mode trims the list."""
    full = [
        "glet1",
        "glet2",
        "youtube",
        "wiki",
        "dros",
        "ecoli1",
        "ecoli2",
        "brain1",
        "brain2",
        "brain3",
    ]
    if light or bench_scale() < 1.0:
        return ["glet1", "youtube", "wiki", "dros"]
    return full


def engine_for(
    g: Graph, config: Optional[EngineConfig] = None, **config_overrides
) -> CountingEngine:
    """A fresh :class:`CountingEngine` for one benchmark's graph.

    Benchmarks that sweep queries over one graph should create the
    engine once and batch through :func:`run_query_grid` so each query
    is planned exactly once for the whole sweep.  Every bench coloring
    RNG is derived from the engine's ``config.seed`` so CI runs are
    reproducible end to end.
    """
    return CountingEngine(g, config, **config_overrides)


def run_query_grid(
    g: Graph,
    queries: Sequence,
    trials: int,
    seed: int,
    method: str = "db",
    num_colors: Optional[int] = None,
    engine: Optional[CountingEngine] = None,
) -> List[RunResult]:
    """One batched engine pass over ``queries`` (the Fig 8-10/15 shape).

    Every query's decomposition plan is built once and shared by all its
    trials; results are bit-identical to per-query ``estimate_matches``
    calls with the same ``trials``/``seed``.
    """
    engine = engine if engine is not None else engine_for(g)
    requests = [
        CountRequest(
            query=q, trials=trials, seed=seed, method=method, num_colors=num_colors
        )
        for q in queries
    ]
    return engine.count_many(requests)


class Timer:
    """Wall-clock stopwatch."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    @contextmanager
    def measure(self):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.elapsed = time.perf_counter() - start


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean over the positive entries (0.0 when none)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in vals) / len(vals)))


def format_table(
    rows: Iterable[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    floatfmt: str = ".3g",
) -> str:
    """Render dict rows as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return f"== {title} ==\n(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(row: Dict[str, object], c: str) -> str:
        v = row.get(c, "")
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    rendered = [[cell(r, c) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    rows: Iterable[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
    floatfmt: str = ".3g",
) -> None:
    """Print an aligned table built by :func:`format_table`."""
    print()
    print(format_table(rows, columns=columns, title=title, floatfmt=floatfmt))


# ----------------------------------------------------------------------
# machine-comparable perf records + the CI regression gate
# ----------------------------------------------------------------------

#: default regression tolerance: a tracked benchmark fails CI when it is
#: more than this factor slower than the committed baseline (override per
#: run with --tolerance or the REPRO_BENCH_TOLERANCE environment variable)
DEFAULT_TOLERANCE = 2.0

#: the fixed perf-smoke grid: small enough for CI, big enough that each
#: timing is tens of milliseconds (noise-robust under best-of-N)
PERF_SMOKE_GRID = (
    ("condmat", "glet1", "ps"),
    ("condmat", "glet1", "ps-vec"),
    ("condmat", "wiki", "ps"),
    ("condmat", "wiki", "ps-vec"),
    ("enron", "youtube", "ps"),
    ("enron", "youtube", "ps-vec"),
    ("enron", "wiki", "ps-vec"),
    ("enron", "youtube", "db"),
)

#: the strict-namespace datapoint rides the perf-smoke run on this cell:
#: ps-vec through the audited StrictNamespace stub must stay within this
#: factor of the raw-NumPy timing of the same cell.  The seam adds one
#: Python method call per whole-table primitive — per-call overhead is
#: amortized over array-sized work, so 1.3x is generous headroom
STRICT_OVERHEAD_CELL = ("condmat", "wiki")
STRICT_OVERHEAD_LIMIT = 1.3

#: observability-overhead datapoint on the same cell: ps-vec with
#: :mod:`repro.obs` enabled (the default — spans/counters present but
#: nobody collecting) must stay within this factor of the same run with
#: the kill-switch thrown.  A dormant span costs two module-attribute
#: reads per call site, so instrumentation must be within noise of free
OBS_OVERHEAD_LIMIT = 1.05


def calibration_seconds(repeats: int = 3) -> float:
    """Machine-speed probe: a fixed lexsort + segment-sum workload.

    The instruction mix mirrors the vectorized kernels (sort, gather,
    ``reduceat``), so dividing a benchmark's wall-clock by this number
    yields a machine-relative figure: the perf gate can then compare a
    CI runner against a baseline recorded on any other machine without
    the absolute hardware speed polluting the ratio.
    """
    import numpy as np

    n = 400_000
    keys = (np.arange(n, dtype=np.int64) * 2654435761) % 1000003
    vals = np.ones(n, dtype=np.int64)
    best = math.inf
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        order = np.argsort(keys, kind="stable")
        s = keys[order]
        starts = np.flatnonzero(np.r_[True, s[1:] != s[:-1]])
        total = int(np.add.reduceat(vals[order], starts).sum())
        best = min(best, time.perf_counter() - t0)
        assert total == n
    return best


def bench_record(
    bench: str,
    graph: str,
    query: str,
    method: str,
    seconds: float,
    count: Optional[int] = None,
    **extra: object,
) -> Dict[str, object]:
    """One comparable timing record; ``key`` identifies it across runs."""
    rec: Dict[str, object] = {
        "key": f"{bench}/{graph}/{query}/{method}",
        "bench": bench,
        "graph": graph,
        "query": query,
        "method": method,
        "seconds": float(seconds),
    }
    if count is not None:
        rec["count"] = int(count)
    rec.update(extra)
    return rec


def write_bench_json(path: str, records: Sequence[Dict[str, object]], **meta: object) -> str:
    """Write records (plus meta) to ``path`` as a ``BENCH_*.json`` document."""
    doc = {
        "schema": "repro-bench/1",
        "scale": bench_scale(),
        **meta,
        "records": list(records),
    }
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_bench_json(path: str) -> Dict[str, object]:
    """Load a ``BENCH_*.json`` / ``baseline.json`` document."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def compare_to_baseline(
    records: Sequence[Dict[str, object]],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, object]]:
    """Regressions of ``records`` against a baseline document.

    Only keys present in both are compared (new benchmarks never fail the
    gate; they start being tracked once the baseline is refreshed).
    When both sides carry a ``calibrated`` figure (seconds divided by the
    run's :func:`calibration_seconds`), the ratio compares those —
    machine-relative, so a slower CI runner does not read as a code
    regression; otherwise raw seconds are compared.  Returns one dict per
    offending record with the slowdown ratio and the metric used.
    """
    base = {r["key"]: r for r in baseline.get("records", []) if "key" in r}
    regressions = []
    for rec in records:
        ref = base.get(rec.get("key"))
        if ref is None:
            continue
        if "calibrated" in rec and "calibrated" in ref:
            metric = "calibrated"
        elif "seconds" in rec and "seconds" in ref:
            metric = "seconds"
        else:
            continue
        prev = float(ref[metric])
        if prev <= 0:
            continue
        ratio = float(rec[metric]) / prev
        if ratio > tolerance:
            regressions.append(
                {
                    "key": rec["key"],
                    "current": float(rec[metric]),
                    "baseline": prev,
                    "ratio": ratio,
                    "metric": metric,
                }
            )
    return regressions


def _bench_coloring(engine: CountingEngine, k: int, salt: int = 2016):
    """One deterministic coloring, seeded from the engine's config seed.

    All bench-path randomness roots in ``EngineConfig.seed`` (plus fixed
    structural salts) — never a bare ``np.random``/``random`` call — so
    every CI run of the perf and scaling benches sees identical
    colorings and therefore identical workloads.
    """
    from ..counting.colorings import uniform_coloring
    import numpy as np

    rng = np.random.default_rng(engine.config.seed + salt + k)
    return uniform_coloring(engine.graph.n, k, rng)


def run_perf_smoke(
    repeats: int = 3, config: Optional[EngineConfig] = None
) -> List[Dict[str, object]]:
    """Run the fixed perf-smoke grid; each cell is best-of-``repeats``.

    The grid pins one deterministic coloring per (graph, query) pair —
    derived from ``config.seed`` (default :class:`EngineConfig` seed),
    identical across methods and runs — so records compare kernels, not
    color luck.  Every record carries both raw ``seconds`` and a
    machine-relative ``calibrated`` figure (seconds over this run's
    :func:`calibration_seconds`), which is what the gate compares.
    """
    from .datasets import dataset
    from ..query.library import paper_query

    cal = calibration_seconds()
    records = []
    engines: Dict[str, CountingEngine] = {}
    for gname, qname, method in PERF_SMOKE_GRID:
        engine = engines.setdefault(gname, engine_for(dataset(gname), config))
        q = paper_query(qname)
        colors = _bench_coloring(engine, q.k)
        plan = engine.plan_for(q)  # planning cost excluded: the gate tracks kernels
        best, count = math.inf, None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            count = engine.count_colorful(q, colors, method=method, plan=plan)
            best = min(best, time.perf_counter() - t0)
        records.append(
            bench_record(
                "perf_smoke", gname, qname, method, best,
                count=count, calibrated=best / cal,
            )
        )

    # strict-namespace datapoint: same cell, same plan/coloring, ps-vec
    # through the audited StrictNamespace stub.  The record carries the
    # measured overhead ratio; main() gates it at STRICT_OVERHEAD_LIMIT.
    # The ratio is best-of-N strict over best-of-N numpy timed
    # back-to-back here (one warmup each, repeat floor of 3) — the grid's
    # numpy record above may be a single cold sample under --repeats 1,
    # and a ratio of two cold singles is all noise.
    from ..engine.backends import DEFAULT_REGISTRY

    gname, qname = STRICT_OVERHEAD_CELL
    engine = engines.setdefault(gname, engine_for(dataset(gname), config))
    q = paper_query(qname)
    colors = _bench_coloring(engine, q.k)
    plan = engine.plan_for(q)
    vec = DEFAULT_REGISTRY.get("ps-vec")

    def _best_of(namespace: str, reps: int) -> Tuple[float, int]:
        vec.count_colorful(engine.graph, q, colors, plan=plan, namespace=namespace)
        best, count = math.inf, 0
        for _ in range(reps):
            t0 = time.perf_counter()
            count = vec.count_colorful(
                engine.graph, q, colors, plan=plan, namespace=namespace
            )
            best = min(best, time.perf_counter() - t0)
        return best, count

    reps = max(3, repeats)
    numpy_best, numpy_count = _best_of("numpy", reps)
    best, count = _best_of("strict", reps)
    assert count == numpy_count, "strict namespace changed the count"
    numpy_ref = next(
        r for r in records if r["key"] == f"perf_smoke/{gname}/{qname}/ps-vec"
    )
    assert count == numpy_ref["count"], "strict namespace changed the count"
    records.append(
        bench_record(
            "perf_smoke", gname, qname, "ps-vec@strict", best,
            count=count, calibrated=best / cal, namespace="strict",
            overhead_vs_numpy=best / numpy_best,
        )
    )

    # obs-overhead datapoint: the same ps-vec cell with the observability
    # layer kill-switched off.  ``numpy_best`` above ran with obs enabled
    # (the default: spans and counters present, nobody collecting);
    # main() gates enabled-over-disabled at OBS_OVERHEAD_LIMIT.
    from .. import obs

    obs.disable()
    try:
        off_best, off_count = _best_of("numpy", reps)
    finally:
        obs.enable()
    assert off_count == numpy_count, "obs kill-switch changed the count"
    records.append(
        bench_record(
            "perf_smoke", gname, qname, "ps-vec@obs-off", off_best,
            count=off_count, calibrated=off_best / cal,
            overhead_obs_enabled=numpy_best / off_best,
        )
    )
    return records


# ----------------------------------------------------------------------
# adaptive-precision bench (trials saved vs a fixed worst-case schedule)
# ----------------------------------------------------------------------

#: the precision grid: per-trial variance differs widely across these
#: cells, which is exactly what a fixed trial schedule cannot exploit —
#: it must provision for the worst cell while the adaptive scheduler
#: stops each cell at its own convergence point
PRECISION_GRID = (
    ("condmat", "glet1"),
    ("condmat", "youtube"),
    ("enron", "glet1"),
    ("enron", "glet2"),
    ("epinions", "glet1"),
    ("roadnetca", "glet1"),
    ("roadnetca", "wiki"),
)

#: the smoke target: 5% relative error at 95% confidence
PRECISION_REL_ERROR = 0.05
PRECISION_CONFIDENCE = 0.95
#: the adaptive cap — also the ceiling a fixed schedule may not exceed
PRECISION_MAX_TRIALS = 400


def run_precision_smoke(
    rel_error: float = PRECISION_REL_ERROR,
    confidence: float = PRECISION_CONFIDENCE,
    max_trials: int = PRECISION_MAX_TRIALS,
    config: Optional[EngineConfig] = None,
) -> Dict[str, object]:
    """Adaptive-precision sweep: trials saved vs a fixed worst-case schedule.

    Every grid cell runs adaptively to the same ``(rel_error,
    confidence)`` target under one shared cap.  The fixed-schedule
    baseline is the *worst-case* realised trial count over the grid —
    what a bare ``trials=N`` caller must provision to hit the target on
    every cell without knowing per-cell variance in advance.  Per-cell
    savings is ``worst_case / trials_used``; the document's
    ``geomean_trials_saved`` is the figure the CI gate asserts.

    Two invariants are checked here (not just gated downstream): each
    cell's realised trial count never exceeds the fixed baseline, and
    each cell actually reached the requested precision (its final CI
    half-width is within the target), so the savings can never be
    bought by under-delivering on error.
    """
    from .datasets import dataset
    from ..query.library import paper_query

    cfg = config if config is not None else EngineConfig()
    spec = PrecisionSpec(
        rel_error=rel_error, confidence=confidence, max_trials=max_trials
    )
    cells: List[Dict[str, object]] = []
    for gname, qname in PRECISION_GRID:
        engine = engine_for(dataset(gname), cfg)
        q = paper_query(qname)
        t0 = time.perf_counter()
        # ps-vec: every precision cell is an unlabeled paper query under
        # the exact-k palette, and the vectorized kernel keeps the many-
        # trial sweep cheap enough for a CI smoke lane
        res = engine.count(q, method="ps-vec", precision=spec)
        seconds = time.perf_counter() - t0
        if res.ci_low is None or res.ci_high is None or res.estimate <= 0:
            raise AssertionError(
                f"precision cell {gname}/{qname} produced no interval "
                f"(estimate={res.estimate}); cannot certify the target"
            )
        halfwidth = (res.ci_high - res.ci_low) / (2.0 * res.estimate)
        if halfwidth > rel_error * (1.0 + 1e-9):
            raise AssertionError(
                f"precision cell {gname}/{qname} missed the target: "
                f"rel halfwidth {halfwidth:.4f} > {rel_error:g} "
                f"after {res.trials_used} trials (cap {max_trials})"
            )
        cells.append(
            bench_record(
                "precision", gname, qname, "ps-vec-adaptive", seconds,
                trials_used=res.trials_used,
                stopped_early=res.stopped_early,
                rel_halfwidth=halfwidth,
                estimate=res.estimate,
            )
        )
    worst_case = max(int(c["trials_used"]) for c in cells)
    for c in cells:
        used = int(c["trials_used"])
        if used > worst_case:  # pragma: no cover - max() invariant
            raise AssertionError(
                f"{c['key']}: adaptive used {used} > fixed baseline {worst_case}"
            )
        c["trials_saved"] = worst_case / used
    geomean = geometric_mean([float(c["trials_saved"]) for c in cells])
    return {
        "rel_error": rel_error,
        "confidence": confidence,
        "max_trials": max_trials,
        "seed": cfg.seed,
        "trials_fixed_worst_case": worst_case,
        "geomean_trials_saved": geomean,
        "records": cells,
    }


# ----------------------------------------------------------------------
# strong-scaling bench (real sharded execution, paper Figure 13 shape)
# ----------------------------------------------------------------------

#: shard counts the strong-scaling bench sweeps (paper: 32..512 ranks)
SCALING_WORKERS = (1, 2, 4)

#: the scaling grid: skewed stand-ins plus the roadNetCA grid stand-in,
#: sized so per-trial shard compute dominates executor orchestration
SCALING_GRID = (
    ("slashdot", "wiki"),
    ("epinions", "wiki"),
    ("roadnetca", "wiki"),
    ("enron", "dros"),
)


def run_scaling_bench(
    workers: Sequence[int] = SCALING_WORKERS,
    repeats: int = 3,
    config: Optional[EngineConfig] = None,
) -> Dict[str, object]:
    """Strong-scaling sweep of the real ``ps-dist`` executor.

    For every grid cell, runs one fixed coloring (seeded from
    ``config.seed``) through a :class:`ShardedExecutor` at each worker
    count and records best-of-``repeats`` timings.  The scaling metric is
    the measured **critical path** — per-superstep slowest-rank CPU
    seconds, the measured analogue of the simulated makespan — which
    tracks shard compute even when CI workers time-slice fewer physical
    cores than ranks; end-to-end ``wall`` seconds (including the boundary
    exchange) are reported alongside.  Counts are asserted bit-identical
    across all worker counts and against ``ps-vec``.

    Returns a JSON-ready document: per-run ``records``, per-cell
    ``speedups``, and the geomean ``speedup_at_max`` over the grid at the
    largest worker count (the figure the CI gate asserts).
    """
    from .datasets import dataset
    from ..distributed.executor import ShardedExecutor
    from ..query.library import paper_query

    workers = sorted(set(int(w) for w in workers))
    if not workers or workers[0] < 1:
        raise ValueError(f"invalid worker counts {workers!r}")
    cfg = config if config is not None else EngineConfig()
    cal = calibration_seconds()
    records: List[Dict[str, object]] = []
    speedups: List[Dict[str, object]] = []
    for gname, qname in SCALING_GRID:
        engine = engine_for(dataset(gname), cfg)
        q = paper_query(qname)
        colors = _bench_coloring(engine, q.k)
        plan = engine.plan_for(q)
        ref = engine.count_colorful(q, colors, method="ps-vec", plan=plan)
        crit_by_w: Dict[int, float] = {}
        row: Dict[str, object] = {"key": f"scaling/{gname}/{qname}", "count": ref}
        for w in workers:
            with ShardedExecutor(engine.graph, workers=w,
                                 strategy=cfg.partition_strategy) as executor:
                best_crit, best_wall, imbalance = math.inf, math.inf, 1.0
                rows_exchanged = 0
                for _ in range(max(1, repeats)):
                    count, stats = executor.count(plan, colors)
                    if count != ref:  # pragma: no cover - parity invariant
                        raise AssertionError(
                            f"ps-dist({w}) diverged from ps-vec on {gname}/{qname}: "
                            f"{count} != {ref}"
                        )
                    crit = stats.critical_seconds()
                    if crit < best_crit:
                        best_crit, imbalance = crit, stats.imbalance()
                        rows_exchanged = stats.exchanged_rows()
                    best_wall = min(best_wall, stats.wall_seconds)
            crit_by_w[w] = best_crit
            records.append(
                bench_record(
                    "scaling", gname, qname, f"ps-dist-w{w}", best_wall,
                    count=ref, workers=w,
                    critical_seconds=best_crit,
                    calibrated=best_crit / cal,
                    imbalance=imbalance,
                    exchanged_rows=rows_exchanged,
                )
            )
        base = crit_by_w[workers[0]]
        for w in workers[1:]:
            row[f"speedup@{w}"] = base / crit_by_w[w] if crit_by_w[w] > 0 else 1.0
        speedups.append(row)
    wmax = workers[-1]
    geomean = geometric_mean(
        [float(row.get(f"speedup@{wmax}", 1.0)) for row in speedups]
    ) if len(workers) > 1 else 1.0
    return {
        "workers": workers,
        "cores": os.cpu_count(),
        "seed": cfg.seed,
        "metric": "critical_seconds (per-superstep max per-rank CPU)",
        "speedup_at_max": geomean,
        "records": records,
        "speedups": speedups,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.bench.harness`` — perf/scaling runner and CI gates."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.bench.harness",
        description="Run the perf-smoke grid (default) or the ps-dist "
        "strong-scaling bench (--scaling); emit/check BENCH JSON records.",
    )
    parser.add_argument(
        "--emit-json", metavar="PATH", default=None,
        help="write the run's records to PATH as a BENCH_*.json document",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare against this baseline.json; exit 1 on any >tolerance regression",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline with this run's records instead of checking",
    )
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="slowdown factor that fails the gate (default: %(default)s)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per grid cell, best-of (default: 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=EngineConfig().seed,
        help="root seed for every bench coloring RNG (default: %(default)s)",
    )
    parser.add_argument(
        "--scaling", action="store_true",
        help="run the ps-dist strong-scaling bench instead of perf-smoke",
    )
    parser.add_argument(
        "--workers", default=",".join(str(w) for w in SCALING_WORKERS),
        help="comma-separated shard counts for --scaling (default: %(default)s)",
    )
    parser.add_argument(
        "--assert-speedup", type=float, default=None, metavar="X",
        help="with --scaling: exit 1 unless the geomean measured speedup at "
        "the largest worker count is >= X (critical-path metric)",
    )
    parser.add_argument(
        "--serve-smoke", action="store_true",
        help="run the counting-service throughput bench instead of perf-smoke",
    )
    parser.add_argument(
        "--precision-smoke", action="store_true",
        help="run the adaptive-precision bench (trials saved vs a fixed "
        "worst-case schedule) instead of perf-smoke",
    )
    parser.add_argument(
        "--rel-error", type=float, default=PRECISION_REL_ERROR, metavar="EPS",
        help="with --precision-smoke: target relative error (default: %(default)s)",
    )
    parser.add_argument(
        "--confidence", type=float, default=PRECISION_CONFIDENCE, metavar="C",
        help="with --precision-smoke: confidence level (default: %(default)s)",
    )
    parser.add_argument(
        "--assert-savings", type=float, default=None, metavar="X",
        help="with --precision-smoke: exit 1 unless the geomean trials-saved "
        "factor vs the fixed worst-case schedule is >= X",
    )
    parser.add_argument(
        "--duration", type=float, default=1.0,
        help="with --serve-smoke: seconds per cached-path timing loop "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--assert-qps", type=float, default=None, metavar="X",
        help="with --serve-smoke: exit 1 unless the geomean cached-path "
        "HTTP throughput is >= X requests/second",
    )
    args = parser.parse_args(argv)
    if args.update_baseline and not args.baseline:
        parser.error("--update-baseline requires --baseline PATH")
    config = EngineConfig(seed=args.seed)

    if args.serve_smoke:
        from .serve import run_serve_smoke

        doc = run_serve_smoke(duration=args.duration, config=config)
        print_table(
            doc["records"],
            columns=["key", "seconds", "qps", "requests", "count"],
            title="service smoke (cold / cached-http / cached-local)",
        )
        print(f"[cache: {doc['cache']}]")
        print(f"[geomean cached-path throughput: {doc['cached_qps']:.0f} req/s]")
        if args.emit_json:
            meta = {k: v for k, v in doc.items() if k != "records"}
            path = write_bench_json(args.emit_json, doc["records"], **meta)
            print(f"[bench json written to {path}]")
        if args.assert_qps is not None and doc["cached_qps"] < args.assert_qps:
            print(f"FAIL: cached-path throughput {doc['cached_qps']:.0f} req/s "
                  f"< required {args.assert_qps:g} req/s")
            return 1
        return 0

    if args.precision_smoke:
        doc = run_precision_smoke(
            rel_error=args.rel_error, confidence=args.confidence, config=config
        )
        print_table(
            doc["records"],
            columns=["key", "trials_used", "stopped_early", "trials_saved",
                     "rel_halfwidth", "seconds"],
            title=(f"adaptive precision ({doc['rel_error']:g} rel error @ "
                   f"{doc['confidence']:g} confidence)"),
        )
        print(f"[fixed worst-case schedule: {doc['trials_fixed_worst_case']} trials]")
        print(f"[geomean trials saved: {doc['geomean_trials_saved']:.2f}x]")
        if args.emit_json:
            meta = {k: v for k, v in doc.items() if k != "records"}
            path = write_bench_json(args.emit_json, doc["records"], **meta)
            print(f"[bench json written to {path}]")
        if (args.assert_savings is not None
                and doc["geomean_trials_saved"] < args.assert_savings):
            print(f"FAIL: geomean trials saved {doc['geomean_trials_saved']:.2f}x "
                  f"< required {args.assert_savings:g}x")
            return 1
        return 0

    if args.scaling:
        workers = [int(w) for w in str(args.workers).split(",") if w.strip()]
        doc = run_scaling_bench(workers=workers, repeats=args.repeats, config=config)
        print_table(
            doc["records"],
            columns=["key", "workers", "seconds", "critical_seconds",
                     "calibrated", "imbalance", "count"],
            title=f"ps-dist strong scaling ({doc['cores']} cores)",
        )
        print_table(
            doc["speedups"], title="measured speedup (critical path vs 1 worker)",
            floatfmt=".2f",
        )
        print(f"[geomean speedup at {doc['workers'][-1]} workers: "
              f"{doc['speedup_at_max']:.2f}x]")
        if args.emit_json:
            meta = {k: v for k, v in doc.items() if k != "records"}
            path = write_bench_json(args.emit_json, doc["records"], **meta)
            print(f"[bench json written to {path}]")
        if args.assert_speedup is not None and doc["speedup_at_max"] < args.assert_speedup:
            print(f"FAIL: geomean speedup {doc['speedup_at_max']:.2f}x "
                  f"< required {args.assert_speedup:g}x")
            return 1
        return 0

    records = run_perf_smoke(repeats=args.repeats, config=config)
    print_table(
        records, columns=["key", "seconds", "calibrated", "count"], title="perf-smoke"
    )

    strict = next((r for r in records if r.get("namespace") == "strict"), None)
    if strict is not None:
        overhead = float(strict["overhead_vs_numpy"])
        print(f"[strict-namespace overhead vs raw NumPy: {overhead:.2f}x]")
        if overhead > STRICT_OVERHEAD_LIMIT:
            print(
                f"FAIL: strict-namespace seam overhead {overhead:.2f}x > "
                f"allowed {STRICT_OVERHEAD_LIMIT:g}x on "
                f"{'/'.join(STRICT_OVERHEAD_CELL)}"
            )
            return 1

    obs_rec = next(
        (r for r in records if str(r["key"]).endswith("ps-vec@obs-off")), None
    )
    if obs_rec is not None:
        obs_overhead = float(obs_rec["overhead_obs_enabled"])
        print(f"[obs instrumentation overhead (enabled vs disabled): "
              f"{obs_overhead:.2f}x]")
        if obs_overhead > OBS_OVERHEAD_LIMIT:
            print(
                f"FAIL: obs instrumentation overhead {obs_overhead:.2f}x > "
                f"allowed {OBS_OVERHEAD_LIMIT:g}x on "
                f"{'/'.join(STRICT_OVERHEAD_CELL)}"
            )
            return 1

    if args.emit_json:
        path = write_bench_json(args.emit_json, records)
        print(f"[bench json written to {path}]")

    if args.baseline and args.update_baseline:
        path = write_bench_json(args.baseline, records)
        print(f"[baseline updated at {path}]")
        return 0
    if args.baseline:
        baseline = load_bench_json(args.baseline)
        regressions = compare_to_baseline(records, baseline, tolerance=args.tolerance)
        if regressions:
            print_table(
                regressions,
                columns=["key", "current", "baseline", "ratio", "metric"],
                title=f"REGRESSIONS (> {args.tolerance:g}x baseline)",
            )
            return 1
        print(f"[perf gate OK: no benchmark slower than {args.tolerance:g}x baseline]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    import sys

    sys.exit(main())
