"""Exhaustive enumeration of decomposition trees (paper Section 6).

"An input query may admit multiple decomposition trees and the choice of
the tree influences the performance" — the planner heuristic and the
Figure 14 experiment both need the full set of trees, which this module
produces by branching the contraction process over every available block
at every step and deduplicating structurally identical results.
"""

from __future__ import annotations

from typing import List, Set

from ..query.query import QueryGraph
from ..query.treewidth import is_treewidth_at_most_2
from .blocks import SINGLETON, Block
from .contraction import ContractionState, contract, find_candidate_blocks
from .tree import DecompositionError, Plan

__all__ = ["enumerate_plans", "count_plans"]


def enumerate_plans(query: QueryGraph, limit: int = 20000) -> List[Plan]:
    """All structurally distinct decomposition trees of ``query``.

    ``limit`` caps the number of (state, choice) expansions to keep
    pathological inputs (e.g. large stars, whose leaf orderings explode
    factorially) bounded; the paper's ≤ 10-node queries stay far below it.
    """
    if not query.is_connected():
        raise DecompositionError("query must be connected")
    if not is_treewidth_at_most_2(query):
        raise DecompositionError("query treewidth exceeds 2")

    plans: List[Plan] = []
    seen_plans: Set[tuple] = set()
    expansions = 0

    def recurse(state: ContractionState) -> None:
        nonlocal expansions
        if state.num_nodes() == 0:
            raise AssertionError("recursion should stop at the root block")
        if state.num_nodes() == 1:
            (node,) = state.nodes()
            ann = {node: state.node_ann[node]} if node in state.node_ann else {}
            root = Block(SINGLETON, (node,), (), ann, {})
            plan = Plan(query, root)
            sig = plan.signature()
            if sig not in seen_plans:
                seen_plans.add(sig)
                plans.append(plan)
            return
        candidates = find_candidate_blocks(state)
        if not candidates:
            raise DecompositionError("contraction stuck mid-enumeration")
        # dedupe candidates that denote the same block
        unique = {}
        for cand in candidates:
            unique.setdefault(cand.key(), cand)
        for cand in unique.values():
            expansions += 1
            if expansions > limit:
                raise RuntimeError(
                    f"plan enumeration exceeded {limit} expansions; "
                    "raise the limit for this query"
                )
            branch = state.copy()
            block = contract(branch, cand)
            if branch.num_nodes() == 0:
                plan = Plan(query, block)
                sig = plan.signature()
                if sig not in seen_plans:
                    seen_plans.add(sig)
                    plans.append(plan)
            else:
                recurse(branch)

    recurse(ContractionState(query))
    return plans


def count_plans(query: QueryGraph, limit: int = 20000) -> int:
    """Number of structurally distinct decomposition trees."""
    return len(enumerate_plans(query, limit=limit))
