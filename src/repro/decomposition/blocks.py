"""Blocks of the decomposition tree (paper Section 4.1).

A *block* is either a **leaf edge** ``(a, b)`` (``b`` of degree one, ``a``
the boundary node) or a **contractible cycle** — an induced cycle with at
most two boundary nodes (nodes sharing edges with the outside).  Blocks
carry the annotations they inherited when contracted: child blocks hanging
off their nodes and edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

__all__ = ["Block", "CYCLE", "LEAF", "SINGLETON"]

Node = Hashable

CYCLE = "cycle"
LEAF = "leaf"
SINGLETON = "singleton"


@dataclass
class Block:
    """One node of the decomposition tree.

    Attributes
    ----------
    kind:
        ``"cycle"``, ``"leaf"`` or ``"singleton"`` (the synthetic root used
        when the contraction process ends with a single annotated node).
    nodes:
        For cycles: the node labels in cyclic order ``(a_0, ..., a_{L-1})``;
        edge ``i`` joins ``nodes[i]`` and ``nodes[(i+1) % L]``.
        For leaf edges: ``(a, b)`` with ``b`` the degree-one node.
        For singletons: ``(a,)``.
    boundary:
        Tuple of boundary node labels, in canonical (sorted-repr) order;
        length 0, 1 or 2.  The projection table of the block is keyed by
        the images of these nodes in this order.
    node_ann:
        ``label -> child Block`` for annotated nodes of this block.
    edge_ann:
        For cycles: ``edge index -> child Block``; for leaf edges the only
        edge has index ``0``.  The child's own ``boundary`` tuple tells
        which endpoint is its first boundary node (orientation).
    """

    kind: str
    nodes: Tuple[Node, ...]
    boundary: Tuple[Node, ...]
    node_ann: Dict[Node, "Block"] = field(default_factory=dict)
    edge_ann: Dict[int, "Block"] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Cycle length (number of nodes == edges); 1 for leaf edges."""
        return len(self.nodes) if self.kind == CYCLE else 1

    def children(self) -> List["Block"]:
        out = list(self.node_ann.values())
        out.extend(self.edge_ann.values())
        return out

    def descendants(self) -> List["Block"]:
        """All blocks in the subtree rooted here (preorder, self first)."""
        out: List[Block] = [self]
        for child in self.children():
            out.extend(child.descendants())
        return out

    def subquery_nodes(self) -> set:
        """Union of node labels in this block and all descendants."""
        out = set(self.nodes)
        for child in self.children():
            out |= child.subquery_nodes()
        return out

    def edge_endpoints(self, i: int) -> Tuple[Node, Node]:
        """Endpoints of cycle edge ``i`` (or the leaf edge for ``i == 0``)."""
        if self.kind == CYCLE:
            return self.nodes[i], self.nodes[(i + 1) % len(self.nodes)]
        if self.kind == LEAF and i == 0:
            return self.nodes[0], self.nodes[1]
        raise IndexError(f"no edge {i} on {self.kind} block")

    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Canonical structural signature (used to deduplicate plans)."""
        node_part = tuple(
            sorted((repr(n), child.signature()) for n, child in self.node_ann.items())
        )
        edge_part = tuple(
            sorted((i, child.signature()) for i, child in self.edge_ann.items())
        )
        return (
            self.kind,
            tuple(map(repr, self.nodes)),
            tuple(map(repr, self.boundary)),
            node_part,
            edge_part,
        )

    def describe(self, indent: int = 0) -> str:
        """Human-readable tree dump (used by the CLI and examples)."""
        pad = "  " * indent
        head = f"{pad}{self.kind} nodes={self.nodes} boundary={self.boundary}"
        lines = [head]
        for label, child in sorted(self.node_ann.items(), key=lambda kv: repr(kv[0])):
            lines.append(f"{pad}  @node {label!r}:")
            lines.append(child.describe(indent + 2))
        for i, child in sorted(self.edge_ann.items()):
            lines.append(f"{pad}  @edge {self.edge_endpoints(i)}:")
            lines.append(child.describe(indent + 2))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Block({self.kind}, nodes={self.nodes}, boundary={self.boundary}, "
            f"children={len(self.children())})"
        )
