"""Decomposition trees: blocks, contraction, enumeration, planning."""

from .blocks import CYCLE, LEAF, SINGLETON, Block
from .contraction import (
    CandidateBlock,
    ContractionState,
    contract,
    find_candidate_blocks,
)
from .enumeration import count_plans, enumerate_plans
from .planner import choose_plan, heuristic_plan, rank_plans
from .tree import DecompositionError, Plan, build_decomposition, default_chooser
from .validate import PlanValidationError, validate_plan

__all__ = [
    "Block",
    "CYCLE",
    "LEAF",
    "SINGLETON",
    "CandidateBlock",
    "ContractionState",
    "contract",
    "find_candidate_blocks",
    "Plan",
    "build_decomposition",
    "default_chooser",
    "DecompositionError",
    "enumerate_plans",
    "count_plans",
    "choose_plan",
    "rank_plans",
    "heuristic_plan",
    "validate_plan",
    "PlanValidationError",
]
