"""Plan selection heuristic (paper Section 6) — the "planner" layer.

The paper: "the following factors, in the decreasing order of importance,
determine the execution time: (i) length of the longest cycle block;
(ii) number of boundary nodes; (iii) number of node/edge annotations.
[...] Enumerate all possible trees for the given query and pick the best
using the above factors for comparison."  All three are minimized, tie
broken deterministically by structural signature.
"""

from __future__ import annotations

from typing import List

from ..query.query import QueryGraph
from .enumeration import enumerate_plans
from .tree import Plan, build_decomposition

__all__ = ["choose_plan", "rank_plans", "heuristic_plan"]


def rank_plans(plans: List[Plan]) -> List[Plan]:
    """Plans sorted best-first by the Section 6 lexicographic key."""
    return sorted(plans, key=lambda p: (p.heuristic_key(), p.signature()))


def choose_plan(query: QueryGraph, limit: int = 20000) -> Plan:
    """The heuristic's pick: best plan over exhaustive enumeration."""
    plans = enumerate_plans(query, limit=limit)
    return rank_plans(plans)[0]


def heuristic_plan(query: QueryGraph, limit: int = 20000) -> Plan:
    """Alias used by the high-level API; falls back to the greedy chooser
    when enumeration would blow past ``limit`` (huge tree-like queries)."""
    try:
        return choose_plan(query, limit=limit)
    except RuntimeError:
        return build_decomposition(query)
