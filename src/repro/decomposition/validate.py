"""Structural validation of decomposition trees.

A :class:`~repro.decomposition.tree.Plan` produced by contraction must
satisfy the invariants Section 4 relies on; this validator re-derives them
from first principles so the enumeration and contraction code can be
checked independently (and fuzzed against random treewidth-2 queries):

1. **Coverage** — every query node appears in exactly one block's
   ``nodes``; every query edge is realised exactly once (as a cycle/leaf
   edge of some block that is *not* annotated by a child — annotated
   edges are contraction artefacts, not query edges).
2. **Boundary consistency** — a block's boundary nodes are exactly the
   nodes of its subquery with edges to the rest of the query.
3. **Block sanity** — cycles have ≥ 3 nodes and ≤ 2 boundary nodes; leaf
   edges have 2 nodes and 1 boundary node; the root has no boundary.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Tuple

from .blocks import CYCLE, LEAF, SINGLETON, Block
from .tree import Plan

__all__ = ["validate_plan", "PlanValidationError"]


class PlanValidationError(AssertionError):
    """A decomposition-tree invariant is violated."""


def _fail(msg: str) -> None:
    raise PlanValidationError(msg)


def _realised_edges(block: Block) -> List[Tuple[Hashable, Hashable]]:
    """Query edges this block realises directly (unannotated own edges)."""
    out = []
    if block.kind == CYCLE:
        for i in range(len(block.nodes)):
            if i not in block.edge_ann:
                out.append(block.edge_endpoints(i))
    elif block.kind == LEAF:
        if 0 not in block.edge_ann:
            out.append((block.nodes[0], block.nodes[1]))
    return out


def validate_plan(plan: Plan) -> None:
    """Raise :class:`PlanValidationError` on any broken invariant."""
    query = plan.query
    blocks = plan.blocks()

    # -- 3. per-block sanity -----------------------------------------
    for b in blocks:
        if b.kind == CYCLE:
            if len(b.nodes) < 3:
                _fail(f"cycle block with {len(b.nodes)} nodes")
            if len(b.boundary) > 2:
                _fail(f"cycle block with {len(b.boundary)} boundary nodes")
            if len(set(b.nodes)) != len(b.nodes):
                _fail("repeated node label on a cycle block")
        elif b.kind == LEAF:
            if len(b.nodes) != 2:
                _fail("leaf block must have exactly two nodes")
            if len(b.boundary) != 1:
                _fail("leaf block must have one boundary node")
            if b.boundary[0] != b.nodes[0]:
                _fail("leaf boundary must be the non-leaf endpoint")
        elif b.kind == SINGLETON:
            if b is not plan.root:
                _fail("singleton block below the root")
        else:
            _fail(f"unknown block kind {b.kind!r}")
        for lab in b.node_ann:
            if lab not in b.nodes:
                _fail(f"node annotation on foreign label {lab!r}")
        child_boundaries = set()
        for lab, child in b.node_ann.items():
            if tuple(child.boundary) != (lab,):
                _fail(
                    f"node-annotating child boundary {child.boundary!r} "
                    f"does not match node {lab!r}"
                )
        for i, child in b.edge_ann.items():
            endpoints = set(b.edge_endpoints(i))
            if set(child.boundary) != endpoints:
                _fail(
                    f"edge-annotating child boundary {child.boundary!r} "
                    f"does not match edge endpoints {endpoints!r}"
                )

    if plan.root.boundary:
        _fail("root block must have no boundary nodes")

    # -- 1. coverage ----------------------------------------------------
    # node coverage: blocks partition the query nodes, except that a
    # block's boundary nodes are shared with (owned by) its parent.
    seen_nodes: Set[Hashable] = set()
    for b in blocks:
        owned = set(b.nodes)
        for child in b.children():
            owned -= set(child.boundary) - set()  # boundary already counted below
        # count nodes owned by b = its nodes minus those shared upward
    # simpler equivalent check: union of all block nodes == query nodes,
    # and each non-boundary node appears in exactly one block.
    appearance: dict = {}
    for b in blocks:
        for nlab in b.nodes:
            appearance.setdefault(nlab, []).append(b)
    if set(appearance) != set(query.nodes()):
        _fail("block nodes do not cover the query nodes exactly")
    for nlab, owners in appearance.items():
        # a node may appear in several blocks only as a boundary chain
        non_boundary_owners = [b for b in owners if nlab not in b.boundary]
        if len(non_boundary_owners) > 1:
            _fail(f"query node {nlab!r} owned by multiple blocks")

    # edge coverage: each query edge realised exactly once
    realised: List[Tuple[Hashable, Hashable]] = []
    for b in blocks:
        realised.extend(_realised_edges(b))
    realised_sets = [frozenset(e) for e in realised]
    query_edges = [frozenset(e) for e in query.edges()]
    if sorted(map(sorted, (tuple(map(repr, e)) for e in realised_sets))) != sorted(
        map(sorted, (tuple(map(repr, e)) for e in query_edges))
    ):
        extra = set(realised_sets) - set(query_edges)
        missing = set(query_edges) - set(realised_sets)
        _fail(f"edge coverage broken: extra={extra!r} missing={missing!r}")
    if len(realised_sets) != len(set(realised_sets)):
        _fail("a query edge is realised twice")

    # -- 2. boundary consistency -----------------------------------------
    for b in blocks:
        if b.kind == SINGLETON:
            continue
        sub = b.subquery_nodes()
        outside = set(query.nodes()) - sub
        true_boundary = {
            v for v in sub if any(u in outside for u in query.adj[v])
        }
        declared = set(b.boundary)
        if not outside:
            # The block whose subquery is the whole query (it hangs off a
            # singleton root): its declared boundary is the residual node
            # of the contraction, which has no actual outside neighbours.
            if not declared <= set(b.nodes):
                _fail(f"root-covering block boundary {declared!r} not on the block")
            continue
        if true_boundary != declared:
            _fail(
                f"boundary mismatch on {b}: declared {declared!r}, "
                f"actual {true_boundary!r}"
            )
