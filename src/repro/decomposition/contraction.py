"""The contraction process that builds decomposition trees (Section 4.1).

A :class:`ContractionState` is the "transformed query" of Figure 2: the
current node/edge set of ``Q`` plus the block annotations produced by
earlier contractions.  :func:`find_candidate_blocks` lists every block
(leaf edge or contractible cycle) currently available, and
:func:`contract` applies the paper's Cases 1-3.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..query.query import QueryGraph
from .blocks import CYCLE, LEAF, Block

__all__ = [
    "ContractionState",
    "CandidateBlock",
    "find_candidate_blocks",
    "contract",
]

Node = Hashable
EdgeKey = FrozenSet


class ContractionState:
    """Mutable transformed query with annotations."""

    def __init__(self, query: QueryGraph) -> None:
        if not query.is_connected():
            raise ValueError("decomposition requires a connected query graph")
        self.adj: Dict[Node, Set[Node]] = {v: set(ns) for v, ns in query.adj.items()}
        self.node_ann: Dict[Node, Block] = {}
        self.edge_ann: Dict[EdgeKey, Block] = {}

    # ------------------------------------------------------------------
    def copy(self) -> "ContractionState":
        out = ContractionState.__new__(ContractionState)
        out.adj = {v: set(ns) for v, ns in self.adj.items()}
        out.node_ann = dict(self.node_ann)
        out.edge_ann = dict(self.edge_ann)
        return out

    def num_nodes(self) -> int:
        return len(self.adj)

    def nodes(self) -> List[Node]:
        return sorted(self.adj, key=repr)

    def degree(self, v: Node) -> int:
        return len(self.adj[v])

    def canonical_key(self) -> tuple:
        """Hashable snapshot (for memoised enumeration)."""
        edges = tuple(
            sorted(tuple(sorted((repr(a), repr(b)))) for a in self.adj for b in self.adj[a] if repr(a) < repr(b))
        )
        nann = tuple(sorted((repr(v), b.signature()) for v, b in self.node_ann.items()))
        eann = tuple(
            sorted((tuple(sorted(map(repr, k))), b.signature()) for k, b in self.edge_ann.items())
        )
        return (tuple(map(repr, self.nodes())), edges, nann, eann)


class CandidateBlock:
    """A block available for contraction, before annotations are absorbed."""

    __slots__ = ("kind", "nodes", "boundary")

    def __init__(self, kind: str, nodes: Tuple[Node, ...], boundary: Tuple[Node, ...]):
        self.kind = kind
        self.nodes = nodes
        self.boundary = boundary

    def key(self) -> tuple:
        """Canonical identity: kind + node set + boundary (cycles are
        rotation/reflection invariant; leaf edges are directional)."""
        if self.kind == CYCLE:
            return (CYCLE, frozenset(map(repr, self.nodes)), tuple(sorted(map(repr, self.boundary))))
        return (LEAF, tuple(map(repr, self.nodes)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CandidateBlock({self.kind}, {self.nodes}, boundary={self.boundary})"


# ----------------------------------------------------------------------
# block discovery
# ----------------------------------------------------------------------

def _enumerate_simple_cycles(state: ContractionState) -> List[Tuple[Node, ...]]:
    """All simple cycles of the current query, each reported once.

    Canonical form: the cycle starts at its smallest node (by repr) and the
    second node is smaller than the last, removing rotation/direction
    duplicates.  DFS is fine at query scale (≤ ~12 nodes).
    """
    nodes = state.nodes()
    order = {v: i for i, v in enumerate(nodes)}
    cycles: List[Tuple[Node, ...]] = []

    def dfs(start: Node, current: Node, path: List[Node], visited: Set[Node]) -> None:
        for nxt in sorted(state.adj[current], key=repr):
            if nxt == start and len(path) >= 3:
                # canonical direction: path[1] < path[-1]
                if order[path[1]] < order[path[-1]]:
                    cycles.append(tuple(path))
            elif nxt not in visited and order[nxt] > order[start]:
                visited.add(nxt)
                path.append(nxt)
                dfs(start, nxt, path, visited)
                path.pop()
                visited.remove(nxt)

    for start in nodes:
        dfs(start, start, [start], {start})
    return cycles


def _cycle_boundary(state: ContractionState, cycle: Tuple[Node, ...]) -> Optional[Tuple[Node, ...]]:
    """Boundary nodes of an *induced* cycle, or None if not contractible.

    Checks (a) inducedness — no chords among cycle nodes — and (b) at most
    two boundary nodes (nodes with neighbours outside the cycle).
    """
    cset = set(cycle)
    length = len(cycle)
    boundary: List[Node] = []
    for i, v in enumerate(cycle):
        inside = state.adj[v] & cset
        allowed = {cycle[(i - 1) % length], cycle[(i + 1) % length]}
        if inside != allowed:
            return None  # chord: not induced
        if state.adj[v] - cset:
            boundary.append(v)
            if len(boundary) > 2:
                return None
    return tuple(sorted(boundary, key=repr))


def find_candidate_blocks(state: ContractionState) -> List[CandidateBlock]:
    """All currently-contractible blocks (leaf edges + contractible cycles)."""
    out: List[CandidateBlock] = []
    if state.num_nodes() <= 1:
        return out
    for b in state.nodes():
        if state.degree(b) == 1:
            (a,) = tuple(state.adj[b])
            out.append(CandidateBlock(LEAF, (a, b), (a,)))
    for cycle in _enumerate_simple_cycles(state):
        boundary = _cycle_boundary(state, cycle)
        if boundary is not None:
            out.append(CandidateBlock(CYCLE, cycle, boundary))
    return out


# ----------------------------------------------------------------------
# contraction (Cases 1-3 of Section 4.1)
# ----------------------------------------------------------------------

def _absorb_annotations(state: ContractionState, cand: CandidateBlock) -> Block:
    """Build the Block, inheriting annotations from the state (and removing
    them from the state so no other block can become their parent)."""
    node_ann: Dict[Node, Block] = {}
    for v in cand.nodes:
        if v in state.node_ann:
            node_ann[v] = state.node_ann.pop(v)
    edge_ann: Dict[int, Block] = {}
    if cand.kind == CYCLE:
        length = len(cand.nodes)
        for i in range(length):
            key = frozenset((cand.nodes[i], cand.nodes[(i + 1) % length]))
            if key in state.edge_ann:
                edge_ann[i] = state.edge_ann.pop(key)
    else:
        key = frozenset(cand.nodes)
        if key in state.edge_ann:
            edge_ann[0] = state.edge_ann.pop(key)
    return Block(cand.kind, cand.nodes, cand.boundary, node_ann, edge_ann)


def contract(state: ContractionState, cand: CandidateBlock) -> Block:
    """Apply the contraction of ``cand`` to ``state`` in place.

    Returns the new :class:`Block` (already annotated onto the state per
    Cases 1-3).  After the call the state holds the transformed query.
    """
    block = _absorb_annotations(state, cand)
    cset = set(cand.nodes)
    if cand.kind == LEAF:
        a, b = cand.nodes
        # Case 3: remove b and the edge; annotate a with the block.
        state.adj[a].discard(b)
        del state.adj[b]
        state.node_ann[a] = block
        return block

    boundary = cand.boundary
    if len(boundary) == 2:
        # Case 2: remove the cycle except the boundary nodes; add an
        # annotated edge between them.  Inducedness guarantees the edge is
        # not already present outside the cycle.
        a, b = boundary
        for v in cand.nodes:
            if v in (a, b):
                continue
            for u in state.adj[v]:
                if u in state.adj:
                    state.adj[u].discard(v)
            del state.adj[v]
        state.adj[a].discard(b)
        state.adj[b].discard(a)
        assert b not in state.adj[a], "chorded cycle slipped through contractibility"
        state.adj[a].add(b)
        state.adj[b].add(a)
        state.edge_ann[frozenset((a, b))] = block
        return block

    if len(boundary) == 1:
        # Case 1: remove the cycle except the boundary node; annotate it.
        (a,) = boundary
        for v in cand.nodes:
            if v == a:
                continue
            for u in state.adj[v]:
                if u in state.adj:
                    state.adj[u].discard(v)
            del state.adj[v]
        # cycle edges incident to `a` vanish with their other endpoints
        state.adj[a] -= cset
        state.node_ann[a] = block
        return block

    # Zero boundary nodes: the cycle is the entire remaining query (the
    # query is connected), so contraction empties Q — this block is a root.
    assert cset == set(state.adj), "0-boundary cycle must cover the whole query"
    state.adj.clear()
    return block
