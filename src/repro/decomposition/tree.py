"""Decomposition-tree construction (paper Section 4.1, Figure 2/3).

:func:`build_decomposition` iterates the contraction process until the
query is exhausted, delegating the choice among available blocks to a
pluggable *chooser* (the planner supplies the Section 6 heuristic; the
enumerator branches over all choices).  The result is a :class:`Plan`
holding the root block.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..query.query import QueryGraph
from ..query.treewidth import is_treewidth_at_most_2
from .blocks import CYCLE, SINGLETON, Block
from .contraction import CandidateBlock, ContractionState, contract, find_candidate_blocks

__all__ = ["Plan", "build_decomposition", "default_chooser", "DecompositionError"]

Chooser = Callable[[ContractionState, Sequence[CandidateBlock]], CandidateBlock]


class DecompositionError(ValueError):
    """Raised when no block exists — query not treewidth ≤ 2 (Lemma 4.1)."""


class Plan:
    """A complete decomposition tree for a query."""

    def __init__(self, query: QueryGraph, root: Block) -> None:
        self.query = query
        self.root = root

    def with_query(self, query: QueryGraph) -> "Plan":
        """This plan re-rooted on ``query`` (same structure, e.g. new labels).

        Plans are purely topological, but the solvers read vertex-label
        masks off ``plan.query`` — so a plan built for an unlabeled query
        must be re-rooted before solving its labeled twin.  The new query
        must have exactly the original's nodes and edges.
        """
        if set(query.nodes()) != set(self.query.nodes()) or set(
            map(frozenset, query.edges())
        ) != set(map(frozenset, self.query.edges())):
            raise ValueError("plan was built for a structurally different query")
        return Plan(query, self.root)

    # ------------------------------------------------------------------
    def blocks(self) -> List[Block]:
        """All blocks, bottom-up (children before parents)."""
        ordered: List[Block] = []

        def visit(b: Block) -> None:
            for child in b.children():
                visit(child)
            ordered.append(b)

        visit(self.root)
        return ordered

    def cycle_blocks(self) -> List[Block]:
        return [b for b in self.blocks() if b.kind == CYCLE]

    def longest_cycle(self) -> int:
        cycles = self.cycle_blocks()
        return max((b.length for b in cycles), default=0)

    def total_boundary_nodes(self) -> int:
        return sum(len(b.boundary) for b in self.blocks())

    def total_annotations(self) -> int:
        return sum(len(b.node_ann) + len(b.edge_ann) for b in self.blocks())

    def cycle_annotations(self) -> int:
        """Annotations attached to cycle blocks specifically.

        These are the expensive ones: a cycle block's annotations are
        joined inside every path sweep (and, for DB, once per choice of
        the highest node), whereas a leaf block's annotations are folded
        in a single linear pass.
        """
        return sum(len(b.node_ann) + len(b.edge_ann) for b in self.cycle_blocks())

    def heuristic_key(self) -> tuple:
        """Section 6 ranking key, all components minimized.

        The paper's factors in decreasing order of importance: (i) length
        of the longest cycle block; (ii) number of boundary nodes;
        (iii) number of node/edge annotations.  We interpret (iii) as the
        annotations *the cycle procedures must join* and rank it above the
        raw boundary count: plan measurements (see
        ``benchmarks/bench_fig14_heuristic.py``) show cycle-block
        annotations dominate cost — plans that contract cycles before
        their nodes accumulate annotations are consistently fastest —
        while totals over leaf chains are noise.
        """
        return (
            self.longest_cycle(),
            self.cycle_annotations(),
            self.total_boundary_nodes(),
            self.total_annotations(),
        )

    def signature(self) -> tuple:
        return self.root.signature()

    def describe(self) -> str:
        return self.root.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Plan(query={self.query.name or '?'}, blocks={len(self.blocks())}, "
            f"longest_cycle={self.longest_cycle()})"
        )


def default_chooser(
    state: ContractionState, candidates: Sequence[CandidateBlock]
) -> CandidateBlock:
    """Deterministic greedy choice: shortest cycles first, then leaf edges.

    Contracting short cycles early tends to shorten the cycles seen later
    (they become annotated edges); purely a sane default — the planner's
    exhaustive heuristic supersedes this for benchmarks.
    """

    def key(c: CandidateBlock) -> tuple:
        if c.kind == CYCLE:
            return (0, len(c.nodes), len(c.boundary), tuple(map(repr, c.nodes)))
        return (1, 0, 0, tuple(map(repr, c.nodes)))

    return min(candidates, key=key)


def build_decomposition(
    query: QueryGraph, chooser: Optional[Chooser] = None
) -> Plan:
    """Run the contraction process to completion and return the plan.

    Raises :class:`DecompositionError` if the query has treewidth > 2 (the
    process gets stuck, per Lemma 4.1 this happens iff tw > 2) or is
    disconnected.
    """
    if query.k == 0:
        raise DecompositionError("empty query")
    if not query.is_connected():
        raise DecompositionError("query must be connected")
    if not is_treewidth_at_most_2(query):
        raise DecompositionError(
            f"query {query.name or '?'} has treewidth > 2; the color-coding "
            "decomposition of this paper only covers treewidth-2 queries"
        )
    chooser = chooser or default_chooser
    state = ContractionState(query)
    last_block: Optional[Block] = None
    while state.num_nodes() > 1:
        candidates = find_candidate_blocks(state)
        if not candidates:
            raise DecompositionError(
                "contraction stuck — no leaf edge or contractible cycle "
                "(query treewidth exceeds 2?)"
            )
        cand = chooser(state, candidates)
        last_block = contract(state, cand)
        if state.num_nodes() == 0:
            # last contraction was a 0-boundary cycle: it is the root
            return Plan(query, last_block)
    # Q is a single node; wrap in a singleton root (absorbing its annotation).
    (node,) = state.nodes()
    ann = {node: state.node_ann[node]} if node in state.node_ann else {}
    root = Block(SINGLETON, (node,), (), ann, {})
    return Plan(query, root)
