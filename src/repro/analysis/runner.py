"""Run every rule over a file set, apply suppressions, enforce budget.

The flow: collect ``*.py`` files under the given paths, parse each once,
run the per-file AST rules and the layering contract, then the
cross-file wire-format contracts — and finally fold in the inline
``# repro: allow[<RULE>]`` suppressions.  A suppressed finding is moved
to the report's ``suppressed`` list (still visible, never fatal); the
total number of suppression comments in the tree is capped by the
committed budget so the allowlist cannot silently grow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .core import (
    AnalysisConfig,
    DEFAULT_CONFIG,
    FileContext,
    Finding,
    parse_suppressions,
)
from .layering import LayeringRule
from .rules import AST_RULES, Rule
from .wire import WireFormatRule

__all__ = ["AnalysisReport", "run_analysis", "collect_files", "all_rules"]

#: directories never scanned
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}


def all_rules() -> List[Rule]:
    """Every shipped rule, in id order."""
    rules: List[Rule] = list(AST_RULES) + [LayeringRule(), WireFormatRule()]
    return sorted(rules, key=lambda r: r.id)


@dataclass
class AnalysisReport:
    """Outcome of one analysis run (text and JSON renderings)."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppression_comments: int = 0
    max_suppressions: int = DEFAULT_CONFIG.max_suppressions

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        """The ``--format json`` document (stable keys, JSON-safe)."""
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {
            "version": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "counts_by_rule": counts,
            "suppressions": {
                "comments": self.suppression_comments,
                "budget": self.max_suppressions,
            },
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        if self.suppressed:
            lines.append(
                f"-- {len(self.suppressed)} finding(s) suppressed inline "
                f"({self.suppression_comments}/{self.max_suppressions} "
                "budgeted comments)"
            )
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(f"repro.analysis: {self.files_scanned} files, {status}")
        return "\n".join(lines)


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``*.py`` under ``paths`` (files pass through), sorted."""
    out: List[Path] = []
    for path in paths:
        if path.is_file():
            out.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                out.append(candidate)
    return out


def run_analysis(
    paths: Sequence[Path],
    config: Optional[AnalysisConfig] = None,
    rules: Optional[Sequence[str]] = None,
    max_suppressions: Optional[int] = None,
) -> AnalysisReport:
    """Analyse ``paths`` and return the full report.

    ``rules`` filters by rule id (``["RP001", "RP004"]``); the
    suppression budget only applies when the run includes every rule
    (a filtered run is a developer loop, not the committed gate).
    """
    cfg = config if config is not None else DEFAULT_CONFIG
    budget = max_suppressions if max_suppressions is not None else cfg.max_suppressions
    selected = all_rules()
    if rules is not None:
        wanted = set(rules)
        selected = [r for r in selected if r.id in wanted]

    report = AnalysisReport(max_suppressions=budget)
    contexts: List[FileContext] = []
    suppressions: Dict[str, Dict[int, set]] = {}
    for path in collect_files(paths):
        try:
            ctx = FileContext.parse(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.findings.append(Finding(
                rule="RP000", path=path.as_posix(),
                line=getattr(exc, "lineno", 1) or 1, col=0,
                message=f"file does not parse: {exc.msg if hasattr(exc, 'msg') else exc}",
            ))
            continue
        contexts.append(ctx)
        file_suppressions = parse_suppressions(ctx.source)
        if file_suppressions:
            suppressions[ctx.path] = file_suppressions
            report.suppression_comments += len(file_suppressions)
    report.files_scanned = len(contexts)

    raw: List[Finding] = []
    wire_rules: List[WireFormatRule] = []
    for rule in selected:
        if isinstance(rule, WireFormatRule):
            wire_rules.append(rule)  # cross-file: run once, after the loop
            continue
        for ctx in contexts:
            if rule.applies(ctx.path, cfg):
                raw.extend(rule.check(ctx, cfg))
    for rule in wire_rules:
        raw.extend(rule.check_files(contexts, cfg))

    for finding in sorted(raw, key=lambda f: f.sort_key):
        allowed = suppressions.get(finding.path, {}).get(finding.line, set())
        if finding.rule in allowed:
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    if rules is None and report.suppression_comments > budget:
        report.findings.append(Finding(
            rule="RP000", path=".", line=1, col=0,
            message=(
                f"suppression budget exceeded: {report.suppression_comments} "
                f"inline allow comments, budget {budget}; remove one or "
                "raise --max-suppressions deliberately"
            ),
        ))
    return report
