"""Shared plumbing for the repro static-analysis suite.

The suite enforces *project* invariants — seeded RNG flow, int64 dtype
discipline in the DP kernels, lock-protected shared state, the package
layering contract, wire-format round-trip completeness — that generic
linters cannot express.  Everything here is plain :mod:`ast` work: no
third-party dependencies, so the checkers run anywhere the repo does.

Key objects:

* :class:`Finding` — one rule violation at a file/line;
* :class:`FileContext` — a parsed source file handed to every rule;
* :class:`AnalysisConfig` — the per-rule scope/contract tables.  Rules
  read *all* project knowledge from the config, so tests can point the
  same rule implementations at scratch trees;
* :func:`parse_suppressions` — inline ``# repro: allow[<RULE>]``
  comments.  Suppressions are budgeted: the CLI fails when the scanned
  tree carries more than ``max_suppressions`` of them, keeping the
  allowlist deliberate and reviewable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "FileContext",
    "WireContract",
    "AnalysisConfig",
    "DEFAULT_CONFIG",
    "parse_suppressions",
    "dotted_name",
    "posix_path",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (the ``--format json`` row shape)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line text rendering: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class FileContext:
    """A parsed source file: what every rule receives."""

    path: str  # posix-normalized, as given on the command line
    source: str
    tree: ast.Module

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "FileContext":
        source = path.read_text(encoding="utf-8")
        rel = path.relative_to(root) if root is not None else path
        return cls(path=posix_path(rel), source=source, tree=ast.parse(source))


@dataclass(frozen=True)
class WireContract:
    """One serialization round-trip contract for RP005.

    Every public field of ``cls`` (declared via dataclass annotations or
    ``self.X = ...`` in ``__init__``) must appear — after ``renames`` and
    minus ``non_wire`` — as a string constant in each listed serializer,
    deserializer, and external contract function.  Extra keys in the
    serializers (derived values for JSON consumers) are always allowed;
    the contract is about fields silently *missing* from the wire.
    """

    cls: str
    path_suffix: str
    serializers: Tuple[str, ...] = ("to_dict",)
    deserializers: Tuple[str, ...] = ("from_dict",)
    #: (file path suffix, function name) pairs checked in other modules
    extra_functions: Tuple[Tuple[str, str], ...] = ()
    #: field name -> wire key (e.g. ``plan_digest`` rides the ``plan`` key)
    renames: Mapping[str, str] = field(default_factory=dict)
    #: fields that never cross the wire (live objects, caches)
    non_wire: Tuple[str, ...] = ()
    #: inherited fields the class body does not declare itself
    extra_fields: Tuple[str, ...] = ()


@dataclass
class AnalysisConfig:
    """Scope fragments and contract tables for every rule.

    Paths are matched as posix substrings (``"counting/"`` matches any
    file under a ``counting`` directory), so the same config drives both
    the real tree and the scratch trees the test fixtures build.
    """

    # -- RP001: determinism ------------------------------------------------
    rp001_scopes: Tuple[str, ...] = (
        "counting/", "distributed/", "benchmarks/",
        "graph/", "query/", "theory/", "motifs/", "bench/", "obs/",
    )
    #: np.random attributes that are part of the *seeded* API
    rp001_np_random_allowed: Tuple[str, ...] = (
        "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    )
    #: stdlib ``random`` attributes that are seedable class constructors
    rp001_random_allowed: Tuple[str, ...] = ("Random", "SystemRandom")
    rp001_banned_time: Tuple[str, ...] = ("time.time", "time.time_ns")
    rp001_banned_datetime: Tuple[str, ...] = (
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "date.today", "datetime.date.today",
    )

    # -- RP002: dtype discipline -------------------------------------------
    rp002_scopes: Tuple[str, ...] = (
        "counting/vectorized.py", "counting/xp.py", "counting/colorings.py",
        "counting/labels.py", "counting/treelet.py",
        "distributed/executor.py", "distributed/runtime.py",
        "distributed/partition.py", "graph/graph.py",
    )
    #: constructor -> positional index of ``dtype`` (None: keyword only)
    rp002_constructors: Mapping[str, Optional[int]] = field(
        default_factory=lambda: {
            "zeros": 1, "ones": 1, "empty": 1, "full": 2,
            "arange": 3, "array": 1, "asarray": 1, "fromiter": 1,
        }
    )

    # -- RP003: lock discipline --------------------------------------------
    #: class name -> lock attribute -> attributes it guards
    rp003_lock_maps: Mapping[str, Mapping[str, Tuple[str, ...]]] = field(
        default_factory=lambda: {
            "CountingEngine": {
                "_cache_lock": (
                    "_plan_cache", "_partition_cache", "_reroot_cache", "stats",
                ),
                "_executor_lock": ("_executor_cache",),
            },
            "ShardedExecutor": {
                "_run_lock": ("_plan_keys", "_plans", "_runs"),
            },
            "JobQueue": {
                "_lock": (
                    "_jobs", "_finished", "_submitted", "_rejected",
                    "_completed", "_failed", "_cancelled", "_running", "_closed",
                ),
            },
            "ResultCache": {
                "_lock": ("_entries", "_hits", "_misses", "_evictions"),
            },
            "CountingService": {
                "_lock": (
                    "_inflight", "_closed", "_count_requests",
                    "_job_requests", "_computed", "_inflight_joins",
                ),
            },
            "DatasetRegistry": {
                "_lock": ("_entries",),
            },
            "Counter": {
                "_lock": ("_values",),
            },
            "Gauge": {
                "_lock": ("_values",),
            },
            "Histogram": {
                "_lock": ("_counts", "_sums"),
            },
            "MetricsRegistry": {
                "_lock": ("_metrics",),
            },
            "Trace": {
                "_lock": ("_events",),
            },
        }
    )
    #: methods allowed to touch guarded state without the lock
    rp003_exempt_methods: Tuple[str, ...] = ("__init__",)
    rp003_exempt_suffixes: Tuple[str, ...] = ("_locked",)

    # -- RP004: layering contract ------------------------------------------
    #: package (or ``pkg.module`` carve-out) -> layer; imports may only
    #: point at equal or lower layers.  ``distributed.partition`` and
    #: ``distributed.runtime`` are substrate (the counting kernels thread
    #: ExecutionContext everywhere); the rest of ``distributed`` sits
    #: above ``counting`` because the executor drives the vectorized DP.
    rp004_layers: Mapping[str, int] = field(
        default_factory=lambda: {
            "graph": 0, "query": 0, "tables": 0, "obs": 0,
            "decomposition": 1, "theory": 1,
            "distributed.partition": 1, "distributed.runtime": 1,
            "counting": 2,
            "distributed": 3,
            "engine": 4,
            "motifs": 5, "bench": 5,
            "service": 6,
            "cli": 7, "analysis": 7,
        }
    )
    #: the root package whose internal imports the contract governs
    rp004_package: str = "repro"

    # -- RP005: wire-format drift -------------------------------------------
    rp005_contracts: Tuple[WireContract, ...] = field(
        default_factory=lambda: (
            WireContract(
                cls="CountRequest",
                path_suffix="engine/config.py",
                serializers=(),
                deserializers=(),
                extra_functions=(("engine/fingerprint.py", "canonical_request"),),
                renames={"labels": "query"},
                non_wire=("plan", "ctx"),
            ),
            WireContract(
                cls="PrecisionSpec",
                path_suffix="engine/config.py",
                serializers=("to_dict",),
                deserializers=("coerce",),
            ),
            WireContract(
                cls="RunResult",
                path_suffix="engine/result.py",
                renames={"plan_digest": "plan"},
                extra_fields=(
                    "query_name", "graph_name", "trials",
                    "colorful_counts", "scale",
                ),
            ),
            WireContract(cls="LoadStats", path_suffix="distributed/runtime.py"),
            WireContract(cls="WallStats", path_suffix="distributed/runtime.py"),
        )
    )

    # -- RP006: typed public seams ------------------------------------------
    rp006_scopes: Tuple[str, ...] = (
        "repro/engine/", "repro/service/", "repro/analysis/", "repro/obs/",
        "graph/graph.py", "counting/vectorized.py", "counting/xp.py",
        "distributed/executor.py",
    )

    #: committed allowlist budget for inline suppressions
    max_suppressions: int = 5

    def in_scope(self, path: str, scopes: Sequence[str]) -> bool:
        """Whether ``path`` (posix) matches any scope fragment."""
        return any(fragment in path for fragment in scopes)


DEFAULT_CONFIG = AnalysisConfig()

#: matches ``repro: allow`` comments naming one rule or a comma list
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number (1-based) -> rule ids suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            if rules:
                out[lineno] = rules
    return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything richer."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def posix_path(path: Path) -> str:
    return path.as_posix()
