"""Project-invariant static analysis for the repro stack.

AST-level rules that encode the invariants the repo's correctness
rests on — invariants a generic linter cannot express:

=======  =========================================================
RP001    seeded-RNG / wall-clock determinism in counting paths
RP002    explicit dtype in kernel array constructors
RP003    lock-guarded attribute discipline (per-class lock maps)
RP004    package layering contract (module-level import DAG)
RP005    wire-format round-trip completeness
RP006    fully annotated public seams (the mypy gate's local half)
=======  =========================================================

Run ``python -m repro.analysis src benchmarks``; see
``docs/ANALYSIS.md`` for each rule's rationale and the suppression
policy.
"""

from .core import AnalysisConfig, DEFAULT_CONFIG, Finding, WireContract
from .runner import AnalysisReport, all_rules, collect_files, run_analysis
from .cli import main

__all__ = [
    "AnalysisConfig",
    "AnalysisReport",
    "DEFAULT_CONFIG",
    "Finding",
    "WireContract",
    "all_rules",
    "collect_files",
    "main",
    "run_analysis",
]
