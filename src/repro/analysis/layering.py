"""RP004 — the package layering contract, checked from real imports.

The repo's import DAG (low to high)::

    graph / query / tables / obs                L0  primitives
    decomposition / theory /
      distributed.partition / .runtime          L1  substrate
    counting                                    L2  kernels
    distributed (executor, engine, ...)         L3  process sharding
    engine                                      L4  facade
    motifs / bench                              L5  applications
    service                                     L6  long-lived server
    cli / analysis                              L7  entry points

A module may only import from its own package or an equal-or-lower
layer.  ``distributed.partition``/``distributed.runtime`` are carved
into the substrate layer because every counting kernel threads an
:class:`ExecutionContext` — while the rest of ``distributed`` drives
the counting kernels and sits above them.

Only **module-level** imports bind layers: a function-body import is
the sanctioned lazy escape hatch (``bench.serve`` uses it
deliberately), and imports under ``if TYPE_CHECKING:`` never execute
at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from .core import AnalysisConfig, FileContext, Finding
from .rules import Rule

__all__ = ["LayeringRule", "module_parts"]


def module_parts(path: str, package: str) -> Optional[List[str]]:
    """Module path inside ``package`` for a source file, else None.

    ``src/repro/counting/verify.py`` -> ``["counting", "verify"]``;
    package ``__init__.py`` files map to the package itself.  The last
    ``/<package>/`` component wins, so scratch trees in tests resolve
    the same way the real tree does.
    """
    parts = path.split("/")
    if parts and parts[-1].endswith(".py"):
        parts = parts[:-1] + [parts[-1][: -len(".py")]]
    try:
        anchor = len(parts) - 2 - parts[:-1][::-1].index(package)
    except ValueError:
        return None
    mod = parts[anchor + 1:]
    if mod and mod[-1] == "__init__":
        mod = mod[:-1]
    return mod


def _is_type_checking_if(node: ast.stmt) -> bool:
    if not isinstance(node, ast.If):
        return False
    test = node.test
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"


def _module_level_imports(
    body: Sequence[ast.stmt],
) -> Iterator["ast.Import | ast.ImportFrom"]:
    """Imports that execute at module import time (recursing through
    try/if/with, skipping function bodies and TYPE_CHECKING blocks)."""
    for stmt in body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif _is_type_checking_if(stmt):
            yield from _module_level_imports(stmt.orelse)
        elif isinstance(stmt, ast.If):
            yield from _module_level_imports(stmt.body)
            yield from _module_level_imports(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _module_level_imports(stmt.body)
            for handler in stmt.handlers:
                yield from _module_level_imports(handler.body)
            yield from _module_level_imports(stmt.orelse)
            yield from _module_level_imports(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            yield from _module_level_imports(stmt.body)


class LayeringRule(Rule):
    """No module-level import may point at a higher layer."""

    id = "RP004"
    title = "package layering contract"

    def applies(self, path: str, config: AnalysisConfig) -> bool:
        return module_parts(path, config.rp004_package) is not None

    def layer(self, parts: Sequence[str], config: AnalysisConfig) -> Optional[int]:
        if not parts:
            return None
        if len(parts) >= 2:
            key = parts[0] + "." + parts[1]
            if key in config.rp004_layers:
                return config.rp004_layers[key]
        return config.rp004_layers.get(parts[0])

    def check(self, ctx: FileContext, config: AnalysisConfig) -> List[Finding]:
        package = config.rp004_package
        mod = module_parts(ctx.path, package)
        if not mod:  # the package root __init__ sits above everything
            return []
        src_layer = self.layer(mod, config)
        if src_layer is None:
            return []
        findings: List[Finding] = []
        for node, target in self._import_targets(ctx, mod, package):
            if not target or target[0] == mod[0]:
                continue  # foreign package or intra-package import
            tgt_layer = self.layer(target, config)
            if tgt_layer is not None and tgt_layer > src_layer:
                findings.append(self.finding(
                    ctx, node,
                    f"{'.'.join(mod)} (layer {src_layer}) imports "
                    f"{package}.{'.'.join(target)} (layer {tgt_layer}); "
                    "higher layers must not be imported at module level",
                ))
        return findings

    def _import_targets(
        self, ctx: FileContext, mod: List[str], package: str
    ) -> Iterator[Tuple[ast.stmt, List[str]]]:
        """(import node, target module parts inside the package) pairs."""
        # the module's own package: __init__ files already had their
        # trailing component stripped, plain modules drop the file name
        is_init = ctx.path.endswith("__init__.py")
        pkg = mod if is_init else mod[:-1]
        for node in _module_level_imports(ctx.tree.body):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    if parts[0] == package:
                        yield node, parts[1:]
                continue
            assert isinstance(node, ast.ImportFrom)
            if node.level:
                up = node.level - 1
                if up > len(pkg):
                    continue  # beyond the scanned root; cannot resolve
                base = pkg[: len(pkg) - up] if up else list(pkg)
                if node.module:
                    base = base + node.module.split(".")
                for alias in node.names:
                    yield node, base + [alias.name]
            else:
                if not node.module:
                    continue
                parts = node.module.split(".")
                if parts[0] != package:
                    continue
                for alias in node.names:
                    yield node, parts[1:] + [alias.name]
