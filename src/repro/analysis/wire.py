"""RP005 — wire-format drift between fields and their (de)serializers.

The service's cache keys, HTTP payloads and replay logs all assume the
round trip ``obj -> to_dict -> from_dict -> obj`` is *complete*: every
stored field crosses the wire (possibly renamed — ``RunResult.plan``
flattens onto the ``"plan"`` digest key), and the request fingerprint
covers every field that shapes the result.  Adding a field to
:class:`CountRequest` without extending ``canonical_request`` would
silently serve wrong cache hits; adding one to :class:`RunResult`
without touching ``from_dict`` would silently drop it on replay.

The check is declarative (:class:`~repro.analysis.core.WireContract`):
collect the class's public fields (dataclass annotations and
``self.X = ...`` in ``__init__``), then require each — after renames,
minus declared non-wire fields — to appear as a string constant in
every contract function.  Constants referenced through module-level
tuples (``_FINGERPRINT_FIELDS``) are followed, so the loop-over-fields
serializer style counts.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .core import AnalysisConfig, FileContext, Finding, WireContract
from .rules import Rule

__all__ = ["WireFormatRule"]


def _class_fields(cls: ast.ClassDef) -> Set[str]:
    """Public field names: dataclass annotations + __init__ assignments."""
    fields: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if not stmt.target.id.startswith("_"):
                fields.add(stmt.target.id)
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("_")
                    ):
                        fields.add(target.attr)
    return fields


def _module_constants(tree: ast.Module) -> Dict[str, Set[str]]:
    """Module-level name -> string constants in its assigned value."""
    out: Dict[str, Set[str]] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                out[target.id] = _string_constants(stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                out[stmt.target.id] = _string_constants(stmt.value)
    return out


def _string_constants(node: ast.AST) -> Set[str]:
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _function_keys(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    module_constants: Dict[str, Set[str]],
) -> Set[str]:
    """String constants a function can touch, following module constants."""
    keys = _string_constants(fn)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in module_constants:
            keys |= module_constants[node.id]
    return keys


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _find_function(
    tree: ast.Module, name: str
) -> Optional["ast.FunctionDef | ast.AsyncFunctionDef"]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return node
    return None


class WireFormatRule(Rule):
    """Every stored field must survive the declared wire round trip.

    Cross-file: the rule runs once over the whole scanned file set (the
    runner invokes :meth:`check_files`), locating each contract's class
    and external contract functions by path suffix.  A contract whose
    file is not part of the scan is skipped, so partial-tree runs and
    test fixtures stay meaningful.
    """

    id = "RP005"
    title = "wire-format round-trip completeness"

    def applies(self, path: str, config: AnalysisConfig) -> bool:
        suffixes = [c.path_suffix for c in config.rp005_contracts]
        suffixes += [fs for c in config.rp005_contracts for fs, _ in c.extra_functions]
        return any(path.endswith(suffix) for suffix in suffixes)

    def check(self, ctx: FileContext, config: AnalysisConfig) -> List[Finding]:
        # single-file entry point kept for uniformity; contracts whose
        # class lives in this file are checked against this file only
        return self.check_files([ctx], config)

    def check_files(
        self, contexts: Sequence[FileContext], config: AnalysisConfig
    ) -> List[Finding]:
        findings: List[Finding] = []
        by_suffix = list(contexts)

        def locate(suffix: str) -> Optional[FileContext]:
            for candidate in by_suffix:
                if candidate.path.endswith(suffix):
                    return candidate
            return None

        for contract in config.rp005_contracts:
            ctx = locate(contract.path_suffix)
            if ctx is None:
                continue
            cls = _find_class(ctx.tree, contract.cls)
            if cls is None:
                findings.append(Finding(
                    rule=self.id, path=ctx.path, line=1, col=0,
                    message=f"contract class {contract.cls} not found",
                ))
                continue
            fields = _class_fields(cls) | set(contract.extra_fields)
            fields -= set(contract.non_wire)
            required = {
                field: contract.renames.get(field, field) for field in sorted(fields)
            }
            constants = _module_constants(ctx.tree)
            checked: List[Tuple[FileContext, ast.AST, str, Set[str]]] = []
            for method_name in (*contract.serializers, *contract.deserializers):
                fn = next(
                    (
                        stmt for stmt in cls.body
                        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == method_name
                    ),
                    None,
                )
                if fn is None:
                    findings.append(self.finding(
                        ctx, cls,
                        f"{contract.cls} is missing contract method "
                        f"{method_name}()",
                    ))
                    continue
                checked.append(
                    (ctx, fn, f"{contract.cls}.{method_name}",
                     _function_keys(fn, constants))
                )
            for suffix, fn_name in contract.extra_functions:
                fn_ctx = locate(suffix)
                if fn_ctx is None:
                    continue
                fn = _find_function(fn_ctx.tree, fn_name)
                if fn is None:
                    findings.append(Finding(
                        rule=self.id, path=fn_ctx.path, line=1, col=0,
                        message=f"contract function {fn_name}() not found",
                    ))
                    continue
                checked.append(
                    (fn_ctx, fn, fn_name,
                     _function_keys(fn, _module_constants(fn_ctx.tree)))
                )
            for fn_ctx, fn, label, keys in checked:
                for field, wire_key in required.items():
                    if wire_key not in keys:
                        findings.append(Finding(
                            rule=self.id,
                            path=fn_ctx.path,
                            line=getattr(fn, "lineno", 1),
                            col=getattr(fn, "col_offset", 0),
                            message=(
                                f"{label} drops {contract.cls}.{field} "
                                f"(expected wire key {wire_key!r})"
                            ),
                        ))
        return findings
