"""AST lint rules: determinism, dtype, lock, and annotation discipline.

Each rule is a :class:`Rule` subclass with a stable id (``RP001``...),
scoped by path fragments from :class:`~repro.analysis.core.AnalysisConfig`
so the same implementations check the real tree and the test fixtures'
scratch trees alike.  The layering (RP004) and wire-format (RP005) rules
live in their own modules — they reason across files, not within one.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .core import AnalysisConfig, FileContext, Finding, dotted_name

__all__ = [
    "Rule",
    "DeterminismRule",
    "DtypeRule",
    "LockDisciplineRule",
    "TypedSeamRule",
    "AST_RULES",
]


class Rule:
    """One project-invariant checker over a single parsed file."""

    id: str = ""
    title: str = ""

    def applies(self, path: str, config: AnalysisConfig) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext, config: AnalysisConfig) -> List[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ----------------------------------------------------------------------
# RP001 — determinism
# ----------------------------------------------------------------------

class DeterminismRule(Rule):
    """No ambient randomness or wall-clock reads in reproducible paths.

    Every estimate in the repo must be a pure function of its seed: the
    engine draws colorings from ``np.random.default_rng(seed)`` batches,
    and the benchmarks publish numbers keyed by seed.  A single bare
    ``np.random.shuffle`` (process-global state) or ``time.time()``
    feeding a computation silently breaks run-to-run reproducibility —
    exactly the class of bug a differential test cannot localise.
    Timing *measurement* stays legal: ``perf_counter``/``process_time``
    never feed back into counted values.
    """

    id = "RP001"
    title = "seeded-RNG / clock determinism"

    def applies(self, path: str, config: AnalysisConfig) -> bool:
        return config.in_scope(path, config.rp001_scopes)

    def check(self, ctx: FileContext, config: AnalysisConfig) -> List[Finding]:
        findings: List[Finding] = []
        np_allowed = set(config.rp001_np_random_allowed)
        random_allowed = set(config.rp001_random_allowed)
        banned_clocks = set(config.rp001_banned_time) | set(
            config.rp001_banned_datetime
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
                if parts[2] not in np_allowed:
                    findings.append(self.finding(
                        ctx, node,
                        f"process-global RNG call {name}(); draw from a "
                        "seeded np.random.default_rng(...) instead",
                    ))
            elif len(parts) == 2 and parts[0] == "random":
                if parts[1] not in random_allowed:
                    findings.append(self.finding(
                        ctx, node,
                        f"unseeded stdlib RNG call {name}(); use a seeded "
                        "random.Random(seed) or numpy default_rng",
                    ))
            elif name in banned_clocks:
                findings.append(self.finding(
                    ctx, node,
                    f"wall-clock read {name}() in a deterministic path; "
                    "use time.perf_counter()/process_time() for timing "
                    "measurement only",
                ))
        return findings


# ----------------------------------------------------------------------
# RP002 — dtype discipline
# ----------------------------------------------------------------------

class DtypeRule(Rule):
    """Array constructors in kernel modules must state their dtype.

    The DP tables, CSR arrays and shared-memory segments are all int64
    by contract (signatures pack into one int64 word; worker processes
    map segments with a hard-coded dtype).  A dtype-less ``np.zeros``
    defaults to float64 and a dtype-less ``np.asarray`` inherits
    whatever the caller passed — either silently changes table
    arithmetic or corrupts a shared-memory view.  Constructors that
    *propagate* an existing dtype (``concatenate``, ``*_like``) are
    exempt by design.
    """

    id = "RP002"
    title = "explicit dtype in kernel array constructors"

    def applies(self, path: str, config: AnalysisConfig) -> bool:
        return config.in_scope(path, config.rp002_scopes)

    def check(self, ctx: FileContext, config: AnalysisConfig) -> List[Finding]:
        findings: List[Finding] = []
        constructors = dict(config.rp002_constructors)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            ctor = parts[1]
            if ctor not in constructors:
                continue
            if any(kw.arg == "dtype" or kw.arg is None for kw in node.keywords):
                continue  # dtype= keyword, or a **kwargs splat we trust
            pos = constructors[ctor]
            if pos is not None and len(node.args) > pos:
                continue  # dtype passed positionally
            findings.append(self.finding(
                ctx, node,
                f"{name}(...) without an explicit dtype in a kernel "
                "module; state dtype= (int64 in DP table paths)",
            ))
        return findings


# ----------------------------------------------------------------------
# RP003 — lock discipline
# ----------------------------------------------------------------------

class LockDisciplineRule(Rule):
    """Guarded attributes may only be touched inside their lock's block.

    The lock map mirrors each class's documented concurrency contract
    (e.g. ``CountingEngine._cache_lock`` guards the plan/partition/
    reroot caches and the stats counters).  The check is lexical:
    ``self.<guarded>`` must appear inside a ``with self.<lock>:`` block
    in the same method.  ``__init__`` (no concurrent callers exist yet)
    and ``*_locked``-suffixed helpers (documented caller-holds-lock
    convention) are exempt.  Closures reset the held-lock set: deferred
    bodies run after the ``with`` exits.
    """

    id = "RP003"
    title = "lock-guarded attribute discipline"

    def applies(self, path: str, config: AnalysisConfig) -> bool:
        return bool(config.rp003_lock_maps)

    def check(self, ctx: FileContext, config: AnalysisConfig) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in config.rp003_lock_maps:
                findings.extend(self._check_class(ctx, node, config))
        return findings

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef, config: AnalysisConfig
    ) -> List[Finding]:
        lock_map = config.rp003_lock_maps[cls.name]
        guard_of: Dict[str, str] = {
            attr: lock for lock, attrs in lock_map.items() for attr in attrs
        }
        lock_names = set(lock_map)
        findings: List[Finding] = []
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in config.rp003_exempt_methods:
                continue
            if item.name.endswith(tuple(config.rp003_exempt_suffixes)):
                continue
            self._walk(ctx, cls.name, item.body, frozenset(), guard_of,
                       lock_names, item.name, findings)
        return findings

    def _walk(
        self,
        ctx: FileContext,
        cls_name: str,
        body: Sequence[ast.stmt],
        held: frozenset,
        guard_of: Dict[str, str],
        lock_names: Set[str],
        method: str,
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            self._visit(ctx, cls_name, stmt, held, guard_of, lock_names,
                        method, findings)

    def _visit(
        self,
        ctx: FileContext,
        cls_name: str,
        node: ast.AST,
        held: frozenset,
        guard_of: Dict[str, str],
        lock_names: Set[str],
        method: str,
        findings: List[Finding],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in lock_names
                ):
                    acquired.add(expr.attr)
            inner = held | acquired
            for item in node.items:
                self._visit(ctx, cls_name, item.context_expr, held, guard_of,
                            lock_names, method, findings)
            self._walk(ctx, cls_name, node.body, frozenset(inner), guard_of,
                       lock_names, method, findings)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # a deferred body runs after the with-block exits: no lock held
            children = node.body if isinstance(node.body, list) else [node.body]
            for child in children:
                self._visit(ctx, cls_name, child, frozenset(), guard_of,
                            lock_names, method, findings)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guard_of
            and guard_of[node.attr] not in held
        ):
            findings.append(self.finding(
                ctx, node,
                f"{cls_name}.{method} touches self.{node.attr} outside "
                f"'with self.{guard_of[node.attr]}:'",
            ))
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, cls_name, child, held, guard_of, lock_names,
                        method, findings)


# ----------------------------------------------------------------------
# RP006 — typed public seams
# ----------------------------------------------------------------------

class TypedSeamRule(Rule):
    """Functions on the typed seams must be fully annotated.

    This is the mechanical, always-runnable half of the mypy gate
    (``disallow_untyped_defs`` on the annotated packages): every
    parameter except ``self``/``cls`` and the return type must carry an
    annotation in the seam modules.  CI runs mypy for the semantic half;
    this rule keeps the property enforced even where mypy is not
    installed.
    """

    id = "RP006"
    title = "fully annotated public seams"

    def applies(self, path: str, config: AnalysisConfig) -> bool:
        return config.in_scope(path, config.rp006_scopes)

    def check(self, ctx: FileContext, config: AnalysisConfig) -> List[Finding]:
        findings: List[Finding] = []
        self._scan(ctx.tree.body, in_class=False, ctx=ctx, findings=findings)
        return findings

    def _scan(
        self,
        body: Sequence[ast.stmt],
        in_class: bool,
        ctx: FileContext,
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._scan(stmt.body, in_class=True, ctx=ctx, findings=findings)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                missing = self._missing(stmt, in_class)
                if missing:
                    findings.append(self.finding(
                        ctx, stmt,
                        f"def {stmt.name} missing annotations: "
                        f"{', '.join(missing)}",
                    ))
                self._scan(stmt.body, in_class=False, ctx=ctx, findings=findings)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        self._scan([inner], in_class, ctx, findings)

    @staticmethod
    def _missing(
        fn: "ast.FunctionDef | ast.AsyncFunctionDef", in_class: bool
    ) -> List[str]:
        args = fn.args
        ordered = list(args.posonlyargs) + list(args.args)
        if in_class and ordered and ordered[0].arg in ("self", "cls"):
            ordered = ordered[1:]
        missing = [a.arg for a in ordered if a.annotation is None]
        missing += [a.arg for a in args.kwonlyargs if a.annotation is None]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if fn.returns is None:
            missing.append("return")
        return missing


#: single-file AST rules in id order (RP004/RP005 are cross-file)
AST_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    DtypeRule(),
    LockDisciplineRule(),
    TypedSeamRule(),
)
