"""``python -m repro.analysis`` — the project's static-analysis gate.

Examples::

    python -m repro.analysis src benchmarks            # the CI gate
    python -m repro.analysis --format json src         # machine output
    python -m repro.analysis --rules RP003 src/repro   # one rule only
    python -m repro.analysis --list-rules

Exit status: 0 clean, 1 findings (or suppression budget exceeded),
2 usage errors.  Suppress a single line with an inline
``# repro: allow[<RULE>]`` comment — every suppression counts against
the committed budget (``--max-suppressions``, default 5) and needs a
written justification next to it.  See ``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .core import DEFAULT_CONFIG
from .runner import all_rules, run_analysis

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-invariant static analysis (determinism, dtype, "
        "lock, layering, wire-format, typed-seam rules)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "benchmarks"],
        help="files or directories to scan (default: src benchmarks)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--max-suppressions", type=int, default=DEFAULT_CONFIG.max_suppressions,
        metavar="N",
        help="inline-suppression budget for a full run "
        f"(default: {DEFAULT_CONFIG.max_suppressions})",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the available rules and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    rule_filter = None
    if args.rules is not None:
        rule_filter = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.id for rule in all_rules()}
        unknown = sorted(set(rule_filter) - known)
        if unknown:
            parser.error(
                f"unknown rule(s) {', '.join(unknown)}; known: {sorted(known)}"
            )

    report = run_analysis(
        paths, rules=rule_filter, max_suppressions=args.max_suppressions
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
