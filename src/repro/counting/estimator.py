"""Approximate subgraph counting via repeated random colorings (Section 2).

For a random coloring χ with ``k`` colors, ``(k^k / k!) · E[colorful
matches]`` equals the true match count — the colorful count is an unbiased
estimator after normalization.  The estimator repeats trials, averages,
and reports the coefficient of variation the paper uses in Figure 15
("the ratio of the empirical variance to the mean"; we additionally expose
the conventional std/mean ratio as ``relative_std``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..query.automorphisms import automorphism_count
from ..query.query import QueryGraph
from ..theory.bounds import chebyshev_halfwidth, student_t_quantile
from .solver import solve_plan

__all__ = [
    "EstimateResult",
    "StreamingEstimate",
    "estimate_matches",
    "normalization_factor",
    "random_coloring",
]


def normalization_factor(k: int, num_colors: Optional[int] = None) -> float:
    """Inverse probability that a fixed ``k``-vertex match is colorful.

    With the paper's ``num_colors == k`` palette this is ``k^k / k!``.
    The generalization to ``num_colors = c >= k`` (the classic
    variance-reduction extension) is ``c^k / (c)_k`` with ``(c)_k`` the
    falling factorial: a fixed match is colorful iff its ``k`` vertices
    draw distinct colors out of ``c``.
    """
    c = num_colors if num_colors is not None else k
    if c < k:
        raise ValueError(f"need at least k={k} colors, got {c}")
    falling = 1.0
    for i in range(k):
        falling *= c - i
    return float(c**k) / falling


def random_coloring(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random coloring of ``n`` vertices with ``k`` colors."""
    return rng.integers(0, k, size=n, dtype=np.int64)


@dataclass
class EstimateResult:
    """Outcome of a multi-trial color-coding estimation."""

    query_name: str
    graph_name: str
    trials: int
    colorful_counts: List[int]
    scale: float

    @property
    def colorful_mean(self) -> float:
        return float(np.mean(self.colorful_counts)) if self.colorful_counts else 0.0

    @property
    def colorful_variance(self) -> float:
        if len(self.colorful_counts) < 2:
            return 0.0
        return float(np.var(self.colorful_counts, ddof=1))

    @property
    def estimate(self) -> float:
        """Estimated number of matches (injective mappings)."""
        return self.scale * self.colorful_mean

    def estimated_subgraphs(self, query: QueryGraph) -> float:
        """Estimated number of distinct subgraphs (divide by aut(Q))."""
        return self.estimate / automorphism_count(query)

    @property
    def coefficient_of_variation(self) -> float:
        """Paper's Figure 15 metric: empirical variance over mean."""
        mean = self.colorful_mean
        return self.colorful_variance / mean if mean > 0 else 0.0

    @property
    def relative_std(self) -> float:
        """Conventional CoV: std over mean (scale free)."""
        mean = self.colorful_mean
        return math.sqrt(self.colorful_variance) / mean if mean > 0 else 0.0


class StreamingEstimate:
    """Single-pass mean/variance over per-trial colorful counts.

    The adaptive scheduler's accumulator: trials are pushed one at a
    time (Welford's update, numerically stable at any trial count) and
    the current empirical confidence interval is available after every
    push without revisiting earlier counts.  Matches the batch statistics
    of :class:`EstimateResult` — same ``ddof=1`` variance, same
    ``scale·mean`` estimate — which the fuzz tests pin down.

    The confidence interval is the Student-t interval on the trial mean.
    When the empirical variance is *degenerate* — fewer than two trials,
    an all-equal prefix, or a zero mean (relative error undefined) — the
    t-interval says nothing useful, so :meth:`relative_halfwidth` falls
    back to the distribution-free Chebyshev width under the worst-case
    per-trial relative variance from
    :func:`repro.theory.bounds.estimator_relative_variance_bound`.
    """

    def __init__(self, scale: float, rel_variance_bound: Optional[float] = None) -> None:
        self.scale = float(scale)
        #: worst-case per-trial relative variance used for the degenerate
        #: fallback; ``None`` disables the fallback (half-width becomes
        #: infinite whenever the empirical interval is undefined)
        self.rel_variance_bound = rel_variance_bound
        self.trials = 0
        self._mean = 0.0
        self._m2 = 0.0

    def push(self, count: int) -> None:
        """Fold one trial's colorful count into the running statistics."""
        self.trials += 1
        delta = float(count) - self._mean
        self._mean += delta / self.trials
        self._m2 += delta * (float(count) - self._mean)

    @property
    def colorful_mean(self) -> float:
        return self._mean if self.trials else 0.0

    @property
    def colorful_variance(self) -> float:
        """Sample variance of the colorful counts (``ddof=1``)."""
        if self.trials < 2:
            return 0.0
        return self._m2 / (self.trials - 1)

    @property
    def estimate(self) -> float:
        """Current unbiased match estimate (``scale · mean``)."""
        return self.scale * self._mean

    def relative_halfwidth(self, confidence: float = 0.95) -> float:
        """Relative half-width of the CI on the estimate at ``confidence``.

        Student-t when the empirical variance is usable; Chebyshev under
        ``rel_variance_bound`` when it is degenerate; ``inf`` when even
        the fallback is unavailable.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must lie in (0, 1)")
        degenerate = self.trials < 2 or self._mean <= 0.0 or self._m2 <= 0.0
        if degenerate:
            if self.rel_variance_bound is None or self.trials < 1:
                return math.inf
            return chebyshev_halfwidth(
                self.rel_variance_bound, self.trials, confidence
            )
        q = student_t_quantile(0.5 + confidence / 2.0, self.trials - 1)
        sem = math.sqrt(self.colorful_variance / self.trials)
        return q * sem / self._mean

    def interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """The CI on the *estimate* scale (clamped below at zero)."""
        hw = self.relative_halfwidth(confidence)
        if math.isinf(hw):
            return (0.0, math.inf)
        est = self.estimate
        return (max(0.0, est * (1.0 - hw)), est * (1.0 + hw))

    def precision_met(self, rel_error: float, confidence: float = 0.95) -> bool:
        """Whether the current CI is at least as tight as ``rel_error``."""
        if rel_error <= 0.0:
            raise ValueError("rel_error must be positive")
        return self.relative_halfwidth(confidence) <= rel_error


def estimate_matches(
    g: Graph,
    query: QueryGraph,
    trials: int = 10,
    seed: int = 0,
    method: str = "db",
    plan: Optional[Plan] = None,
    ctx: Optional[ExecutionContext] = None,
    num_colors: Optional[int] = None,
) -> EstimateResult:
    """Run ``trials`` independent colorings and estimate the match count.

    ``num_colors > k`` enables the larger-palette variance-reduction
    extension (see :func:`normalization_factor`); the estimator remains
    unbiased with the corrected scale.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    plan = plan or heuristic_plan(query)
    rng = np.random.default_rng(seed)
    k = query.k
    kc = num_colors if num_colors is not None else k
    counts: List[int] = []
    for _ in range(trials):
        colors = random_coloring(g.n, kc, rng)
        counts.append(
            solve_plan(plan, g, colors, ctx=ctx, method=method, num_colors=kc)
        )
    return EstimateResult(
        query_name=query.name,
        graph_name=g.name,
        trials=trials,
        colorful_counts=counts,
        scale=normalization_factor(k, kc),
    )
