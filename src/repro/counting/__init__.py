"""Counting algorithms: PS baseline, DB contribution, treelet DP, estimator."""

from .api import count, count_colorful, count_exact, make_context
from .bruteforce import count_colorful_matches, count_matches
from .colorings import (
    balanced_coloring,
    color_class_sizes,
    coloring_batch,
    uniform_coloring,
)
from .parallel import estimate_matches_parallel
from .verify import VerificationReport, verify_counting
from .db import count_colorful_db
from .estimator import (
    EstimateResult,
    estimate_matches,
    normalization_factor,
    random_coloring,
)
from .labels import label_masks, label_masks_from_arrays
from .ps import count_colorful_ps
from .solver import ALL_METHODS, METHODS, VEC_METHOD, BlockSolver, solve_plan
from .treelet import count_colorful_treelet
from .vectorized import count_colorful_ps_vec, solve_plan_vectorized
from .xp import (
    ArrayNamespace,
    BackendUnavailable,
    StrictNamespace,
    resolve_namespace,
)

__all__ = [
    "count",
    "count_colorful",
    "count_exact",
    "make_context",
    "count_matches",
    "count_colorful_matches",
    "label_masks",
    "label_masks_from_arrays",
    "count_colorful_ps",
    "count_colorful_ps_vec",
    "count_colorful_db",
    "count_colorful_treelet",
    "solve_plan",
    "solve_plan_vectorized",
    "BlockSolver",
    "METHODS",
    "VEC_METHOD",
    "ALL_METHODS",
    "EstimateResult",
    "estimate_matches",
    "normalization_factor",
    "random_coloring",
    "uniform_coloring",
    "balanced_coloring",
    "coloring_batch",
    "color_class_sizes",
    "estimate_matches_parallel",
    "verify_counting",
    "VerificationReport",
    "ArrayNamespace",
    "BackendUnavailable",
    "StrictNamespace",
    "resolve_namespace",
]
