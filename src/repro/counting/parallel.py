"""Process-parallel color-coding trials.

The outermost loop of the estimator — independent random colorings — is
embarrassingly parallel; the paper distributes *within* a trial (MPI
ranks), while on a single machine Python's GIL makes thread-level
parallelism useless for our dict-heavy kernels.  This module parallelises
*across trials* with ``multiprocessing`` instead: each worker counts one
coloring end to end.  The result is bit-identical to the sequential
estimator for the same seed.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Optional

import numpy as np

from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .colorings import coloring_batch
from .estimator import EstimateResult, normalization_factor
from .solver import solve_plan

__all__ = ["estimate_matches_parallel"]

# module-level state for fork-style workers (set by the initializer)
_WORKER_STATE: dict = {}


def _init_worker(graph: Graph, plan: Plan, method: str) -> None:  # pragma: no cover
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["plan"] = plan
    _WORKER_STATE["method"] = method


def _run_trial(colors: np.ndarray) -> int:  # pragma: no cover - subprocess
    return solve_plan(
        _WORKER_STATE["plan"],
        _WORKER_STATE["graph"],
        colors,
        method=_WORKER_STATE["method"],
    )


def estimate_matches_parallel(
    g: Graph,
    query: QueryGraph,
    trials: int = 10,
    seed: int = 0,
    method: str = "db",
    plan: Optional[Plan] = None,
    workers: int = 2,
    coloring_strategy: str = "uniform",
) -> EstimateResult:
    """Like :func:`repro.counting.estimator.estimate_matches`, with trials
    fanned out over ``workers`` processes.

    Colorings are drawn up front from the same deterministic batch the
    sequential estimator would use, so results match it exactly.
    Falls back to in-process execution when ``workers <= 1`` or trial
    count is tiny (process startup would dominate).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    plan = plan or heuristic_plan(query)
    k = query.k
    colorings = coloring_batch(g.n, k, trials, seed, strategy=coloring_strategy)

    if workers <= 1 or trials < 2:
        counts: List[int] = [
            solve_plan(plan, g, colors, method=method) for colors in colorings
        ]
    else:
        ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
        with ctx.Pool(
            processes=min(workers, trials),
            initializer=_init_worker,
            initargs=(g, plan, method),
        ) as pool:
            counts = pool.map(_run_trial, colorings)

    return EstimateResult(
        query_name=query.name,
        graph_name=g.name,
        trials=trials,
        colorful_counts=[int(c) for c in counts],
        scale=normalization_factor(k),
    )
