"""Process-parallel color-coding trials — **removed**, hard stub.

Worker-process fan-out lives in :class:`repro.engine.CountingEngine`
(``workers=N``), which draws colorings from the same deterministic
stream the sequential estimator uses, so results are bit-identical to
the sequential path for the same seed.

.. deprecated::
    ``estimate_matches_parallel`` spent one deprecation cycle as a
    delegating shim and is now a *hard stub*: importable, but raising
    :class:`DeprecationWarning` when called.  Use
    ``CountingEngine(g).count(q, workers=N)`` — the full migration
    table lives in ``docs/API.md``.
"""

from __future__ import annotations

from typing import NoReturn

__all__ = ["estimate_matches_parallel"]


def estimate_matches_parallel(*args: object, **kwargs: object) -> NoReturn:
    """Removed. Use ``CountingEngine(g).count(q, workers=N)``."""
    raise DeprecationWarning(
        "repro.counting.estimate_matches_parallel has been removed; use "
        "repro.engine.CountingEngine.count(..., workers=N) "
        "(see docs/API.md for the migration table)"
    )
