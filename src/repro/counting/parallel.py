"""Process-parallel color-coding trials — deprecated shim.

The outermost loop of the estimator — independent random colorings — is
embarrassingly parallel; the paper distributes *within* a trial (MPI
ranks), while on a single machine Python's GIL makes thread-level
parallelism useless for our dict-heavy kernels.  Worker-process fan-out
now lives in :class:`repro.engine.CountingEngine` (``workers=N``), which
draws colorings up front from the same deterministic batch the
sequential estimator uses, so results are bit-identical to the
sequential path for the same seed.

.. deprecated::
    Use ``CountingEngine(g).count(q, workers=N)`` instead.  This wrapper
    remains for backward compatibility and returns the engine's
    :class:`RunResult` (an :class:`EstimateResult` subclass).
"""

from __future__ import annotations

from typing import Optional

from ._deprecation import warn_once_per_site
from ..decomposition.tree import Plan
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .estimator import EstimateResult

__all__ = ["estimate_matches_parallel"]


def estimate_matches_parallel(
    g: Graph,
    query: QueryGraph,
    trials: int = 10,
    seed: int = 0,
    method: str = "db",
    plan: Optional[Plan] = None,
    workers: int = 2,
    coloring_strategy: str = "uniform",
) -> EstimateResult:
    """Like :func:`repro.counting.estimator.estimate_matches`, with trials
    fanned out over ``workers`` processes.

    Falls back to in-process execution when ``workers <= 1`` or the trial
    count is tiny (process startup would dominate).

    .. deprecated:: use ``CountingEngine(g).count(q, workers=N)``.
    """
    from ..engine import CountingEngine

    warn_once_per_site(
        "repro.counting.estimate_matches_parallel is deprecated; use "
        "repro.engine.CountingEngine.count(..., workers=N)",
        stacklevel=2,
    )
    return CountingEngine(g).count(
        query,
        trials=trials,
        seed=seed,
        method=method,
        plan=plan,
        workers=workers,
        coloring_strategy=coloring_strategy,
    )
