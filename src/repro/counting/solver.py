"""Bottom-up plan solver: blocks → projection tables → colorful count.

Implements the "plan solver" layer of the paper's Section 7 on top of the
join kernels.  Two methods are provided:

* ``"ps"`` — Path Splitting (Figure 4): each cycle is split once at its
  boundary nodes (or at an arbitrary node when it has fewer than two) and
  the two paths are built without pruning.  Equivalent to the original
  Alon et al. dynamic program; the paper's baseline.
* ``"db"`` — Degree Based (Figures 6/7): every cycle is processed once per
  choice of the highest node ``h``; paths run from ``h`` to the diagonally
  opposite node ``d`` under the high-starting constraint, recording
  boundary nodes that fall inside a path in extra key fields, and the
  per-``h`` counts are aggregated (Equation 1).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from ..decomposition.blocks import CYCLE, LEAF, SINGLETON, Block
from ..decomposition.tree import Plan
from ..distributed.runtime import ExecutionContext, sequential_context
from ..graph.graph import Graph
from ..tables.projection import BinaryTable, UnaryTable
from .kernels import build_path_table, merge_cycle_paths, oriented_binary
from .labels import label_masks

__all__ = ["solve_plan", "BlockSolver", "METHODS", "VEC_METHOD", "ALL_METHODS"]

Node = Hashable

#: ``ps`` — Path Splitting baseline; ``db`` — Degree Based contribution;
#: ``ps-even`` — the Section 5.1 ablation: PS splitting each cycle evenly
#: at a diagonal (recording interior boundary nodes) instead of at its
#: boundary nodes, but still without degree pruning.  The paper reports
#: this variant "does not differ significantly" from plain PS.
METHODS = ("ps", "db", "ps-even")

#: ``ps-vec`` — PS re-expressed as whole-table numpy operations over the
#: CSR adjacency (:mod:`repro.counting.vectorized`); bit-identical to
#: ``ps`` but without per-rank load attribution.
VEC_METHOD = "ps-vec"
ALL_METHODS = METHODS + (VEC_METHOD,)


def _cw_labels(nodes: Tuple[Node, ...], s: int, e: int) -> List[Node]:
    """Cycle labels from position ``s`` to ``e`` walking clockwise (+1)."""
    L = len(nodes)
    out = [nodes[s]]
    i = s
    while i != e:
        i = (i + 1) % L
        out.append(nodes[i])
    return out


def _ccw_labels(nodes: Tuple[Node, ...], s: int, e: int) -> List[Node]:
    """Cycle labels from ``s`` to ``e`` walking counter-clockwise (-1)."""
    L = len(nodes)
    out = [nodes[s]]
    i = s
    while i != e:
        i = (i - 1) % L
        out.append(nodes[i])
    return out


class BlockSolver:
    """Solves each block of a plan exactly once, bottom-up."""

    def __init__(
        self,
        g: Graph,
        colors: np.ndarray,
        ctx: ExecutionContext,
        method: str,
        k: int,
        vertex_ok: Optional[Dict[Node, np.ndarray]] = None,
    ) -> None:
        if method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}, got {method!r}")
        self.g = g
        self.colors = colors
        self.ctx = ctx
        self.method = method
        self.k = k
        #: label-compatibility masks for labeled queries (None = unlabeled)
        self.vertex_ok = vertex_ok
        self._solved: Dict[int, Union[UnaryTable, BinaryTable, int]] = {}
        self._tcache: Dict[int, BinaryTable] = {}
        self._block_counter = 0

    # ------------------------------------------------------------------
    def solve(self, block: Block) -> Union[UnaryTable, BinaryTable, int]:
        key = id(block)
        if key not in self._solved:
            self._block_counter += 1
            tag = f"b{self._block_counter}"
            if block.kind == LEAF:
                result = self._solve_leaf(block, tag)
            elif block.kind == CYCLE:
                result = self._solve_cycle(block, tag)
            else:  # pragma: no cover - singletons handled by solve_plan
                raise ValueError("singleton blocks are roots, not solvable tables")
            self._solved[key] = result
        return self._solved[key]

    # ------------------------------------------------------------------
    def _child_tables(
        self, block: Block
    ) -> Tuple[Dict[Node, UnaryTable], Dict[int, BinaryTable]]:
        node_tables = {lab: self.solve(child) for lab, child in block.node_ann.items()}
        edge_tables = {i: self.solve(child) for i, child in block.edge_ann.items()}
        return node_tables, edge_tables

    def _solve_leaf(self, block: Block, tag: str) -> UnaryTable:
        a, b = block.nodes
        node_tables, edge_children = self._child_tables(block)
        edge_tables: Dict[int, BinaryTable] = {}
        if 0 in edge_children:
            edge_tables[0] = oriented_binary(edge_children[0], a, b, self._tcache)
        pt = build_path_table(
            self.g,
            self.colors,
            (a, b),
            node_tables,
            edge_tables,
            self.ctx,
            high=False,
            stage_prefix=f"{tag}:leaf",
            vertex_ok=self.vertex_ok,
        )
        out = UnaryTable(a)
        self.ctx.begin_stage(f"{tag}:leaf-project")
        for (u, _v, _extras, sig), cnt in pt.items():
            out.add(u, sig, cnt)
            self.ctx.op(u)
        return out

    # ------------------------------------------------------------------
    def _solve_cycle(self, block: Block, tag: str) -> Union[UnaryTable, BinaryTable, int]:
        nodes = block.nodes
        L = len(nodes)
        boundary = block.boundary
        nb = len(boundary)
        node_tables, edge_children = self._child_tables(block)

        # output container ------------------------------------------------
        total_scalar = 0
        out_unary: Optional[UnaryTable] = None
        out_binary: Optional[BinaryTable] = None
        if nb == 1:
            out_unary = UnaryTable(boundary[0])
        elif nb == 2:
            out_binary = BinaryTable((boundary[0], boundary[1]))
        def emit_entry(images: Tuple[int, ...], sig: int, cnt: int) -> None:
            nonlocal total_scalar
            if nb == 0:
                # a complete match uses exactly k distinct colors (which is
                # the full palette only when num_colors == k)
                assert bin(sig).count("1") == self.k, "root signature size != k"
                total_scalar += cnt
            elif nb == 1:
                out_unary.add(images[0], sig, cnt)
            else:
                out_binary.add(images[0], images[1], sig, cnt)

        # split choices ----------------------------------------------------
        if self.method == "ps":
            if nb == 2:
                s = nodes.index(boundary[0])
                e = nodes.index(boundary[1])
            elif nb == 1:
                s = nodes.index(boundary[0])
                e = (s + L // 2) % L
            else:
                s, e = 0, L // 2
            splits = [(s, e)]
            record_set: set = set()
        elif self.method == "ps-even":
            # even split at a diagonal; boundary nodes may land inside the
            # paths, so they are recorded like in DB — but no degree pruning
            s = nodes.index(boundary[0]) if nb else 0
            e = (s + L // 2) % L
            splits = [(s, e)]
            record_set = set(boundary)
        else:
            splits = [(h, (h + L // 2) % L) for h in range(L)]
            record_set = set(boundary)

        high = self.method == "db"
        for s_idx, e_idx in splits:
            plus_labels = _cw_labels(nodes, s_idx, e_idx)
            minus_labels = _ccw_labels(nodes, s_idx, e_idx)
            s_label, e_label = nodes[s_idx], nodes[e_idx]

            # Endpoint annotation convention (Section 5.2): P+ takes the
            # block annotating the end node d, P- the one annotating the
            # start node h; interior annotations go to their own path.
            plus_nodes = {
                lab: node_tables[lab]
                for lab in plus_labels[1:]
                if lab in node_tables
            }
            minus_nodes = {
                lab: node_tables[lab]
                for lab in minus_labels[:-1]
                if lab in node_tables
            }

            plus_edges: Dict[int, BinaryTable] = {}
            for j in range(len(plus_labels) - 1):
                idx = (s_idx + j) % L
                if idx in edge_children:
                    plus_edges[j] = oriented_binary(
                        edge_children[idx], plus_labels[j], plus_labels[j + 1], self._tcache
                    )
            minus_edges: Dict[int, BinaryTable] = {}
            for j in range(len(minus_labels) - 1):
                idx = (s_idx - j - 1) % L
                if idx in edge_children:
                    minus_edges[j] = oriented_binary(
                        edge_children[idx], minus_labels[j], minus_labels[j + 1], self._tcache
                    )

            tplus = build_path_table(
                self.g,
                self.colors,
                plus_labels,
                plus_nodes,
                plus_edges,
                self.ctx,
                high=high,
                record_set=record_set,
                stage_prefix=f"{tag}:p",
                vertex_ok=self.vertex_ok,
            )
            tminus = build_path_table(
                self.g,
                self.colors,
                minus_labels,
                minus_nodes,
                minus_edges,
                self.ctx,
                high=high,
                record_set=record_set,
                stage_prefix=f"{tag}:m",
                vertex_ok=self.vertex_ok,
            )
            merge_cycle_paths(
                tplus,
                tminus,
                self.colors,
                emit_entry,
                boundary,
                s_label,
                e_label,
                self.ctx,
                stage_name=f"{tag}:merge",
            )

        if nb == 0:
            return total_scalar
        if nb == 1:
            return out_unary
        return out_binary


def solve_plan(
    plan: Plan,
    g: Graph,
    colors: np.ndarray,
    ctx: Optional[ExecutionContext] = None,
    method: str = "db",
    num_colors: Optional[int] = None,
) -> int:
    """Number of colorful matches of ``plan.query`` in ``g`` under ``colors``.

    ``colors[u]`` must be an integer in ``[0, num_colors)``.  By default
    ``num_colors == k`` (the query size) — the paper's setting.  Passing
    ``num_colors > k`` enables the classic variance-reduction extension of
    color coding: with more colors than query nodes, a fixed match is
    colorful with higher probability, so fewer trials are needed (rescale
    with ``normalization_factor(k, num_colors)``).  A *colorful match*
    always means all ``k`` matched vertices have pairwise distinct colors.

    ``ctx`` defaults to an untracked sequential context.  With
    ``method="ps-vec"`` the whole solve is delegated to the vectorized
    kernels (:mod:`repro.counting.vectorized`); ``ctx`` is ignored there
    because batched table operations cannot attribute work to ranks.

    Labeled queries (``plan.query.labels``) count only matches mapping
    each query node to a data vertex with the same label; ``g`` must then
    carry a label array.
    """
    if method == VEC_METHOD:
        from .vectorized import solve_plan_vectorized

        return solve_plan_vectorized(plan, g, colors, num_colors=num_colors)
    colors = np.asarray(colors, dtype=np.int64)
    k = plan.query.k
    kc = num_colors if num_colors is not None else k
    if kc < k:
        raise ValueError(f"need at least k={k} colors, got num_colors={kc}")
    if len(colors) != g.n:
        raise ValueError("coloring must assign a color to every data vertex")
    if k > 0 and colors.size and (colors.min() < 0 or colors.max() >= kc):
        raise ValueError(f"colors must lie in [0, {kc})")
    vertex_ok = label_masks(g, plan.query)
    if ctx is None:
        ctx = sequential_context(g)

    root = plan.root
    if root.kind == SINGLETON:
        if root.node_ann:
            solver = BlockSolver(g, colors, ctx, method, k, vertex_ok=vertex_ok)
            (child,) = root.node_ann.values()
            table = solver.solve(child)
            # Every entry of the root child's table is a complete match; its
            # signature has exactly k (distinct) colors by construction, so
            # summing everything counts the colorful matches.
            return sum(cnt for (_u, _sig), cnt in table.items())
        if vertex_ok:
            # A single-node labeled query: count label-compatible vertices.
            (mask,) = vertex_ok.values()
            return int(mask.sum())
        # A single-node query: every vertex is a colorful match.
        return g.n

    solver = BlockSolver(g, colors, ctx, method, k, vertex_ok=vertex_ok)
    result = solver.solve(root)
    assert isinstance(result, int), "root cycle must produce a scalar"
    return result
