"""Self-verification harness.

Production counters need a way to check themselves on inputs too large
for exhaustive validation.  This module provides randomized consistency
checks that hold with certainty (not statistically):

* **method agreement** — PS, DB and ps-even must produce identical counts
  on the same (graph, coloring); any divergence is a bug in exactly the
  kind of join bookkeeping this paper's algorithms live on;
* **plan agreement** — all decomposition trees of the query must count
  identically;
* **subsample ground truth** — on a random induced BFS ball small enough
  to brute force, the fast counters must match the exhaustive count;
* **rank invariance** — the distributed runs must return the same count
  at every rank count / partition strategy.

`verify_counting` bundles them; the test suite and the CLI's `verify`
subcommand both call it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..decomposition.enumeration import enumerate_plans
from ..decomposition.planner import heuristic_plan
from ..decomposition.validate import validate_plan
from ..distributed.partition import make_partition
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..graph.sampling import random_induced_sample
from ..query.query import QueryGraph
from .bruteforce import count_colorful_matches
from .colorings import uniform_coloring
from .solver import METHODS, solve_plan

__all__ = ["VerificationReport", "verify_counting"]


@dataclass
class VerificationReport:
    """Outcome of a verification run; ``ok`` iff every check passed."""

    graph_name: str
    query_name: str
    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(name)
        if not passed:
            self.failures.append(f"{name}: {detail}")

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"verify {self.graph_name} x {self.query_name}: {status} "
            f"({len(self.checks)} checks)"
        ]
        lines.extend(f"  FAIL {f}" for f in self.failures)
        return "\n".join(lines)


def verify_counting(
    g: Graph,
    query: QueryGraph,
    seed: int = 0,
    subsample_vertices: int = 12,
    max_plans: int = 4,
    rank_counts: tuple = (2, 4),
) -> VerificationReport:
    """Run the full consistency battery on one (graph, query) pair."""
    rng = np.random.default_rng(seed)
    report = VerificationReport(g.name or "?", query.name or "?")

    plan = heuristic_plan(query)
    try:
        validate_plan(plan)
        report.record("plan-valid", True)
    except AssertionError as exc:
        report.record("plan-valid", False, str(exc))
        return report

    colors = uniform_coloring(g.n, query.k, rng)

    # 1. method agreement on the full graph
    counts = {m: solve_plan(plan, g, colors, method=m) for m in METHODS}
    report.record(
        "method-agreement",
        len(set(counts.values())) == 1,
        f"counts {counts!r}",
    )
    reference = counts["db"]

    # 2. plan agreement (bounded enumeration)
    try:
        plans = enumerate_plans(query, limit=5000)[:max_plans]
    except RuntimeError:
        plans = [plan]
    plan_counts = {solve_plan(p, g, colors, method="db") for p in plans}
    report.record(
        "plan-agreement",
        plan_counts == {reference},
        f"plan counts {plan_counts!r} vs {reference}",
    )

    # 3. subsample ground truth
    sample, remap = random_induced_sample(g, subsample_vertices, rng)
    sub_colors = np.empty(sample.n, dtype=np.int64)
    for old, new in remap.items():
        sub_colors[new] = colors[old]
    brute = count_colorful_matches(sample, query, sub_colors)
    fast = solve_plan(plan, sample, sub_colors, method="db")
    report.record(
        "subsample-ground-truth",
        brute == fast,
        f"brute {brute} vs db {fast} on {sample.n}-vertex sample",
    )

    # 4. rank / partition invariance — the tracked solve over a real
    # partition, built from the substrate layer directly (the layering
    # contract keeps counting below repro.distributed.engine)
    for r in rank_counts:
        for strategy in ("block", "hash"):
            ctx = ExecutionContext(make_partition(g.n, r, strategy), track=True)
            count = solve_plan(plan, g, colors, ctx=ctx, method="db")
            report.record(
                f"rank-invariance[{r},{strategy}]",
                count == reference,
                f"{count} != {reference}",
            )
    return report
