"""Label-compatibility masks — the bridge from vertex labels to the DP.

A *labeled* query constrains each query node to data vertices carrying
the same integer label.  Both the dict kernels
(:mod:`repro.counting.kernels`) and the vectorized kernels
(:mod:`repro.counting.vectorized`) consume the constraint in the same
shape: one boolean mask per query node over the data vertices, applied
wherever a kernel draws *new* candidate vertices from the data graph
(path seeding and graph-edge extension).  Child projection tables are
already label-filtered when they are built, so joins against them need
no further masking — which is why labeled counting stays bit-identical
across ``ps``/``ps-vec``/``ps-dist``: the arithmetic is untouched, only
the candidate sets shrink.

Masks for equal labels are shared (one ``glabels == lab`` comparison per
distinct label, not per query node).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

import numpy as np

from ..graph.graph import Graph
from ..query.query import QueryGraph

__all__ = ["label_masks", "label_masks_from_arrays"]

Node = Hashable


def label_masks_from_arrays(
    glabels: Optional[np.ndarray], qlabels: Optional[Mapping[Node, int]]
) -> Optional[Dict[Node, np.ndarray]]:
    """``{query node: boolean mask over data vertices}`` or ``None``.

    ``None`` query labels mean unlabeled counting (no masks, whatever the
    graph carries).  A labeled query over an unlabeled graph is a type
    error — there is nothing to match the constraint against.
    """
    if qlabels is None:
        return None
    if glabels is None:
        raise ValueError(
            "labeled query requires a labeled data graph (Graph(labels=...))"
        )
    per_label: Dict[int, np.ndarray] = {}
    masks: Dict[Node, np.ndarray] = {}
    for node, lab in qlabels.items():
        lab = int(lab)
        mask = per_label.get(lab)
        if mask is None:
            mask = glabels == lab
            per_label[lab] = mask
        masks[node] = mask
    return masks


def label_masks(g: Graph, query: QueryGraph) -> Optional[Dict[Node, np.ndarray]]:
    """Label-compatibility masks of ``query`` against ``g`` (see module doc)."""
    return label_masks_from_arrays(g.labels, query.labels)
