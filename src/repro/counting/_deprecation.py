"""Once-per-call-site deprecation warnings for the legacy counting API.

``warnings.warn(..., DeprecationWarning)`` is filtered out entirely in
most interpreter configurations (the default filters only show
``DeprecationWarning`` raised from ``__main__``), so the legacy shims
were effectively silent; and under ``simplefilter("always")`` they became
noisy, repeating on every call inside a trial loop.  This helper pins the
intended middle ground deterministically: each *call site* — the
``(filename, lineno)`` that invoked the deprecated function — gets the
warning exactly once per process, independent of the active filters'
de-duplication state.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_once_per_site", "reset_warning_sites"]

_seen_sites: set = set()


def warn_once_per_site(message: str, *, stacklevel: int = 2) -> None:
    """Emit ``DeprecationWarning`` once per calling ``(file, line)``.

    ``stacklevel`` follows :func:`warnings.warn` as seen by our caller:
    ``1`` is the caller itself, ``2`` its caller, and so on.
    """
    try:
        frame = sys._getframe(stacklevel)
        site = (frame.f_code.co_filename, frame.f_lineno)
    except ValueError:  # stack shallower than stacklevel
        site = ("<unknown>", 0)
    if site in _seen_sites:
        return
    _seen_sites.add(site)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def reset_warning_sites() -> None:
    """Forget every recorded call site (test isolation hook)."""
    _seen_sites.clear()
