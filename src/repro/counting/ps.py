"""PS — the Path Splitting baseline (paper Sections 4-5, Figure 4).

A thin façade over :mod:`repro.counting.solver` with ``method="ps"``.
PS is the paper's rephrasing of the original Alon et al. color-coding
dynamic program: every cycle block is split once at its boundary nodes
into two paths which are extended edge by edge with no degree pruning.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .solver import solve_plan

__all__ = ["count_colorful_ps"]


def count_colorful_ps(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    plan: Optional[Plan] = None,
    ctx: Optional[ExecutionContext] = None,
) -> int:
    """Colorful matches of ``query`` in ``g`` under ``colors`` via PS."""
    plan = plan or heuristic_plan(query)
    return solve_plan(plan, g, np.asarray(colors), ctx=ctx, method="ps")
