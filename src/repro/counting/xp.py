"""The array-namespace seam for the vectorized PS kernels.

:mod:`repro.counting.vectorized` expresses the PS dynamic program as
whole-table int64 array operations.  Nothing in that sweep is NumPy-
specific — it is repeat/gather joins, ``searchsorted`` merges and
lexsort+reduceat segment sums — so this module narrows its array surface
to one audited seam: an :class:`ArrayNamespace` handle exposing exactly
the primitives the sweep uses (:data:`AUDITED_PRIMITIVES`), with

* :class:`NumpyNamespace` — the default CPU implementation;
* :class:`StrictNamespace` — a pure-Python CPU stub that wraps NumPy but
  *rejects any call outside the audited set* and counts per-primitive
  usage.  CI runs the whole vectorized suite under it
  (``REPRO_ARRAY_NAMESPACE=strict``), so a change that sneaks an
  un-audited NumPy call into the sweep fails on GPU-less runners;
* :class:`CupyNamespace` / :class:`TorchNamespace` — optional CUDA
  implementations, constructed only when the package *and* a device are
  present (:exc:`BackendUnavailable` otherwise).

Two primitives have no portable equivalent and get explicit fallbacks
shared by the GPU namespaces: :func:`lexsort_fallback` (iterated stable
argsort — ``np.lexsort`` semantics, last key primary) and
:func:`add_reduceat_fallback` (cumulative-sum segment differences —
``np.add.reduceat`` over sorted ``starts`` with ``starts[0] == 0``).
Both are fuzz-tested against their NumPy originals, so a GPU run
inherits the bit-identical contract from the CPU tests.

Resolution: :func:`resolve_namespace` maps a spec string to a handle;
``"auto"`` prefers CuPy, then torch, then degrades cleanly to NumPy.
The process-wide default (:func:`default_namespace`) reads the
``REPRO_ARRAY_NAMESPACE`` environment variable, and
:func:`cpu_namespace` coerces it onto the host for paths that must stay
there (the ``ps-dist`` shared-memory executor).

``python -m repro.counting.xp`` prints a JSON audit — namespace
availability plus the per-primitive usage of a demo solve under the
strict stub — uploaded as a CI artifact by the ``backend-matrix`` job.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Array",
    "ArrayNamespace",
    "NumpyNamespace",
    "StrictNamespace",
    "CupyNamespace",
    "TorchNamespace",
    "BackendUnavailable",
    "AUDITED_PRIMITIVES",
    "KNOWN_NAMESPACES",
    "NAMESPACE_ENV_VAR",
    "resolve_namespace",
    "default_namespace",
    "cpu_namespace",
    "gpu_namespace",
    "as_namespace",
    "lexsort_fallback",
    "add_reduceat_fallback",
]

#: a backend-native array handle (np.ndarray / cupy.ndarray / torch.Tensor)
Array = Any
#: a backend-native dtype object
DType = Any
#: anything :func:`as_namespace` accepts
NamespaceLike = Union[str, "ArrayNamespace", None]

#: environment variable naming the process-wide default namespace
NAMESPACE_ENV_VAR = "REPRO_ARRAY_NAMESPACE"

#: every spec string :func:`resolve_namespace` accepts
KNOWN_NAMESPACES: Tuple[str, ...] = ("numpy", "strict", "cupy", "torch", "auto")

#: the audited primitive set — the *only* module-level calls the
#: vectorized sweep may make; StrictNamespace rejects everything else
AUDITED_PRIMITIVES: Tuple[str, ...] = (
    # creation (dtype always explicit — the RP002 discipline)
    "asarray", "empty", "zeros", "ones", "arange",
    # movement / structure
    "repeat", "concatenate", "diff", "cumsum", "flatnonzero",
    # sorted-table joins and aggregation
    "searchsorted", "lexsort", "add_reduceat",
    # reductions and dtype promotion
    "sum", "min", "max", "all", "astype", "popcount",
)


class BackendUnavailable(RuntimeError):
    """An explicitly requested array namespace cannot run here.

    Raised when the backing package is not installed or no CUDA device
    is visible.  ``"auto"`` catches this and degrades to NumPy; explicit
    specs surface it to the caller (the service maps it to HTTP 400).
    """


# ----------------------------------------------------------------------
# portable fallbacks for the two NumPy-only primitives
# ----------------------------------------------------------------------

def lexsort_fallback(
    keys: Sequence[Array], argsort_stable: Callable[[Array], Array]
) -> Array:
    """``np.lexsort`` semantics from repeated stable argsorts.

    ``keys[-1]`` is the primary sort key (NumPy's convention).  Iterating
    stable argsorts from the least-significant key up is the classic
    radix argument: each later (more significant) pass preserves the
    relative order established by earlier ones.
    """
    if not keys:
        raise ValueError("lexsort requires at least one key")
    order = argsort_stable(keys[0])
    for key in keys[1:]:
        order = order[argsort_stable(key[order])]
    return order


def add_reduceat_fallback(
    a: Array, starts: Array, cumsum: Callable[[Array], Array]
) -> Array:
    """``np.add.reduceat(a, starts)`` for sorted ``starts`` with ``starts[0] == 0``.

    Segment ``i`` sums ``a[starts[i]:starts[i+1]]`` (the last segment
    runs to the end): cumulative sum at each segment's last element,
    minus the cumulative sum just before its start.  Exact in int64
    whenever the whole-table total fits — which the kernels'
    ``_SUM_LIMIT`` guard establishes before every aggregation.
    """
    totals = cumsum(a)
    ends = starts - starts  # zeros with starts' backend/dtype/device
    ends[: len(ends) - 1] = starts[1:] - 1
    ends[len(ends) - 1] = len(a) - 1
    upper = totals[ends]
    lower = starts - starts
    lower[1:] = totals[starts[1:] - 1]
    return upper - lower


# ----------------------------------------------------------------------
# the namespace interface and the NumPy default
# ----------------------------------------------------------------------

class ArrayNamespace:
    """The audited array surface of the vectorized PS sweep.

    Implementations provide :data:`AUDITED_PRIMITIVES` as methods plus
    the ``int64``/``bool_``/``float64`` dtype handles, ``name`` and
    ``device``.  Everything else the kernels do is array-object algebra
    (elementwise operators, fancy/boolean indexing, slicing) — part of
    the array-API standard and portable by construction.
    """

    name: str = ""
    #: ``"cpu"`` or ``"cuda"`` — where this namespace's arrays live
    device: str = "cpu"
    int64: DType = None
    bool_: DType = None
    float64: DType = None

    def asarray(self, a: object, dtype: DType = None) -> Array:
        """Convert (device transfer point: host data crosses here)."""
        raise NotImplementedError

    def empty(self, n: int, dtype: DType = None) -> Array:
        raise NotImplementedError

    def zeros(self, n: int, dtype: DType = None) -> Array:
        raise NotImplementedError

    def ones(self, n: int, dtype: DType = None) -> Array:
        raise NotImplementedError

    def arange(self, n: int, dtype: DType = None) -> Array:
        raise NotImplementedError

    def repeat(self, a: Array, repeats: Array) -> Array:
        raise NotImplementedError

    def concatenate(self, arrays: Sequence[Array]) -> Array:
        raise NotImplementedError

    def diff(self, a: Array) -> Array:
        raise NotImplementedError

    def cumsum(self, a: Array) -> Array:
        raise NotImplementedError

    def flatnonzero(self, a: Array) -> Array:
        raise NotImplementedError

    def searchsorted(self, a: Array, v: Array, side: str = "left") -> Array:
        raise NotImplementedError

    def lexsort(self, keys: Sequence[Array]) -> Array:
        """Stable multi-key argsort; ``keys[-1]`` is primary (NumPy order)."""
        raise NotImplementedError

    def add_reduceat(self, a: Array, starts: Array) -> Array:
        """Segment sums over sorted ``starts`` with ``starts[0] == 0``."""
        raise NotImplementedError

    def sum(self, a: Array) -> Array:
        raise NotImplementedError

    def min(self, a: Array) -> Array:
        raise NotImplementedError

    def max(self, a: Array) -> Array:
        raise NotImplementedError

    def all(self, a: Array) -> bool:
        raise NotImplementedError

    def astype(self, a: Array, dtype: DType) -> Array:
        raise NotImplementedError

    def popcount(self, a: Array) -> Array:
        """Per-element population count of an int64 array (values >= 0)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} device={self.device!r}>"


class NumpyNamespace(ArrayNamespace):
    """The default handle: thin delegation to NumPy."""

    name = "numpy"
    device = "cpu"
    int64 = np.int64
    bool_ = np.bool_
    float64 = np.float64

    def asarray(self, a: object, dtype: DType = None) -> Array:
        return np.asarray(a, dtype=dtype)

    def empty(self, n: int, dtype: DType = None) -> Array:
        return np.empty(n, dtype=dtype)

    def zeros(self, n: int, dtype: DType = None) -> Array:
        return np.zeros(n, dtype=dtype)

    def ones(self, n: int, dtype: DType = None) -> Array:
        return np.ones(n, dtype=dtype)

    def arange(self, n: int, dtype: DType = None) -> Array:
        return np.arange(n, dtype=dtype)

    def repeat(self, a: Array, repeats: Array) -> Array:
        return np.repeat(a, repeats)

    def concatenate(self, arrays: Sequence[Array]) -> Array:
        return np.concatenate(arrays)

    def diff(self, a: Array) -> Array:
        return np.diff(a)

    def cumsum(self, a: Array) -> Array:
        return np.cumsum(a)

    def flatnonzero(self, a: Array) -> Array:
        return np.flatnonzero(a)

    def searchsorted(self, a: Array, v: Array, side: str = "left") -> Array:
        return np.searchsorted(a, v, side=side)

    def lexsort(self, keys: Sequence[Array]) -> Array:
        return np.lexsort(tuple(keys))

    def add_reduceat(self, a: Array, starts: Array) -> Array:
        return np.add.reduceat(a, starts)

    def sum(self, a: Array) -> Array:
        return np.sum(a)

    def min(self, a: Array) -> Array:
        return np.min(a)

    def max(self, a: Array) -> Array:
        return np.max(a)

    def all(self, a: Array) -> bool:
        return bool(np.all(a))

    def astype(self, a: Array, dtype: DType) -> Array:
        return a.astype(dtype)

    def popcount(self, a: Array) -> Array:
        if hasattr(np, "bitwise_count"):
            return np.bitwise_count(a).astype(np.int64)
        x = a.astype(np.uint64)
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        x = x - ((x >> np.uint64(1)) & m1)
        x = (x & m2) + ((x >> np.uint64(2)) & m2)
        x = (x + (x >> np.uint64(4))) & m4
        return ((x * np.uint64(0x0101010101010101)) >> np.uint64(56)).astype(np.int64)


class StrictNamespace(ArrayNamespace):
    """NumPy wrapped behind the audited set — the CPU enforcement stub.

    Results are *bit-identical* to :class:`NumpyNamespace` (every
    primitive delegates), but any attribute outside the audited surface
    raises :class:`AttributeError`, and every call is tallied in
    :attr:`usage` for the CI audit artifact.  Overhead is one Python
    method call per primitive invocation — the perf-smoke gate holds it
    under 1.3x on the whole-sweep benchmarks.
    """

    name = "strict"
    device = "cpu"
    int64 = np.int64
    bool_ = np.bool_
    float64 = np.float64

    def __init__(self) -> None:
        self._np = NumpyNamespace()
        #: per-primitive call tally since construction (or :meth:`reset_usage`)
        self.usage: Dict[str, int] = {}

    def reset_usage(self) -> None:
        self.usage.clear()

    def _tally(self, primitive: str) -> None:
        self.usage[primitive] = self.usage.get(primitive, 0) + 1

    def __getattr__(self, attr: str) -> Any:
        raise AttributeError(
            f"StrictNamespace rejects {attr!r}: not in the audited primitive "
            f"set of the vectorized sweep ({', '.join(AUDITED_PRIMITIVES)})"
        )

    def asarray(self, a: object, dtype: DType = None) -> Array:
        self._tally("asarray")
        return self._np.asarray(a, dtype=dtype)

    def empty(self, n: int, dtype: DType = None) -> Array:
        self._tally("empty")
        return self._np.empty(n, dtype=dtype)

    def zeros(self, n: int, dtype: DType = None) -> Array:
        self._tally("zeros")
        return self._np.zeros(n, dtype=dtype)

    def ones(self, n: int, dtype: DType = None) -> Array:
        self._tally("ones")
        return self._np.ones(n, dtype=dtype)

    def arange(self, n: int, dtype: DType = None) -> Array:
        self._tally("arange")
        return self._np.arange(n, dtype=dtype)

    def repeat(self, a: Array, repeats: Array) -> Array:
        self._tally("repeat")
        return self._np.repeat(a, repeats)

    def concatenate(self, arrays: Sequence[Array]) -> Array:
        self._tally("concatenate")
        return self._np.concatenate(arrays)

    def diff(self, a: Array) -> Array:
        self._tally("diff")
        return self._np.diff(a)

    def cumsum(self, a: Array) -> Array:
        self._tally("cumsum")
        return self._np.cumsum(a)

    def flatnonzero(self, a: Array) -> Array:
        self._tally("flatnonzero")
        return self._np.flatnonzero(a)

    def searchsorted(self, a: Array, v: Array, side: str = "left") -> Array:
        self._tally("searchsorted")
        return self._np.searchsorted(a, v, side=side)

    def lexsort(self, keys: Sequence[Array]) -> Array:
        self._tally("lexsort")
        return self._np.lexsort(keys)

    def add_reduceat(self, a: Array, starts: Array) -> Array:
        self._tally("add_reduceat")
        return self._np.add_reduceat(a, starts)

    def sum(self, a: Array) -> Array:
        self._tally("sum")
        return self._np.sum(a)

    def min(self, a: Array) -> Array:
        self._tally("min")
        return self._np.min(a)

    def max(self, a: Array) -> Array:
        self._tally("max")
        return self._np.max(a)

    def all(self, a: Array) -> bool:
        self._tally("all")
        return self._np.all(a)

    def astype(self, a: Array, dtype: DType) -> Array:
        self._tally("astype")
        return self._np.astype(a, dtype)

    def popcount(self, a: Array) -> Array:
        self._tally("popcount")
        return self._np.popcount(a)


# ----------------------------------------------------------------------
# optional CUDA namespaces (constructed only when usable)
# ----------------------------------------------------------------------

class CupyNamespace(ArrayNamespace):
    """CuPy on a CUDA device.  Mirrors the NumPy API almost exactly.

    ``add.reduceat`` is not implemented in CuPy, so segment sums use the
    cumsum fallback; everything else is direct delegation.  Host inputs
    (CSR arrays, colorings, label masks) transfer to the device through
    ``asarray`` at solver construction; only Python scalars come back.
    """

    name = "cupy"
    device = "cuda"

    def __init__(self, cp: Any) -> None:
        self._cp = cp
        self.int64 = cp.int64
        self.bool_ = cp.bool_
        self.float64 = cp.float64

    def asarray(self, a: object, dtype: DType = None) -> Array:
        return self._cp.asarray(a, dtype=dtype)

    def empty(self, n: int, dtype: DType = None) -> Array:
        return self._cp.empty(n, dtype=dtype)

    def zeros(self, n: int, dtype: DType = None) -> Array:
        return self._cp.zeros(n, dtype=dtype)

    def ones(self, n: int, dtype: DType = None) -> Array:
        return self._cp.ones(n, dtype=dtype)

    def arange(self, n: int, dtype: DType = None) -> Array:
        return self._cp.arange(n, dtype=dtype)

    def repeat(self, a: Array, repeats: Array) -> Array:
        return self._cp.repeat(a, repeats)

    def concatenate(self, arrays: Sequence[Array]) -> Array:
        return self._cp.concatenate(arrays)

    def diff(self, a: Array) -> Array:
        return self._cp.diff(a)

    def cumsum(self, a: Array) -> Array:
        return self._cp.cumsum(a)

    def flatnonzero(self, a: Array) -> Array:
        return self._cp.flatnonzero(a)

    def searchsorted(self, a: Array, v: Array, side: str = "left") -> Array:
        return self._cp.searchsorted(a, v, side=side)

    def lexsort(self, keys: Sequence[Array]) -> Array:
        return self._cp.lexsort(self._cp.stack(tuple(keys)))

    def add_reduceat(self, a: Array, starts: Array) -> Array:
        return add_reduceat_fallback(a, starts, self._cp.cumsum)

    def sum(self, a: Array) -> Array:
        return self._cp.sum(a)

    def min(self, a: Array) -> Array:
        return self._cp.min(a)

    def max(self, a: Array) -> Array:
        return self._cp.max(a)

    def all(self, a: Array) -> bool:
        return bool(self._cp.all(a))

    def astype(self, a: Array, dtype: DType) -> Array:
        return a.astype(dtype)

    def popcount(self, a: Array) -> Array:
        cp = self._cp
        x = a.astype(cp.uint64)
        m1 = cp.uint64(0x5555555555555555)
        m2 = cp.uint64(0x3333333333333333)
        m4 = cp.uint64(0x0F0F0F0F0F0F0F0F)
        x = x - ((x >> cp.uint64(1)) & m1)
        x = (x & m2) + ((x >> cp.uint64(2)) & m2)
        x = (x + (x >> cp.uint64(4))) & m4
        return ((x * cp.uint64(0x0101010101010101)) >> cp.uint64(56)).astype(cp.int64)


class TorchNamespace(ArrayNamespace):
    """torch on a CUDA device.

    int64-on-GPU caveats: torch has no uint64, so ``popcount`` is the
    shift-and-mask loop (63 elementwise ops — it only runs on the root
    table's signature check); ``lexsort`` and ``add_reduceat`` use the
    shared fallbacks over stable ``argsort``/``cumsum``.  All signature
    arithmetic stays in non-negative int64 (``<= 62`` color bits), so
    two's-complement wrap never enters the sweep.
    """

    name = "torch"
    device = "cuda"

    def __init__(self, torch: Any) -> None:
        self._torch = torch
        self._device = torch.device("cuda")
        self.int64 = torch.int64
        self.bool_ = torch.bool
        self.float64 = torch.float64

    def asarray(self, a: object, dtype: DType = None) -> Array:
        return self._torch.as_tensor(a, dtype=dtype, device=self._device)

    def empty(self, n: int, dtype: DType = None) -> Array:
        return self._torch.empty(n, dtype=dtype, device=self._device)

    def zeros(self, n: int, dtype: DType = None) -> Array:
        return self._torch.zeros(n, dtype=dtype, device=self._device)

    def ones(self, n: int, dtype: DType = None) -> Array:
        return self._torch.ones(n, dtype=dtype, device=self._device)

    def arange(self, n: int, dtype: DType = None) -> Array:
        return self._torch.arange(n, dtype=dtype, device=self._device)

    def repeat(self, a: Array, repeats: Array) -> Array:
        return self._torch.repeat_interleave(a, repeats)

    def concatenate(self, arrays: Sequence[Array]) -> Array:
        return self._torch.cat(tuple(arrays))

    def diff(self, a: Array) -> Array:
        return self._torch.diff(a)

    def cumsum(self, a: Array) -> Array:
        return self._torch.cumsum(a, dim=0)

    def flatnonzero(self, a: Array) -> Array:
        return self._torch.nonzero(a, as_tuple=False).flatten()

    def searchsorted(self, a: Array, v: Array, side: str = "left") -> Array:
        return self._torch.searchsorted(a, v, right=(side == "right"))

    def lexsort(self, keys: Sequence[Array]) -> Array:
        return lexsort_fallback(
            tuple(keys), lambda k: self._torch.argsort(k, stable=True)
        )

    def add_reduceat(self, a: Array, starts: Array) -> Array:
        return add_reduceat_fallback(a, starts, self.cumsum)

    def sum(self, a: Array) -> Array:
        return self._torch.sum(a)

    def min(self, a: Array) -> Array:
        return self._torch.min(a)

    def max(self, a: Array) -> Array:
        return self._torch.max(a)

    def all(self, a: Array) -> bool:
        return bool(self._torch.all(a))

    def astype(self, a: Array, dtype: DType) -> Array:
        return a.to(dtype)

    def popcount(self, a: Array) -> Array:
        out = self._torch.zeros_like(a)
        for shift in range(63):  # sigs are non-negative (<= 62 color bits)
            out = out + ((a >> shift) & 1)
        return out


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------

_NUMPY = NumpyNamespace()
_STRICT = StrictNamespace()
#: resolved GPU handles, keyed by spec — constructed once per process
_GPU_CACHE: Dict[str, ArrayNamespace] = {}


def _cupy_namespace() -> ArrayNamespace:
    if "cupy" in _GPU_CACHE:
        return _GPU_CACHE["cupy"]
    try:
        import cupy  # noqa: F401  # pragma: no cover - exercised only with cupy
    except ImportError as exc:
        raise BackendUnavailable(
            "namespace 'cupy' requested but cupy is not installed"
        ) from exc
    try:  # pragma: no cover - exercised only with cupy
        ndev = int(cupy.cuda.runtime.getDeviceCount())
    except Exception as exc:  # pragma: no cover - driver errors
        raise BackendUnavailable(f"cupy cannot see a CUDA runtime: {exc}") from exc
    if ndev < 1:  # pragma: no cover
        raise BackendUnavailable("namespace 'cupy' requested but no CUDA device is visible")
    _GPU_CACHE["cupy"] = CupyNamespace(cupy)  # pragma: no cover
    return _GPU_CACHE["cupy"]  # pragma: no cover


def _torch_namespace() -> ArrayNamespace:
    if "torch" in _GPU_CACHE:
        return _GPU_CACHE["torch"]
    try:
        import torch  # noqa: F401  # pragma: no cover - exercised only with torch
    except ImportError as exc:
        raise BackendUnavailable(
            "namespace 'torch' requested but torch is not installed"
        ) from exc
    if not torch.cuda.is_available():  # pragma: no cover - exercised only with torch
        raise BackendUnavailable("namespace 'torch' requested but no CUDA device is visible")
    _GPU_CACHE["torch"] = TorchNamespace(torch)  # pragma: no cover
    return _GPU_CACHE["torch"]  # pragma: no cover


def resolve_namespace(spec: Optional[str] = None) -> ArrayNamespace:
    """Map a spec string to an :class:`ArrayNamespace` handle.

    ``"numpy"`` and ``"strict"`` always succeed; ``"cupy"``/``"torch"``
    raise :class:`BackendUnavailable` when the package or a CUDA device
    is missing; ``"auto"`` tries CuPy then torch and degrades cleanly to
    NumPy.  ``None`` means the process default (the
    ``REPRO_ARRAY_NAMESPACE`` environment variable, or NumPy).
    """
    if spec is None:
        return default_namespace()
    spec = spec.lower()
    if spec == "numpy":
        return _NUMPY
    if spec == "strict":
        return _STRICT
    if spec == "cupy":
        return _cupy_namespace()
    if spec == "torch":
        return _torch_namespace()
    if spec == "auto":
        for factory in (_cupy_namespace, _torch_namespace):
            try:
                return factory()
            except BackendUnavailable:
                continue
        return _NUMPY
    raise ValueError(
        f"unknown array namespace {spec!r}; choose from {', '.join(KNOWN_NAMESPACES)}"
    )


def gpu_namespace(spec: Optional[str] = None) -> ArrayNamespace:
    """A CUDA namespace, or :class:`BackendUnavailable` — never a CPU one.

    The ``ps-gpu`` backend resolves through this: ``None``/``"auto"``
    prefers CuPy then torch; an explicit CPU spec is a contradiction and
    raises :class:`ValueError`.
    """
    if spec is None or spec == "auto":
        errors = []
        for factory in (_cupy_namespace, _torch_namespace):
            try:
                return factory()
            except BackendUnavailable as exc:
                errors.append(str(exc))
        raise BackendUnavailable(
            "ps-gpu needs a CUDA array namespace: " + "; ".join(errors)
        )
    ns = resolve_namespace(spec)
    if ns.device != "cuda":
        raise ValueError(
            f"method 'ps-gpu' requires a CUDA namespace, but namespace={spec!r} "
            "is CPU-bound; drop --namespace or pass cupy/torch"
        )
    return ns


def default_namespace() -> ArrayNamespace:
    """The process-wide default: ``REPRO_ARRAY_NAMESPACE`` or NumPy.

    An explicit env value resolves strictly (a typo or an unavailable
    GPU namespace raises rather than silently falling back); set it to
    ``auto`` for opportunistic GPU use with a clean NumPy fallback.
    """
    return resolve_namespace(os.environ.get(NAMESPACE_ENV_VAR, "") or "numpy")


def cpu_namespace() -> ArrayNamespace:
    """The default namespace coerced onto the host.

    The ``ps-dist`` executor's shared-memory CSR segments and pipe
    protocol are host-RAM by construction, so its workers and shard
    combiner run here: ``strict`` passes through (the seam audit still
    applies), any CUDA default coerces to plain NumPy.
    """
    ns = default_namespace()
    return ns if ns.device == "cpu" else _NUMPY


def as_namespace(xp: NamespaceLike) -> ArrayNamespace:
    """Normalize a namespace argument: handle, spec string, or None.

    Non-string, non-None values are returned as-is (duck-typed handle):
    ``python -m repro.counting.xp`` imports this module under two names,
    so an ``isinstance`` check against :class:`ArrayNamespace` would
    wrongly reject the twin module's instances.
    """
    if xp is None:
        return default_namespace()
    if isinstance(xp, str):
        return resolve_namespace(xp)
    return xp


# ----------------------------------------------------------------------
# CLI audit (the backend-matrix CI artifact)
# ----------------------------------------------------------------------

def _availability() -> Dict[str, Dict[str, object]]:
    out: Dict[str, Dict[str, object]] = {}
    for spec in ("numpy", "strict", "cupy", "torch"):
        try:
            ns = resolve_namespace(spec)
            out[spec] = {"available": True, "device": ns.device}
        except (BackendUnavailable, ValueError) as exc:
            out[spec] = {"available": False, "reason": str(exc)}
    return out


def _demo_usage() -> Dict[str, object]:
    """Solve a demo (graph, query) under the strict stub; report the tally."""
    from ..decomposition.planner import heuristic_plan
    from ..graph.generators import erdos_renyi
    from ..query.library import paper_query
    from .vectorized import solve_plan_vectorized

    strict = StrictNamespace()
    rng = np.random.default_rng(0)
    g = erdos_renyi(400, 0.02, rng, name="xp-audit")
    query = paper_query("youtube")
    colors = np.random.default_rng(1).integers(0, query.k, size=g.n)
    count = solve_plan_vectorized(heuristic_plan(query), g, colors, xp=strict)
    reference = solve_plan_vectorized(heuristic_plan(query), g, colors, xp=_NUMPY)
    unused = sorted(set(AUDITED_PRIMITIVES) - set(strict.usage))
    return {
        "graph": g.name,
        "query": query.name,
        "count": count,
        "matches_numpy": count == reference,
        "primitive_calls": dict(sorted(strict.usage.items())),
        "audited_but_unused": unused,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Print the JSON namespace audit (availability + strict-run tally)."""
    import json

    doc = {
        "schema": "repro-xp-audit/1",
        "env": {NAMESPACE_ENV_VAR: os.environ.get(NAMESPACE_ENV_VAR, "")},
        "audited_primitives": list(AUDITED_PRIMITIVES),
        "namespaces": _availability(),
        "strict_demo": _demo_usage(),
    }
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI lane
    raise SystemExit(main())
