"""DB — the Degree Based algorithm (paper Section 5, Figures 6/7).

A thin façade over :mod:`repro.counting.solver` with ``method="db"``.
DB is the paper's contribution: cycle matches are partitioned by the
position of their highest vertex in the (degree, id) total order; each
partition is computed by two high-starting path sweeps from the highest
node to its diagonal opposite, pruning every extension below the start.
This works around high-degree vertices and balances load.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .solver import solve_plan

__all__ = ["count_colorful_db"]


def count_colorful_db(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    plan: Optional[Plan] = None,
    ctx: Optional[ExecutionContext] = None,
) -> int:
    """Colorful matches of ``query`` in ``g`` under ``colors`` via DB."""
    plan = plan or heuristic_plan(query)
    return solve_plan(plan, g, np.asarray(colors), ctx=ctx, method="db")
