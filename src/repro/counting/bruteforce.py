"""Reference counters by exhaustive backtracking (validation only).

These are the ground truth for the test suite: tiny-instance exact counts
of matches (injective edge-preserving mappings, Section 2) and of colorful
matches under a fixed coloring.  Exponential — use only on small inputs.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

import numpy as np

from ..graph.graph import Graph
from ..query.query import QueryGraph

__all__ = ["count_matches", "count_colorful_matches"]


def _search_order(q: QueryGraph) -> List[Hashable]:
    """Query nodes ordered so each (after the first) touches a prior node.

    Connectivity-aware ordering lets the backtracking prune through edge
    constraints immediately.  Falls back to plain order for disconnected
    queries.
    """
    nodes = q.nodes()
    if not nodes:
        return []
    order = [max(nodes, key=q.degree)]
    placed = {order[0]}
    while len(order) < len(nodes):
        frontier = [
            v
            for v in nodes
            if v not in placed and any(u in placed for u in q.adj[v])
        ]
        if not frontier:
            rest = [v for v in nodes if v not in placed]
            frontier = [rest[0]]
        nxt = max(frontier, key=lambda v: sum(u in placed for u in q.adj[v]))
        order.append(nxt)
        placed.add(nxt)
    return order


def _count(
    g: Graph,
    q: QueryGraph,
    colors: Optional[np.ndarray],
) -> int:
    order = _search_order(q)
    k = len(order)
    pos = {v: i for i, v in enumerate(order)}
    # For each query node, the earlier-placed neighbours it must attach to.
    back_edges: List[List[int]] = [
        sorted(pos[u] for u in q.adj[v] if pos[u] < i) for i, v in enumerate(order)
    ]
    # Labeled matching: step i may only map to vertices labeled want[i].
    want: Optional[List[int]] = None
    if q.labels is not None:
        if g.labels is None:
            raise ValueError(
                "labeled query requires a labeled data graph (Graph(labels=...))"
            )
        want = [q.labels[v] for v in order]
    glabels = g.labels
    assignment: List[int] = [0] * k
    used_vertices = set()
    used_colors = set()
    total = 0

    def backtrack(i: int) -> None:
        nonlocal total
        if i == k:
            total += 1
            return
        anchors = back_edges[i]
        if anchors:
            # candidates: neighbours of the first anchor (smallest set wins
            # would be better; first is fine at validation scale)
            candidates = g.neighbors(assignment[anchors[0]])
        else:
            candidates = range(g.n)
        for cand in candidates:
            cand = int(cand)
            if cand in used_vertices:
                continue
            if want is not None and int(glabels[cand]) != want[i]:
                continue
            if colors is not None and int(colors[cand]) in used_colors:
                continue
            ok = True
            for a in anchors:
                if not g.has_edge(assignment[a], cand):
                    ok = False
                    break
            if ok:
                assignment[i] = cand
                used_vertices.add(cand)
                if colors is not None:
                    used_colors.add(int(colors[cand]))
                backtrack(i + 1)
                used_vertices.discard(cand)
                if colors is not None:
                    used_colors.discard(int(colors[cand]))

    backtrack(0)
    return total


def count_matches(g: Graph, q: QueryGraph) -> int:
    """Exact number of matches (injective mappings preserving edges).

    Labeled queries additionally require matching vertex labels — this is
    the ground-truth oracle for labeled counting across every backend.
    """
    return _count(g, q, None)


def count_colorful_matches(g: Graph, q: QueryGraph, colors: Sequence[int]) -> int:
    """Exact number of colorful (label-compatible) matches under a coloring."""
    colors_arr = np.asarray(colors, dtype=np.int64)
    if len(colors_arr) != g.n:
        raise ValueError("coloring must cover every data vertex")
    return _count(g, q, colors_arr)
