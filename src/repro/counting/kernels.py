"""Join kernels shared by the PS and DB algorithms (paper Section 5).

Both algorithms reduce every block to the same three primitives:

* **path building** — start from an edge table (graph edges ``BG`` or a
  child block's projection table) and repeatedly apply ``EdgeJoin`` /
  ``NodeJoin`` (Figure 7) to sweep along a cycle segment;
* **cycle merge** — join the two path tables of a cycle on their shared
  endpoints (Procedure 2 of Figures 4/6);
* **leaf collapse** — fold the annotations of a leaf edge and project to
  the boundary node.

The **DB** algorithm passes ``high=True``: every vertex added to a path
must be strictly lower (in the ``(degree, id)`` total order) than the
path's start vertex — the paper's "high-starting matches" pruning — and
cycle-boundary nodes that land strictly inside a path are carried in the
``extras`` key fields (Configurations A/B of Section 5.1).

Signature discipline: a partial colorful match is keyed by the exact set
of colors it uses; two partial matches join iff their signatures intersect
exactly in the colors of their shared vertices (``sig_disjoint_except``).
Because matches are colorful, distinct colors imply distinct vertices, so
no explicit vertex-disjointness checks are needed — the crucial trick that
makes color coding cheap.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..tables.projection import BinaryTable, PathTable, UnaryTable

__all__ = [
    "build_path_table",
    "merge_cycle_paths",
    "oriented_binary",
    "node_join_unary",
]

Node = Hashable


# ----------------------------------------------------------------------
# orientation helpers
# ----------------------------------------------------------------------

def oriented_binary(
    table: BinaryTable,
    want_first: Node,
    want_second: Node,
    transpose_cache: Dict[int, BinaryTable],
) -> BinaryTable:
    """Return ``table`` oriented so its boundary is ``(want_first, want_second)``.

    The paper (Section 5.2): "the boundary tables are transpose of each
    other (cnt(u, v, α) = cnt(v, u, α)). Our algorithm maintains both the
    tables and uses the appropriate one."  We materialise the transpose
    lazily and cache it per source table.
    """
    if table.boundary == (want_first, want_second):
        return table
    if table.boundary == (want_second, want_first):
        key = id(table)
        if key not in transpose_cache:
            transpose_cache[key] = table.transpose()
        return transpose_cache[key]
    raise ValueError(
        f"table boundary {table.boundary!r} does not match edge "
        f"({want_first!r}, {want_second!r})"
    )


# ----------------------------------------------------------------------
# NodeJoin (Figure 7)
# ----------------------------------------------------------------------

def node_join_unary(
    table: PathTable,
    child: UnaryTable,
    colors: np.ndarray,
    on_start: bool,
    ctx: ExecutionContext,
) -> PathTable:
    """Join a path table with the unary table of a block annotating one of
    the path's nodes.  ``on_start`` selects whether the annotated node is
    the path's start (key vertex ``u``) or its current end (``v``)."""
    out = PathTable(table.record_labels)
    index = child.by_vertex()
    add = out.add
    for (u, v, extras, sig), cnt in table.items():
        x = u if on_start else v
        lst = index.get(x)
        if not lst:
            continue
        ctx.op(v, len(lst))
        xbit = 1 << int(colors[x])
        for sig2, cnt2 in lst:
            if sig & sig2 == xbit:
                add(u, v, extras, sig | sig2, cnt * cnt2)
    return out


# ----------------------------------------------------------------------
# path building (Procedure 1 of Figures 4/6 + Figure 7)
# ----------------------------------------------------------------------

def build_path_table(
    g: Graph,
    colors: np.ndarray,
    path_labels: Sequence[Node],
    node_tables: Dict[Node, UnaryTable],
    edge_tables: Dict[int, BinaryTable],
    ctx: ExecutionContext,
    *,
    high: bool = False,
    record_set: Optional[Set[Node]] = None,
    stage_prefix: str = "path",
    vertex_ok: Optional[Dict[Node, np.ndarray]] = None,
) -> PathTable:
    """Sweep a cycle segment, building its projection table.

    Parameters
    ----------
    path_labels:
        Query node labels along the segment, ``(s, ..., e)``, length ≥ 2.
    node_tables:
        ``label -> UnaryTable`` for exactly the node annotations this path
        is responsible for (the caller enforces the paper's convention on
        which path absorbs the annotations of the shared endpoints).
    edge_tables:
        ``step j -> BinaryTable`` for annotated edges; the table must be
        oriented with first boundary ``path_labels[j]`` (use
        :func:`oriented_binary`).  Steps without an entry use the data
        graph's edges (the implicit ``BG`` block of Section 5.2).
    high:
        DB mode — every vertex after the start must be strictly lower than
        the start in the degree order.
    record_set:
        Labels strictly inside the path whose images must be carried in
        the ``extras`` fields (cycle boundary nodes, DB mode).
    vertex_ok:
        ``query node -> boolean mask`` over data vertices (labeled
        counting, :func:`repro.counting.labels.label_masks`).  Applied
        only where candidates come from the data graph itself — child
        tables are already filtered.
    """
    if len(path_labels) < 2:
        raise ValueError("paths need at least one edge")
    record_set = record_set or set()
    rec_order = tuple(lab for lab in path_labels[1:-1] if lab in record_set)
    rank = g.degree_order_rank() if high else None
    colors_i = colors
    vertex_ok = vertex_ok or {}

    table = PathTable(rec_order)
    s_label = path_labels[0]

    # --- initial edge (s -> path_labels[1]) ---------------------------
    ctx.begin_stage(f"{stage_prefix}:init")
    first_recorded = path_labels[1] in record_set
    child0 = edge_tables.get(0)
    if child0 is None:
        _init_from_graph(
            g, colors_i, table, high, rank, first_recorded, ctx,
            ok_u=vertex_ok.get(s_label), ok_v=vertex_ok.get(path_labels[1]),
        )
    else:
        _init_from_child(child0, table, high, rank, first_recorded, ctx)

    # annotation on the start node joins on u (only if the caller gave it)
    if s_label in node_tables:
        ctx.begin_stage(f"{stage_prefix}:nj-start")
        table = node_join_unary(table, node_tables[s_label], colors_i, True, ctx)
    if path_labels[1] in node_tables:
        ctx.begin_stage(f"{stage_prefix}:nj1")
        table = node_join_unary(table, node_tables[path_labels[1]], colors_i, False, ctx)

    # --- subsequent edges ---------------------------------------------
    for j in range(1, len(path_labels) - 1):
        nxt_label = path_labels[j + 1]
        recorded = nxt_label in record_set
        child = edge_tables.get(j)
        ctx.begin_stage(f"{stage_prefix}:ext{j}")
        if child is None:
            table = _extend_with_graph(
                g, colors_i, table, high, rank, recorded, ctx,
                ok_w=vertex_ok.get(nxt_label),
            )
        else:
            table = _extend_with_child(child, colors_i, table, high, rank, recorded, ctx)
        if nxt_label in node_tables:
            ctx.begin_stage(f"{stage_prefix}:nj{j + 1}")
            table = node_join_unary(table, node_tables[nxt_label], colors_i, False, ctx)
    return table


def _init_from_graph(
    g: Graph,
    colors: np.ndarray,
    table: PathTable,
    high: bool,
    rank: Optional[np.ndarray],
    record_first: bool,
    ctx: ExecutionContext,
    ok_u: Optional[np.ndarray] = None,
    ok_v: Optional[np.ndarray] = None,
) -> None:
    """Seed from the data graph's edges: cnt(u, v, {χu, χv}) = 1.

    ``ok_u``/``ok_v`` are the label-compatibility masks of the path's
    first two query nodes — incompatible vertices never enter the table.
    """
    add = table.add
    for u in range(g.n):
        if ok_u is not None and not ok_u[u]:
            continue
        nbrs = g.neighbors(u)
        if len(nbrs) == 0:
            continue
        mask = colors[nbrs] != colors[u]
        if high:
            mask &= rank[nbrs] < rank[u]
        if ok_v is not None:
            mask &= ok_v[nbrs]
        cand = nbrs[mask]
        ctx.op(u, len(nbrs))
        if len(cand) == 0:
            continue
        ubit = 1 << int(colors[u])
        for v in cand:
            v = int(v)
            extras = (v,) if record_first else ()
            add(u, v, extras, ubit | (1 << int(colors[v])), 1)
            ctx.emit(u, v)


def _init_from_child(
    child: BinaryTable,
    table: PathTable,
    high: bool,
    rank: Optional[np.ndarray],
    record_first: bool,
    ctx: ExecutionContext,
) -> None:
    """Seed from an annotated edge's child projection table."""
    add = table.add
    for (u, v, sig), cnt in child.items():
        if high and rank[v] >= rank[u]:
            continue
        ctx.op(v)
        extras = (v,) if record_first else ()
        add(u, v, extras, sig, cnt)


def _extend_with_graph(
    g: Graph,
    colors: np.ndarray,
    table: PathTable,
    high: bool,
    rank: Optional[np.ndarray],
    record: bool,
    ctx: ExecutionContext,
    ok_w: Optional[np.ndarray] = None,
) -> PathTable:
    """EdgeJoin with the data graph (Procedure 1 inner loop).

    ``ok_w`` is the label-compatibility mask of the query node the new
    vertex maps to (labeled counting).
    """
    out = PathTable(table.record_labels)
    add = out.add
    for (u, v, extras, sig), cnt in table.items():
        nbrs = g.neighbors(v)
        if len(nbrs) == 0:
            continue
        ctx.op(v, len(nbrs))
        # colorful: the new vertex's color must be unused by this match
        mask = ((sig >> colors[nbrs]) & 1) == 0
        if high:
            mask &= rank[nbrs] < rank[u]
        if ok_w is not None:
            mask &= ok_w[nbrs]
        cand = nbrs[mask]
        for w in cand:
            w = int(w)
            new_extras = extras + (w,) if record else extras
            add(u, w, new_extras, sig | (1 << int(colors[w])), cnt)
            ctx.emit(v, w)


    return out


def _extend_with_child(
    child: BinaryTable,
    colors: np.ndarray,
    table: PathTable,
    high: bool,
    rank: Optional[np.ndarray],
    record: bool,
    ctx: ExecutionContext,
) -> PathTable:
    """EdgeJoin with an annotated edge's projection table (Figure 7)."""
    out = PathTable(table.record_labels)
    add = out.add
    index = child.by_first()
    for (u, v, extras, sig), cnt in table.items():
        lst = index.get(v)
        if not lst:
            continue
        ctx.op(v, len(lst))
        vbit = 1 << int(colors[v])
        for w, sig2, cnt2 in lst:
            if high and rank[w] >= rank[u]:
                continue
            if sig & sig2 == vbit:
                new_extras = extras + (w,) if record else extras
                add(u, w, new_extras, sig | sig2, cnt * cnt2)
                ctx.emit(v, w)
    return out


# ----------------------------------------------------------------------
# cycle merge (Procedure 2 of Figures 4/6)
# ----------------------------------------------------------------------

def merge_cycle_paths(
    tplus: PathTable,
    tminus: PathTable,
    colors: np.ndarray,
    emit_entry: Callable[[Tuple[int, ...], int, int], None],
    boundary_labels: Sequence[Node],
    s_label: Node,
    e_label: Node,
    ctx: ExecutionContext,
    stage_name: str = "merge",
) -> None:
    """Join the clockwise and counter-clockwise path tables of a cycle.

    Two entries combine iff they share exactly the endpoint vertices'
    colors.  For every combination, ``emit_entry(boundary_images, sig,
    count)`` is called with the images of ``boundary_labels`` (resolved
    from the endpoints or either path's extras) in the given order.
    """
    ctx.begin_stage(stage_name)
    # Resolution plan: for each boundary label, where does its image live?
    plan: List[Tuple[str, int]] = []
    for b in boundary_labels:
        if b == s_label:
            plan.append(("s", 0))
        elif b == e_label:
            plan.append(("e", 0))
        elif b in tplus.record_labels:
            plan.append(("+", tplus.record_labels.index(b)))
        elif b in tminus.record_labels:
            plan.append(("-", tminus.record_labels.index(b)))
        else:  # pragma: no cover - defended by construction
            raise AssertionError(f"boundary label {b!r} not locatable in merge")

    index = tminus.by_endpoints()
    for (u, v, extras1, sig1), cnt1 in tplus.items():
        lst = index.get((u, v))
        if not lst:
            continue
        ctx.op(v, len(lst))
        need = (1 << int(colors[u])) | (1 << int(colors[v]))
        for extras2, sig2, cnt2 in lst:
            if sig1 & sig2 == need:
                images = tuple(
                    u if kind == "s" else v if kind == "e" else extras1[i] if kind == "+" else extras2[i]
                    for kind, i in plan
                )
                emit_entry(images, sig1 | sig2, cnt1 * cnt2)
