"""Vectorized PS kernels — the ``ps-vec`` backend (array-API, CSR-batched).

The reference kernels in :mod:`repro.counting.kernels` walk one partial
match at a time: a Python loop pops a ``(u, v, sig) -> count`` dict entry,
slices the CSR row of ``v``, and pushes extensions back into another dict.
On the stand-in graphs the interpreter dispatch around those dicts costs
an order of magnitude more than the arithmetic.  This module re-expresses
the same dynamic program as whole-table array operations:

* a path table is four parallel ``int64`` arrays ``(u, v, sig, cnt)``,
  kept lexicographically sorted by ``(u, v, sig)``;
* **EdgeJoin with the data graph** gathers every entry's full CSR
  neighbour slice in one shot (``repeat`` over degrees + one fancy
  index into ``indices``), masks out colour collisions, and re-aggregates
  duplicates with a ``lexsort`` + ``add_reduceat`` segment sum;
* **EdgeJoin/NodeJoin with child tables** and the **cycle merge** are
  sort-merge joins: the child table is already sorted, so per-entry match
  ranges come from two ``searchsorted`` calls and the cross product is
  materialised with the same repeat/gather pattern;
* **leaf projection** and output-table accumulation are the same segment
  sum (this is where ``add.at`` semantics appear — we use the
  sorted-``reduceat`` form because it is deterministic and faster).

Every array operation goes through an :class:`~repro.counting.xp.ArrayNamespace`
handle (the audited seam in :mod:`repro.counting.xp`) — NumPy by
default, the strict CPU stub under ``REPRO_ARRAY_NAMESPACE=strict``, and
CuPy/torch on a CUDA device.  This module deliberately does **not**
import NumPy: a new kernel either speaks the audited primitive set or
fails the strict CI lane.

Counts use ``int64`` accumulators (the dict kernels use Python bignums).
Guards raise ``OverflowError`` before results can wrap: per-entry counts
entering a product join must stay below ``2^31`` (so products fit in 62
bits), and every aggregation/total is preceded by a float64 whole-table
sum check against ``2^62``.  Within those bounds the results are
**bit-identical** to ``method="ps"`` on the same plan and coloring —
asserted across the whole query library by the parity tests, and across
namespaces by the differential matrix.

Only the PS splitting strategy is vectorized: PS never records interior
boundary nodes, so its tables stay rectangular ``(u, v, sig)`` arrays.
The DB pruning variant keys entries by variable-length ``extras`` tuples
and stays on the dict kernels.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .. import obs
from ..decomposition.blocks import CYCLE, LEAF, SINGLETON, Block
from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .labels import label_masks
# the cycle-walk order must stay in lockstep with the dict solver for the
# ps/ps-vec bit-identical invariant to hold — share one implementation
from .solver import _ccw_labels, _cw_labels
from .xp import Array, ArrayNamespace, NamespaceLike, as_namespace, cpu_namespace

__all__ = [
    "VecUnaryTable",
    "VecBinaryTable",
    "VecPathTable",
    "VectorizedSolver",
    "solve_plan_vectorized",
    "solve_block_shard",
    "count_colorful_ps_vec",
    "MAX_COLORS_VEC",
]

Node = Hashable

#: signatures are bit sets inside one int64 ⇒ at most 62 colors
MAX_COLORS_VEC = 62

#: any table whose total count stays below this cannot wrap an int64
#: segment sum; measured in float64 so the check itself cannot overflow
_SUM_LIMIT = float(2**62)


def _popcount(a: Array, xp: Optional[ArrayNamespace] = None) -> Array:
    """Per-element population count of an int64 array."""
    xp = xp if xp is not None else cpu_namespace()
    return xp.popcount(a)


def _group_sum(
    cols: Sequence[Array], cnt: Array, xp: Optional[ArrayNamespace] = None
) -> Tuple[List[Array], Array]:
    """Aggregate duplicate keys: lexsort by ``cols`` then segment-sum ``cnt``.

    Returns the unique key columns (sorted ascending, first column most
    significant) and the per-key count sums — the array analogue of the
    dict kernels' ``table.add`` accumulation.
    """
    xp = xp if xp is not None else cpu_namespace()
    if len(cnt) == 0:
        return [c[:0] for c in cols], cnt[:0]
    # conservative overflow check: the whole-table float64 total bounds
    # every segment sum, so staying under 2^62 rules out int64 wrap
    if float(xp.sum(xp.astype(cnt, xp.float64))) > _SUM_LIMIT:
        raise OverflowError(
            "ps-vec table aggregation would exceed int64; rerun with the "
            "arbitrary-precision 'ps' backend"
        )
    order = xp.lexsort(tuple(reversed(cols)))
    cols = [c[order] for c in cols]
    cnt = cnt[order]
    boundary = xp.zeros(len(cnt), dtype=xp.bool_)
    boundary[0] = True
    for c in cols:
        boundary[1:] |= c[1:] != c[:-1]
    starts = xp.flatnonzero(boundary)
    return [c[starts] for c in cols], xp.add_reduceat(cnt, starts)


def _expand(
    starts: Array, lens: Array, xp: Optional[ArrayNamespace] = None
) -> Tuple[Array, Array]:
    """Flatten per-entry ranges ``[starts, starts+lens)`` into gather indices.

    Returns ``(rep, pos)``: ``rep[i]`` is the source entry of flat slot
    ``i`` and ``pos[i]`` the absolute position inside the indexed array.
    """
    xp = xp if xp is not None else cpu_namespace()
    total = int(xp.sum(lens)) if len(lens) else 0
    if total == 0:
        empty = xp.empty(0, dtype=xp.int64)
        return empty, empty
    rep = xp.repeat(xp.arange(len(lens), dtype=xp.int64), lens)
    offsets = xp.cumsum(lens) - lens
    pos = xp.arange(total, dtype=xp.int64) - offsets[rep] + starts[rep]
    return rep, pos


def _check_counts(cnt: Array, xp: Optional[ArrayNamespace] = None) -> None:
    """Refuse int64 ranges where a pairwise product could overflow.

    Counts are non-negative by construction (tables seed at 1 and only
    sum/multiply under these guards), so the max bounds the magnitude.
    """
    xp = xp if xp is not None else cpu_namespace()
    if len(cnt) and int(xp.max(cnt)) >= 1 << 31:
        raise OverflowError(
            "ps-vec count tables exceeded 2^31 per entry; rerun with the "
            "arbitrary-precision 'ps' backend"
        )


def _checked_total(cnt: Array, xp: Optional[ArrayNamespace] = None) -> int:
    """Sum counts, refusing totals that could wrap an int64 accumulator."""
    xp = xp if xp is not None else cpu_namespace()
    if len(cnt) and float(xp.sum(xp.astype(cnt, xp.float64))) > _SUM_LIMIT:
        raise OverflowError(
            "ps-vec total count would exceed int64; rerun with the "
            "arbitrary-precision 'ps' backend"
        )
    return int(xp.sum(cnt)) if len(cnt) else 0


class VecUnaryTable:
    """Array form of :class:`repro.tables.projection.UnaryTable`.

    ``cnt[i]`` colorful matches project to boundary image ``u[i]`` with
    signature ``sig[i]``; rows are unique and sorted by ``(u, sig)``.
    """

    __slots__ = ("boundary", "u", "sig", "cnt", "xp")

    def __init__(
        self,
        boundary: Node,
        u: Array,
        sig: Array,
        cnt: Array,
        xp: Optional[ArrayNamespace] = None,
    ) -> None:
        self.boundary = boundary
        self.u, self.sig, self.cnt = u, sig, cnt
        self.xp = xp if xp is not None else cpu_namespace()

    def total(self) -> int:
        return _checked_total(self.cnt, self.xp)

    def __len__(self) -> int:
        return len(self.cnt)


class VecBinaryTable:
    """Array form of :class:`repro.tables.projection.BinaryTable`.

    Rows are unique and sorted by ``(u, v, sig)`` so joins on ``u`` (or on
    the ``(u, v)`` pair) reduce to ``searchsorted`` range lookups.
    """

    __slots__ = ("boundary", "u", "v", "sig", "cnt", "xp")

    def __init__(
        self,
        boundary: Tuple[Node, Node],
        u: Array,
        v: Array,
        sig: Array,
        cnt: Array,
        xp: Optional[ArrayNamespace] = None,
    ) -> None:
        self.boundary = boundary
        self.u, self.v, self.sig, self.cnt = u, v, sig, cnt
        self.xp = xp if xp is not None else cpu_namespace()

    def transpose(self) -> "VecBinaryTable":
        (u, v, sig), cnt = _group_sum((self.v, self.u, self.sig), self.cnt, self.xp)
        return VecBinaryTable(
            (self.boundary[1], self.boundary[0]), u, v, sig, cnt, self.xp
        )

    def total(self) -> int:
        return int(self.xp.sum(self.cnt)) if len(self.cnt) else 0

    def __len__(self) -> int:
        return len(self.cnt)


class VecPathTable:
    """Working path table: parallel ``(u, v, sig, cnt)`` arrays.

    ``u`` is the path's start image, ``v`` its current end image.  PS
    records no interior nodes, so no ``extras`` columns exist.
    """

    __slots__ = ("u", "v", "sig", "cnt")

    def __init__(self, u: Array, v: Array, sig: Array, cnt: Array) -> None:
        self.u, self.v, self.sig, self.cnt = u, v, sig, cnt

    def __len__(self) -> int:
        return len(self.cnt)


# ----------------------------------------------------------------------
# plan solver (array analogue of repro.counting.solver.BlockSolver, PS only)
# ----------------------------------------------------------------------

class VectorizedSolver:
    """Bottom-up PS plan solver over array tables (one pass per block).

    ``start_mask`` restricts every path sweep to rows whose *start* image
    lies in the mask.  Extensions and node joins never change a row's
    start vertex and the cycle merge joins rows sharing their start, so a
    masked solve produces exactly the rows of the unmasked solve whose
    key vertex is owned by the mask — the shard invariant the ``ps-dist``
    executor builds on.  Child tables must then cover *all* vertices:
    :meth:`inject` installs externally combined (full) child results.

    ``xp`` selects the array namespace (None: the process default).  All
    host inputs — CSR arrays, the coloring, shard and label masks —
    transfer through ``xp.asarray`` here, once per solver; the kernels
    below never touch host memory again until the root scalar comes back.
    """

    def __init__(
        self,
        g: Graph,
        colors: Array,
        k: int,
        start_mask: Optional[Array] = None,
        vertex_ok: Optional[Dict[Node, Array]] = None,
        xp: NamespaceLike = None,
    ) -> None:
        self.xp = as_namespace(xp)
        xpn = self.xp
        self.g = g
        indptr, indices = g.to_csr()
        self._indptr = xpn.asarray(indptr, dtype=xpn.int64)
        self._indices = xpn.asarray(indices, dtype=xpn.int64)
        self._degrees = xpn.asarray(g.degrees, dtype=xpn.int64)
        self.colors = xpn.asarray(colors, dtype=xpn.int64)
        self.k = k
        self.start_mask = (
            xpn.asarray(start_mask, dtype=xpn.bool_) if start_mask is not None else None
        )
        #: label-compatibility masks for labeled queries (empty = unlabeled)
        self.vertex_ok = {
            node: xpn.asarray(mask, dtype=xpn.bool_)
            for node, mask in (vertex_ok or {}).items()
        }
        #: per-color signature bits, indexed by data vertex color
        self.bit = 1 << self.colors
        self._solved: Dict[int, object] = {}
        self._tcache: Dict[int, VecBinaryTable] = {}
        self._retired: List[object] = []

    def _empty_path(self) -> VecPathTable:
        empty = self.xp.empty(0, dtype=self.xp.int64)
        return VecPathTable(empty, empty, empty, empty)

    def inject(self, block: Block, result: object) -> None:
        """Install (or overwrite) the solved table for ``block``.

        Used by the sharded executor: after the per-rank shards of a
        child block are combined into the full table, every rank injects
        the combined table so parent joins see all vertices, not just
        the rank's own shard.
        """
        old = self._solved.get(id(block))
        if old is not None:
            # pin the replaced table: _tcache keys transposes by id(), so
            # letting it be collected could recycle an id onto a new table
            self._retired.append(old)
        self._solved[id(block)] = result

    # ------------------------------------------------------------------
    # kernels (array analogues of repro.counting.kernels)
    # ------------------------------------------------------------------

    def _init_from_graph(
        self,
        ok_u: Optional[Array] = None,
        ok_v: Optional[Array] = None,
    ) -> VecPathTable:
        """Seed cnt(u, v, {χu, χv}) = 1 from every directed edge, batched.

        The repeat/gather over ``indptr`` emits all directed edges at
        once; rows arrive already sorted by ``(u, v)`` because CSR slices
        are sorted.  With ``start_mask`` only edges whose start vertex is
        in the mask are seeded — the shard-restricted sweep used by the
        ``ps-dist`` executor.  ``ok_u``/``ok_v`` are the label-
        compatibility masks of the path's first two query nodes.
        """
        xp, colors, bit = self.xp, self.colors, self.bit
        u = xp.repeat(xp.arange(self.g.n, dtype=xp.int64), self._degrees)
        keep = colors[u] != colors[self._indices]
        if self.start_mask is not None:
            keep &= self.start_mask[u]
        if ok_u is not None:
            keep &= ok_u[u]
        if ok_v is not None:
            keep &= ok_v[self._indices]
        u, v = u[keep], self._indices[keep]
        return VecPathTable(u, v, bit[u] | bit[v], xp.ones(len(u), dtype=xp.int64))

    def _init_from_child(self, child: VecBinaryTable) -> VecPathTable:
        """Seed from an annotated edge's child projection table (copy-free)."""
        if self.start_mask is None:
            return VecPathTable(child.u, child.v, child.sig, child.cnt)
        keep = self.start_mask[child.u]
        return VecPathTable(child.u[keep], child.v[keep], child.sig[keep], child.cnt[keep])

    def _extend_with_graph(
        self, t: VecPathTable, ok_w: Optional[Array] = None
    ) -> VecPathTable:
        """EdgeJoin with the data graph: extend every path by every neighbour
        of its end vertex whose color is unused, in one batched gather.
        ``ok_w`` masks the new vertex by label compatibility."""
        if len(t) == 0:
            return self._empty_path()
        xp, colors, bit = self.xp, self.colors, self.bit
        rep, pos = _expand(self._indptr[t.v], self._degrees[t.v], xp)
        w = self._indices[pos]
        sig = t.sig[rep]
        keep = ((sig >> colors[w]) & 1) == 0
        if ok_w is not None:
            keep &= ok_w[w]
        rep, w, sig = rep[keep], w[keep], sig[keep]
        (u, v, sig), cnt = _group_sum((t.u[rep], w, sig | bit[w]), t.cnt[rep], xp)
        return VecPathTable(u, v, sig, cnt)

    def _extend_with_child(self, t: VecPathTable, child: VecBinaryTable) -> VecPathTable:
        """EdgeJoin with a child table: sort-merge join on the path end vertex.

        Signatures must intersect exactly in the shared vertex's color
        (``sig & sig2 == 1 << χv``) — the colorful-join discipline.
        """
        if len(t) == 0 or len(child) == 0:
            return self._empty_path()
        xp, bit = self.xp, self.bit
        lo = xp.searchsorted(child.u, t.v, side="left")
        hi = xp.searchsorted(child.u, t.v, side="right")
        rep, pos = _expand(lo, hi - lo, xp)
        sig1, sig2 = t.sig[rep], child.sig[pos]
        keep = (sig1 & sig2) == bit[t.v[rep]]
        rep, pos, sig1, sig2 = rep[keep], pos[keep], sig1[keep], sig2[keep]
        _check_counts(t.cnt, xp)
        _check_counts(child.cnt, xp)
        (u, v, sig), cnt = _group_sum(
            (t.u[rep], child.v[pos], sig1 | sig2), t.cnt[rep] * child.cnt[pos], xp
        )
        return VecPathTable(u, v, sig, cnt)

    def _node_join(
        self, t: VecPathTable, child: VecUnaryTable, on_start: bool
    ) -> VecPathTable:
        """NodeJoin: fold a unary child annotating the path's start or end."""
        if len(t) == 0 or len(child) == 0:
            return self._empty_path()
        xp, bit = self.xp, self.bit
        x = t.u if on_start else t.v
        lo = xp.searchsorted(child.u, x, side="left")
        hi = xp.searchsorted(child.u, x, side="right")
        rep, pos = _expand(lo, hi - lo, xp)
        sig1, sig2 = t.sig[rep], child.sig[pos]
        keep = (sig1 & sig2) == bit[x[rep]]
        rep, pos, sig1, sig2 = rep[keep], pos[keep], sig1[keep], sig2[keep]
        _check_counts(t.cnt, xp)
        _check_counts(child.cnt, xp)
        (u, v, sig), cnt = _group_sum(
            (t.u[rep], t.v[rep], sig1 | sig2), t.cnt[rep] * child.cnt[pos], xp
        )
        return VecPathTable(u, v, sig, cnt)

    def _merge_paths(
        self, tplus: VecPathTable, tminus: VecPathTable
    ) -> Tuple[Array, Array, Array, Array]:
        """Cycle merge: join the two path tables on their shared endpoints.

        Both tables run start→end, so the join key is the ``(u, v)``
        pair, encoded as ``u*n + v`` to make it one monotone
        ``searchsorted`` axis.  Returns the raw matched rows
        ``(u, v, sig1|sig2, cnt1*cnt2)`` — the caller aggregates
        according to the block's boundary arity.
        """
        xp, bit, n = self.xp, self.bit, self.g.n
        if len(tplus) == 0 or len(tminus) == 0:
            empty = xp.empty(0, dtype=xp.int64)
            return empty, empty, empty, empty
        key_minus = tminus.u * n + tminus.v
        key_plus = tplus.u * n + tplus.v
        lo = xp.searchsorted(key_minus, key_plus, side="left")
        hi = xp.searchsorted(key_minus, key_plus, side="right")
        rep, pos = _expand(lo, hi - lo, xp)
        sig1, sig2 = tplus.sig[rep], tminus.sig[pos]
        u, v = tplus.u[rep], tplus.v[rep]
        keep = (sig1 & sig2) == (bit[u] | bit[v])
        rep, pos, u, v = rep[keep], pos[keep], u[keep], v[keep]
        _check_counts(tplus.cnt, xp)
        _check_counts(tminus.cnt, xp)
        return u, v, sig1[keep] | sig2[keep], tplus.cnt[rep] * tminus.cnt[pos]

    # ------------------------------------------------------------------
    def solve(self, block: Block) -> object:
        key = id(block)
        if key not in self._solved:
            # one coarse span per DP stage — obs.span is a shared no-op
            # unless a trace is actively collected, so the perf-gated
            # sweep pays two global reads here and nothing else
            with obs.span(f"sweep.{block.kind}", boundary=len(block.boundary)):
                if block.kind == LEAF:
                    result = self._solve_leaf(block)
                elif block.kind == CYCLE:
                    result = self._solve_cycle(block)
                else:  # pragma: no cover - singletons handled by solve_plan_vectorized
                    raise ValueError(
                        "singleton blocks are roots, not solvable tables"
                    )
            self._solved[key] = result
        return self._solved[key]

    def _child_tables(self, block: Block) -> Tuple[Dict[Node, object], Dict[int, object]]:
        node_tables = {lab: self.solve(child) for lab, child in block.node_ann.items()}
        edge_tables = {i: self.solve(child) for i, child in block.edge_ann.items()}
        return node_tables, edge_tables

    def _oriented(self, table: VecBinaryTable, first: Node, second: Node) -> VecBinaryTable:
        if table.boundary == (first, second):
            return table
        if table.boundary == (second, first):
            key = id(table)
            if key not in self._tcache:
                self._tcache[key] = table.transpose()
            return self._tcache[key]
        raise ValueError(
            f"table boundary {table.boundary!r} does not match edge ({first!r}, {second!r})"
        )

    # ------------------------------------------------------------------
    def _build_path(
        self,
        path_labels: Sequence[Node],
        node_tables: Dict[Node, VecUnaryTable],
        edge_tables: Dict[int, VecBinaryTable],
    ) -> VecPathTable:
        """Array analogue of ``build_path_table`` (PS: no pruning/extras)."""
        vertex_ok = self.vertex_ok
        child0 = edge_tables.get(0)
        if child0 is None:
            t = self._init_from_graph(
                ok_u=vertex_ok.get(path_labels[0]),
                ok_v=vertex_ok.get(path_labels[1]),
            )
        else:
            t = self._init_from_child(child0)
        if path_labels[0] in node_tables:
            t = self._node_join(t, node_tables[path_labels[0]], True)
        if path_labels[1] in node_tables:
            t = self._node_join(t, node_tables[path_labels[1]], False)
        for j in range(1, len(path_labels) - 1):
            child = edge_tables.get(j)
            if child is None:
                t = self._extend_with_graph(t, ok_w=vertex_ok.get(path_labels[j + 1]))
            else:
                t = self._extend_with_child(t, child)
            nxt = path_labels[j + 1]
            if nxt in node_tables:
                t = self._node_join(t, node_tables[nxt], False)
        return t

    def _solve_leaf(self, block: Block) -> VecUnaryTable:
        a, b = block.nodes
        node_tables, edge_children = self._child_tables(block)
        edge_tables: Dict[int, VecBinaryTable] = {}
        if 0 in edge_children:
            edge_tables[0] = self._oriented(edge_children[0], a, b)
        pt = self._build_path((a, b), node_tables, edge_tables)
        (u, sig), cnt = _group_sum((pt.u, pt.sig), pt.cnt, self.xp)
        return VecUnaryTable(a, u, sig, cnt, self.xp)

    def _solve_cycle(self, block: Block) -> object:
        nodes = block.nodes
        L = len(nodes)
        boundary = block.boundary
        nb = len(boundary)
        node_tables, edge_children = self._child_tables(block)

        # PS split: at the boundary nodes, or an arbitrary diagonal
        if nb == 2:
            s_idx = nodes.index(boundary[0])
            e_idx = nodes.index(boundary[1])
        elif nb == 1:
            s_idx = nodes.index(boundary[0])
            e_idx = (s_idx + L // 2) % L
        else:
            s_idx, e_idx = 0, L // 2

        plus_labels = _cw_labels(nodes, s_idx, e_idx)
        minus_labels = _ccw_labels(nodes, s_idx, e_idx)

        # endpoint annotation convention mirrors BlockSolver: P+ takes the
        # end node's annotation, P- the start node's
        plus_nodes = {
            lab: node_tables[lab] for lab in plus_labels[1:] if lab in node_tables
        }
        minus_nodes = {
            lab: node_tables[lab] for lab in minus_labels[:-1] if lab in node_tables
        }
        plus_edges: Dict[int, VecBinaryTable] = {}
        for j in range(len(plus_labels) - 1):
            idx = (s_idx + j) % L
            if idx in edge_children:
                plus_edges[j] = self._oriented(
                    edge_children[idx], plus_labels[j], plus_labels[j + 1]
                )
        minus_edges: Dict[int, VecBinaryTable] = {}
        for j in range(len(minus_labels) - 1):
            idx = (s_idx - j - 1) % L
            if idx in edge_children:
                minus_edges[j] = self._oriented(
                    edge_children[idx], minus_labels[j], minus_labels[j + 1]
                )

        tplus = self._build_path(plus_labels, plus_nodes, plus_edges)
        tminus = self._build_path(minus_labels, minus_nodes, minus_edges)
        u, v, sig, cnt = self._merge_paths(tplus, tminus)

        if nb == 0:
            xp = self.xp
            assert len(cnt) == 0 or xp.all(
                xp.popcount(sig) == self.k
            ), "root signature size != k"
            return _checked_total(cnt, xp)
        s_label, e_label = nodes[s_idx], nodes[e_idx]
        if nb == 1:
            img = u if boundary[0] == s_label else v
            (bu, bsig), bcnt = _group_sum((img, sig), cnt, self.xp)
            return VecUnaryTable(boundary[0], bu, bsig, bcnt, self.xp)
        images = tuple(u if lab == s_label else v for lab in boundary)
        (bu, bv, bsig), bcnt = _group_sum((images[0], images[1], sig), cnt, self.xp)
        return VecBinaryTable(
            (boundary[0], boundary[1]), bu, bv, bsig, bcnt, self.xp
        )


def solve_plan_vectorized(
    plan: Plan,
    g: Graph,
    colors: Array,
    num_colors: Optional[int] = None,
    xp: NamespaceLike = None,
) -> int:
    """Number of colorful matches of ``plan.query`` in ``g`` under ``colors``.

    Semantics match :func:`repro.counting.solver.solve_plan` with
    ``method="ps"`` exactly (bit-identical counts, on every namespace);
    only the execution strategy differs.  ``xp`` is an
    :class:`~repro.counting.xp.ArrayNamespace` handle or spec string
    (None: the process default).  No per-rank load attribution is
    available — use the dict kernels for simulated-rank experiments.
    """
    xpn = as_namespace(xp)
    colors = xpn.asarray(colors, dtype=xpn.int64)
    k = plan.query.k
    kc = num_colors if num_colors is not None else k
    if kc < k:
        raise ValueError(f"need at least k={k} colors, got num_colors={kc}")
    if kc > MAX_COLORS_VEC:
        raise ValueError(f"ps-vec packs signatures in int64; num_colors <= {MAX_COLORS_VEC}")
    if len(colors) != g.n:
        raise ValueError("coloring must assign a color to every data vertex")
    if k > 0 and len(colors) and (int(xpn.min(colors)) < 0 or int(xpn.max(colors)) >= kc):
        raise ValueError(f"colors must lie in [0, {kc})")
    vertex_ok = label_masks(g, plan.query)

    root = plan.root
    if root.kind == SINGLETON:
        if root.node_ann:
            solver = VectorizedSolver(g, colors, k, vertex_ok=vertex_ok, xp=xpn)
            (child,) = root.node_ann.values()
            return solver.solve(child).total()
        if vertex_ok:
            (mask,) = vertex_ok.values()
            return int(mask.sum())
        return g.n

    solver = VectorizedSolver(g, colors, k, vertex_ok=vertex_ok, xp=xpn)
    result = solver.solve(root)
    assert isinstance(result, int), "root cycle must produce a scalar"
    return result


def solve_block_shard(
    block: Block,
    g: Graph,
    colors: Array,
    k: int,
    children: Sequence[Tuple[Block, object]] = (),
    start_mask: Optional[Array] = None,
    vertex_ok: Optional[Dict[Node, Array]] = None,
    xp: NamespaceLike = None,
) -> object:
    """Solve one block's table restricted to ``start_mask`` start vertices.

    The shard-restricted sweep entry used by the distributed executor:
    ``children`` supplies the already-combined (full) tables of every
    descendant block, so only this block's own path sweep runs — over the
    rows whose start image the mask owns.  Returns a ``VecUnaryTable`` /
    ``VecBinaryTable`` shard, or a partial ``int`` for a 0-boundary root
    cycle.  Combining the shards of all masks of a partition reproduces
    the sequential table bit for bit (integer sums are exact and every
    path row lives in exactly one shard).  ``vertex_ok`` carries the
    label-compatibility masks of a labeled query (orthogonal to the
    shard mask: labels filter per query node, shards per start vertex).
    ``xp`` selects the array namespace; the executor pins its workers to
    the host (:func:`~repro.counting.xp.cpu_namespace`) because shard
    tables cross process pipes.
    """
    solver = VectorizedSolver(
        g, colors, k, start_mask=start_mask, vertex_ok=vertex_ok, xp=xp
    )
    for child, table in children:
        solver.inject(child, table)
    return solver.solve(block)


def count_colorful_ps_vec(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    plan: Optional[Plan] = None,
    num_colors: Optional[int] = None,
    xp: NamespaceLike = None,
) -> int:
    """Colorful matches of ``query`` in ``g`` via the vectorized PS kernels."""
    plan = plan if plan is not None else heuristic_plan(query)
    return solve_plan_vectorized(plan, g, colors, num_colors=num_colors, xp=xp)
