"""High-level counting API — deprecated shims over :mod:`repro.engine`.

.. deprecated::
    These free functions predate the session-oriented
    :class:`repro.engine.CountingEngine`, which caches decomposition
    plans, batches queries and exposes pluggable backends.  They remain
    as thin wrappers (one ephemeral engine per call) for backward
    compatibility::

        # legacy                      # preferred
        counting.count(g, q, ...)     CountingEngine(g).count(q, ...)
        counting.count_colorful(...)  CountingEngine(g).count_colorful(...)
        counting.count_exact(g, q)    CountingEngine(g).count_exact(q)

Typical modern use::

    from repro.engine import CountingEngine

    engine = CountingEngine(g)
    result = engine.count(q, trials=5, seed=1)
    print(result.estimate, "matches ~", result.estimated_subgraphs(q), "subgraphs")
"""

from __future__ import annotations

from typing import Optional, Sequence

from ._deprecation import warn_once_per_site
from ..decomposition.tree import Plan
from ..distributed.partition import make_partition
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .estimator import EstimateResult

__all__ = [
    "count_colorful",
    "count",
    "count_exact",
    "make_context",
]


def _deprecated(old: str, new: str) -> None:
    # stacklevel 3: warn_once_per_site's caller is this helper (1), the
    # deprecated shim (2), and the user's call site (3) — warned once each
    warn_once_per_site(
        f"repro.counting.{old} is deprecated; use repro.engine.{new}",
        stacklevel=3,
    )


def make_context(
    g: Graph, nranks: int = 1, strategy: str = "block", track: bool = True
) -> ExecutionContext:
    """Execution context simulating ``nranks`` ranks over ``g``."""
    return ExecutionContext(make_partition(g.n, nranks, strategy), track=track)


def count_colorful(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    method: str = "db",
    plan: Optional[Plan] = None,
    ctx: Optional[ExecutionContext] = None,
    num_colors: Optional[int] = None,
) -> int:
    """Colorful matches under a fixed coloring with the chosen method.

    .. deprecated:: use :meth:`repro.engine.CountingEngine.count_colorful`.
    """
    from ..engine import CountingEngine

    _deprecated("count_colorful", "CountingEngine.count_colorful")
    return CountingEngine(g).count_colorful(
        query, colors, method=method, plan=plan, ctx=ctx, num_colors=num_colors
    )


def count(
    g: Graph,
    query: QueryGraph,
    trials: int = 10,
    seed: int = 0,
    method: str = "db",
    plan: Optional[Plan] = None,
    ctx: Optional[ExecutionContext] = None,
    num_colors: Optional[int] = None,
    workers: int = 1,
) -> EstimateResult:
    """Approximate match counting by repeated color-coding trials.

    .. deprecated:: use :meth:`repro.engine.CountingEngine.count`.
    """
    from ..engine import CountingEngine

    _deprecated("count", "CountingEngine.count")
    return CountingEngine(g).count(
        query,
        trials=trials,
        seed=seed,
        method=method,
        plan=plan,
        ctx=ctx,
        num_colors=num_colors,
        workers=workers,
    )


def count_exact(g: Graph, query: QueryGraph) -> int:
    """Exact match count by brute force (small inputs only).

    .. deprecated:: use :meth:`repro.engine.CountingEngine.count_exact`.
    """
    from ..engine import CountingEngine

    _deprecated("count_exact", "CountingEngine.count_exact")
    return CountingEngine(g).count_exact(query)
