"""High-level counting API — **removed**, hard stubs over :mod:`repro.engine`.

.. deprecated::
    These free functions predated the session-oriented
    :class:`repro.engine.CountingEngine` and spent one deprecation cycle
    as delegating shims.  They are now *hard stubs*: importable (so old
    code fails at the call, with a precise migration hint, rather than
    at import time with a bare ``ImportError``) but raising
    :class:`DeprecationWarning` when called::

        # removed                     # replacement
        counting.count(g, q, ...)     CountingEngine(g).count(q, ...)
        counting.count_colorful(...)  CountingEngine(g).count_colorful(...)
        counting.count_exact(g, q)    CountingEngine(g).count_exact(q)
        counting.make_context(g, n)   CountingEngine(g).make_context(n)

    The full migration table lives in ``docs/API.md``.

Typical modern use::

    from repro.engine import CountingEngine

    engine = CountingEngine(g)
    result = engine.count(q, trials=5, seed=1)
    print(result.estimate, "matches ~", result.estimated_subgraphs(q), "subgraphs")
"""

from __future__ import annotations

from typing import NoReturn

__all__ = [
    "count_colorful",
    "count",
    "count_exact",
    "make_context",
]


def _removed(old: str, new: str) -> NoReturn:
    raise DeprecationWarning(
        f"repro.counting.{old} has been removed; use repro.engine.{new} "
        "(see docs/API.md for the migration table)"
    )


def make_context(*args: object, **kwargs: object) -> NoReturn:
    """Removed. Use :meth:`repro.engine.CountingEngine.make_context`."""
    _removed("make_context", "CountingEngine.make_context")


def count_colorful(*args: object, **kwargs: object) -> NoReturn:
    """Removed. Use :meth:`repro.engine.CountingEngine.count_colorful`."""
    _removed("count_colorful", "CountingEngine.count_colorful")


def count(*args: object, **kwargs: object) -> NoReturn:
    """Removed. Use :meth:`repro.engine.CountingEngine.count`."""
    _removed("count", "CountingEngine.count")


def count_exact(*args: object, **kwargs: object) -> NoReturn:
    """Removed. Use :meth:`repro.engine.CountingEngine.count_exact`."""
    _removed("count_exact", "CountingEngine.count_exact")
