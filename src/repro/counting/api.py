"""High-level public API for subgraph counting.

Typical use::

    from repro import counting, graph, query

    g = graph.chung_lu_power_law(500, alpha=1.9, rng=np.random.default_rng(0))
    q = query.paper_query("brain1")
    result = counting.count(g, q, trials=5, seed=1)
    print(result.estimate, "matches ~", result.estimated_subgraphs(q), "subgraphs")
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..distributed.partition import make_partition
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..query.query import QueryGraph
from .bruteforce import count_matches
from .db import count_colorful_db
from .estimator import EstimateResult, estimate_matches
from .ps import count_colorful_ps
from .solver import solve_plan

__all__ = [
    "count_colorful",
    "count",
    "count_exact",
    "make_context",
]


def make_context(
    g: Graph, nranks: int = 1, strategy: str = "block", track: bool = True
) -> ExecutionContext:
    """Execution context simulating ``nranks`` ranks over ``g``."""
    return ExecutionContext(make_partition(g.n, nranks, strategy), track=track)


def count_colorful(
    g: Graph,
    query: QueryGraph,
    colors: Sequence[int],
    method: str = "db",
    plan: Optional[Plan] = None,
    ctx: Optional[ExecutionContext] = None,
) -> int:
    """Colorful matches under a fixed coloring with the chosen method."""
    if method == "db":
        return count_colorful_db(g, query, colors, plan=plan, ctx=ctx)
    if method == "ps":
        return count_colorful_ps(g, query, colors, plan=plan, ctx=ctx)
    if method == "ps-even":
        plan = plan or heuristic_plan(query)
        return solve_plan(plan, g, np.asarray(colors), ctx=ctx, method="ps-even")
    raise ValueError(f"unknown method {method!r}; use 'ps', 'db' or 'ps-even'")


def count(
    g: Graph,
    query: QueryGraph,
    trials: int = 10,
    seed: int = 0,
    method: str = "db",
    plan: Optional[Plan] = None,
    ctx: Optional[ExecutionContext] = None,
) -> EstimateResult:
    """Approximate match counting by repeated color-coding trials."""
    return estimate_matches(
        g, query, trials=trials, seed=seed, method=method, plan=plan, ctx=ctx
    )


def count_exact(g: Graph, query: QueryGraph) -> int:
    """Exact match count by brute force (small inputs only)."""
    return count_matches(g, query)
