"""Coloring strategies for the color-coding estimator.

Section 2 uses uniform random colorings.  Two refinements are provided as
extensions (the variance-reduction direction the color-coding literature
explores and the paper leaves implicit):

* **balanced** colorings — each color class has (near-)equal size; the
  estimator stays unbiased over the uniform mixture of balanced colorings
  restricted sample space and typically has lower variance because color
  class sizes never degenerate;
* **stratified batches** — a deterministic low-discrepancy sequence of
  seeds, so repeated experiments across methods/ranks reuse identical
  colorings (how every benchmark in this repo keeps PS/DB comparisons
  paired).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

__all__ = [
    "uniform_coloring",
    "balanced_coloring",
    "coloring_batch",
    "coloring_stream",
    "color_class_sizes",
]


def uniform_coloring(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """IID uniform colors — the paper's coloring distribution."""
    return rng.integers(0, k, size=n, dtype=np.int64)


def balanced_coloring(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Random coloring with color-class sizes differing by at most one.

    Sampled as a uniformly random permutation of the fixed multiset
    ``{0,...,k-1}`` repeated ``ceil(n/k)`` times, truncated to ``n``.
    """
    reps = -(-n // k)
    palette = np.tile(np.arange(k, dtype=np.int64), reps)[:n]
    rng.shuffle(palette)
    return palette


def coloring_batch(
    n: int,
    k: int,
    trials: int,
    seed: int,
    strategy: str = "uniform",
) -> List[np.ndarray]:
    """Deterministic batch of ``trials`` colorings for paired experiments."""
    rng = np.random.default_rng(seed)
    if strategy == "uniform":
        return [uniform_coloring(n, k, rng) for _ in range(trials)]
    if strategy == "balanced":
        return [balanced_coloring(n, k, rng) for _ in range(trials)]
    raise ValueError(f"unknown coloring strategy {strategy!r}")


def coloring_stream(
    n: int,
    k: int,
    seed: int,
    strategy: str = "uniform",
) -> Iterator[np.ndarray]:
    """Endless deterministic coloring sequence, prefix-identical to batches.

    Draws from the *same* generator stream as :func:`coloring_batch`, so
    the first ``t`` colorings yielded here are bit-identical to
    ``coloring_batch(n, k, t, seed, strategy)`` for every ``t``.  This is
    what lets the engine's adaptive scheduler stop early (or keep going)
    without perturbing the colorings a fixed-trial run would have seen —
    the differential/parity invariants ride on this prefix property.
    """
    if strategy == "uniform":
        draw = uniform_coloring
    elif strategy == "balanced":
        draw = balanced_coloring
    else:
        raise ValueError(f"unknown coloring strategy {strategy!r}")
    rng = np.random.default_rng(seed)
    while True:
        yield draw(n, k, rng)


def color_class_sizes(colors: np.ndarray, k: int) -> np.ndarray:
    """Histogram of color usage (diagnostics for degenerate colorings)."""
    return np.bincount(np.asarray(colors, dtype=np.int64), minlength=k)
