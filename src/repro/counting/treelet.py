"""Tree-query (treelet) dynamic program — the FASCIA-style special case.

Slota & Madduri's FASCIA counts colorful matches of *tree* queries with
the Alon et al. DP: root the tree, process bottom-up, and for each query
node keep a table ``cnt(u, sig)`` = number of colorful matches of its
subtree with the root mapped to ``u`` using color set ``sig``.  The paper
uses this as its historical context (treewidth-1 color coding); we include
it both as an independent baseline and as a cross-check for our PS/DB
solvers on acyclic queries (where all three must agree).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..graph.graph import Graph
from ..query.query import QueryGraph
from ..query.treewidth import is_tree
from ..tables.signatures import full_signature

__all__ = ["count_colorful_treelet"]

Node = Hashable


def _rooted_children(q: QueryGraph, root: Node) -> Dict[Node, List[Node]]:
    """Children lists of the query tree rooted at ``root`` (DFS)."""
    children: Dict[Node, List[Node]] = {v: [] for v in q.nodes()}
    seen = {root}
    stack = [root]
    while stack:
        u = stack.pop()
        for v in sorted(q.adj[u], key=repr):
            if v not in seen:
                seen.add(v)
                children[u].append(v)
                stack.append(v)
    return children


def count_colorful_treelet(
    g: Graph, query: QueryGraph, colors: Sequence[int]
) -> int:
    """Colorful matches of a *tree* query via the treelet DP.

    Raises ``ValueError`` for non-tree queries (use PS/DB for those) and
    for vertex-labeled queries — this DP carries no label masks, so
    silently returning the unlabeled count would be wrong; the PS family
    (``ps``/``ps-vec``/``ps-dist``) handles labeled trees.
    """
    if not is_tree(query):
        raise ValueError("treelet DP requires an acyclic connected query")
    if query.labels is not None:
        raise ValueError(
            "treelet DP does not support labeled queries; use ps/ps-vec/ps-dist"
        )
    colors_arr = np.asarray(colors, dtype=np.int64)
    if len(colors_arr) != g.n:
        raise ValueError("coloring must cover every data vertex")
    k = query.k
    if k == 1:
        return g.n

    root = max(query.nodes(), key=query.degree)
    children = _rooted_children(query, root)

    # Post-order over the rooted tree.
    order: List[Node] = []
    stack: List[Tuple[Node, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
        else:
            stack.append((node, True))
            for c in children[node]:
                stack.append((c, False))

    # tables[q_node][ (u, sig) ] = count of colorful matches of the subtree
    tables: Dict[Node, Dict[Tuple[int, int], int]] = {}
    for qnode in order:
        # start with the single-vertex subtree
        table: Dict[Tuple[int, int], int] = {
            (u, 1 << int(colors_arr[u])): 1 for u in range(g.n)
        }
        for child in children[qnode]:
            ctab = tables.pop(child)
            # index child entries by vertex for edge lookups
            by_vertex: Dict[int, List[Tuple[int, int]]] = {}
            for (v, sig), cnt in ctab.items():
                by_vertex.setdefault(v, []).append((sig, cnt))
            new_table: Dict[Tuple[int, int], int] = {}
            for (u, sig), cnt in table.items():
                for v in g.neighbors(u):
                    lst = by_vertex.get(int(v))
                    if not lst:
                        continue
                    for sig_c, cnt_c in lst:
                        if sig & sig_c == 0:  # disjoint color sets
                            key = (u, sig | sig_c)
                            new_table[key] = new_table.get(key, 0) + cnt * cnt_c
            table = new_table
        tables[qnode] = table

    fs = full_signature(k)
    return sum(cnt for (u, sig), cnt in tables[root].items() if sig == fs)
