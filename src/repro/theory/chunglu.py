"""Chung-Lu random graphs for the Section 9 analysis.

Thin wrappers around :mod:`repro.graph.generators` that enforce the
paper's model assumptions (``d_u >= 1``, ``max d_u <= sqrt(n)``,
``m >= n``) and expose the exact edge probability used in the proofs.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..graph.degree import truncated_power_law_sequence
from ..graph.generators import chung_lu
from ..graph.graph import Graph

__all__ = ["validate_degree_sequence", "sample_chung_lu", "edge_probability", "power_law_graph"]


def validate_degree_sequence(degrees: np.ndarray) -> None:
    """Check the Section 9.2 model assumptions; raise on violation."""
    d = np.asarray(degrees, dtype=np.float64)
    n = len(d)
    if n == 0:
        raise ValueError("empty degree sequence")
    if d.min() < 1:
        raise ValueError("Chung-Lu analysis assumes d_u >= 1 for all u")
    if d.max() > math.sqrt(n) + 1e-9:
        raise ValueError("Chung-Lu analysis assumes max degree <= sqrt(n)")


def edge_probability(degrees: np.ndarray, u: int, v: int) -> float:
    """P[(u,v) in E] = d_u d_v / (2m), the model's defining quantity."""
    d = np.asarray(degrees, dtype=np.float64)
    two_m = d.sum()
    return float(min(1.0, d[u] * d[v] / two_m))


def sample_chung_lu(
    degrees: np.ndarray, rng: np.random.Generator, name: str = "chung-lu"
) -> Graph:
    """Sample after validating the model preconditions."""
    validate_degree_sequence(degrees)
    return chung_lu(degrees, rng, name=name)


def power_law_graph(
    n: int, alpha: float, rng: np.random.Generator, name: str = ""
) -> Tuple[Graph, np.ndarray]:
    """Sample a truncated-power-law Chung-Lu graph; return (graph, degrees).

    The expected degree sequence is returned alongside because the Section
    9 bounds are functions of the *expected* degrees, not the realised
    ones.
    """
    seq = truncated_power_law_sequence(n, alpha, rng=rng)
    g = sample_chung_lu(seq, rng, name=name or f"cl-power({alpha})")
    return g, seq
