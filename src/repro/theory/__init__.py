"""Section 9-10 theory toolkit: Chung-Lu graphs, X(q)/Y(q), bounds."""

from .balance import balance_report, claim_10_1_prediction
from .bounds import (
    power_law_exponents,
    predicted_gap_exponent,
    x_upper_bound,
    y_lower_bound,
)
from .chunglu import (
    edge_probability,
    power_law_graph,
    sample_chung_lu,
    validate_degree_sequence,
)
from .paths import count_simple_paths, count_x_paths, count_y_paths
from .simulation import PathStatEstimate, estimate_xy, xy_growth_curve

__all__ = [
    "balance_report",
    "claim_10_1_prediction",
    "power_law_exponents",
    "predicted_gap_exponent",
    "x_upper_bound",
    "y_lower_bound",
    "edge_probability",
    "power_law_graph",
    "sample_chung_lu",
    "validate_degree_sequence",
    "count_simple_paths",
    "count_x_paths",
    "count_y_paths",
    "PathStatEstimate",
    "estimate_xy",
    "xy_growth_curve",
]
