"""λ-balance and the power-law connection (paper Section 10, Claim 10.1).

Claim 10.1: any degree sequence satisfying the truncated power law with
exponent ``α ∈ (1, 2)`` is λ-balanced for ``λ = O(n^{α/2 - 1})``.  The
checker here evaluates the balance ratio empirically and compares it to
the claim's prediction — the empirical half of Section 10.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.degree import lambda_balance, moment

__all__ = ["balance_report", "claim_10_1_prediction"]


def claim_10_1_prediction(n: int, alpha: float) -> float:
    """λ = n^{α/2 - 1} — the claim's growth rate (constant dropped)."""
    if not (1.0 < alpha < 2.0):
        raise ValueError("alpha must be in (1, 2)")
    return float(n ** (alpha / 2.0 - 1.0))


def balance_report(degrees: np.ndarray, alpha: float, max_power: int = 3) -> Dict[str, float]:
    """Empirical λ vs the Claim 10.1 prediction for one sequence."""
    d = np.asarray(degrees, dtype=np.float64)
    n = len(d)
    lam = lambda_balance(d, max_power=max_power)
    predicted = claim_10_1_prediction(n, alpha)
    return {
        "n": float(n),
        "alpha": alpha,
        "lambda_empirical": lam,
        "lambda_predicted": predicted,
        "ratio": lam / predicted if predicted > 0 else float("inf"),
        "second_moment": moment(d, 2),
        "edges": d.sum() / 2.0,
    }
