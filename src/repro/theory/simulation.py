"""Monte-Carlo estimation of E[X(q)] and E[Y(q)] (Section 9, empirically).

The Theorem 9.1 statements are about expectations over the Chung-Lu
distribution; single-sample counts (``theory.paths``) are noisy at small
``n``.  This module averages exact counts over independent graph samples
and reports simple confidence intervals, powering the theory benches and
``examples/theory_validation.py`` at higher fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graph.degree import truncated_power_law_sequence
from .chunglu import sample_chung_lu
from .paths import count_x_paths, count_y_paths

__all__ = ["PathStatEstimate", "estimate_xy", "xy_growth_curve"]


@dataclass
class PathStatEstimate:
    """Sample mean and spread of a path statistic over graph draws."""

    name: str
    n: int
    samples: List[int]

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1)) if len(self.samples) > 1 else 0.0

    @property
    def ci95_half_width(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return 1.96 * self.std / np.sqrt(len(self.samples))


def estimate_xy(
    n: int,
    alpha: float,
    q: int,
    samples: int,
    seed: int = 0,
) -> tuple:
    """(E[X(q)], E[Y(q)]) estimates over ``samples`` Chung-Lu draws.

    The same degree sequence is reused across draws (the expectations in
    the paper condition on the sequence); ids for Y are re-randomized per
    draw, matching Lemma 9.5's uniformly random id assumption.
    """
    base_rng = np.random.default_rng(seed)
    seq = truncated_power_law_sequence(n, alpha, rng=base_rng)
    xs: List[int] = []
    ys: List[int] = []
    for i in range(samples):
        rng = np.random.default_rng(seed + 1 + i)
        g = sample_chung_lu(seq, rng)
        xs.append(count_x_paths(g, q))
        ys.append(count_y_paths(g, q, ids=rng.permutation(g.n)))
    return (
        PathStatEstimate("X", n, xs),
        PathStatEstimate("Y", n, ys),
    )


def xy_growth_curve(
    sizes: List[int],
    alpha: float,
    q: int,
    samples: int = 3,
    seed: int = 0,
) -> List[dict]:
    """E[X], E[Y] and their ratio across graph sizes (one row per n)."""
    rows = []
    for n in sizes:
        x_est, y_est = estimate_xy(n, alpha, q, samples, seed=seed + n)
        rows.append(
            {
                "n": n,
                "E[X]": x_est.mean,
                "E[Y]": y_est.mean,
                "Y/X": y_est.mean / max(x_est.mean, 1e-9),
                "X_ci95": x_est.ci95_half_width,
                "Y_ci95": y_est.ci95_half_width,
            }
        )
    return rows
