"""Exact counters for the Section 9 path statistics X(q) and Y(q).

The paper's analysis reduces the work of the simplified PS and DB
procedures on a cycle query of length ``k`` to two path-counting
quantities over the data graph (Equations 2 and 3):

* ``Y(q)`` — simple paths ``(u_1, ..., u_q)`` where ``u_1`` has the
  highest *id* among the path's vertices (PS with id symmetry breaking);
* ``X(q)`` — simple paths where ``u_1`` is highest in the *degree*
  ordering ("high-starting paths", DB).

Both are counted exactly by DFS enumeration (every directed simple path
of ``q`` vertices, restricted to those whose start dominates).  The
enumeration is exponential in ``q`` but ``q = ceil(k/2)`` is tiny, and
graphs in the theory benches have a few thousand edges.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..graph.graph import Graph

__all__ = ["count_y_paths", "count_x_paths", "count_simple_paths"]


def _count_dominated_paths(
    g: Graph,
    q: int,
    dominates: Optional[Callable[[int, int], bool]],
) -> int:
    """Count directed simple paths on ``q`` vertices whose start dominates
    every other vertex (or all paths if ``dominates`` is None)."""
    if q < 1:
        raise ValueError("need q >= 1")
    if q == 1:
        return g.n
    total = 0
    in_path = np.zeros(g.n, dtype=bool)

    def dfs(start: int, current: int, depth: int) -> None:
        nonlocal total
        for w in g.neighbors(current):
            w = int(w)
            if in_path[w]:
                continue
            if dominates is not None and not dominates(start, w):
                continue
            if depth + 1 == q:
                total += 1
            else:
                in_path[w] = True
                dfs(start, w, depth + 1)
                in_path[w] = False

    for u in range(g.n):
        in_path[u] = True
        dfs(u, u, 1)
        in_path[u] = False
    return total


def count_simple_paths(g: Graph, q: int) -> int:
    """All directed simple paths with ``q`` vertices (no domination)."""
    return _count_dominated_paths(g, q, None)


def count_y_paths(g: Graph, q: int, ids: Optional[np.ndarray] = None) -> int:
    """Y(q): simple paths whose start has the highest id (Equation 2).

    ``ids`` defaults to the vertex numbers; the paper samples them
    uniformly at random, which callers can emulate by passing a random
    permutation.
    """
    if ids is None:
        ids_arr = np.arange(g.n)
    else:
        ids_arr = np.asarray(ids)

    def dom(start: int, w: int) -> bool:
        return bool(ids_arr[start] > ids_arr[w])

    return _count_dominated_paths(g, q, dom)


def count_x_paths(g: Graph, q: int) -> int:
    """X(q): high-starting simple paths under the degree order (Eq. 3)."""
    rank = g.degree_order_rank()

    def dom(start: int, w: int) -> bool:
        return bool(rank[start] > rank[w])

    return _count_dominated_paths(g, q, dom)
