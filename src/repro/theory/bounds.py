"""Closed-form bounds of Theorem 9.1 and Lemma 9.8, plus estimator precision.

These are the quantities the theory benchmark compares against the exact
X(q)/Y(q) counts:

* lower bound on ``E[Y(q)]``:  ``(1/q) (2m)^{3-q} (Σ d_u^2)^{q-2}``
  (Lemma 9.5, up to the ``1-o(1)`` factor);
* upper bound on ``E[X(q)]``:  ``C (2m)^{2-q} (Σ d_u^{2-1/(q-1)})^{q-1}``
  (Lemma 9.6, with ``C`` left as 1 — shapes, not constants);
* the power-law growth rates of Lemma 9.8:
  ``E[Y(q)] = Ω(n^{α-1+(2-α)q/2})`` and, for ``α < 2 - 1/(q-1)``,
  ``E[X(q)] = O(n^{1/2+(2-α)(q-1)/2})`` (else ``O(n log n)``).

The second half of the module is the *estimator* precision theory the
adaptive trial scheduler leans on: the worst-case per-trial relative
variance of one color-coding trial
(:func:`estimator_relative_variance_bound`), the Chebyshev trial count /
half-width it implies (:func:`required_trials`,
:func:`chebyshev_halfwidth`), and a dependency-free Student-t quantile
(:func:`student_t_quantile`) for the empirical confidence interval.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..graph.degree import moment

__all__ = [
    "y_lower_bound",
    "x_upper_bound",
    "power_law_exponents",
    "predicted_gap_exponent",
    "estimator_relative_variance_bound",
    "required_trials",
    "chebyshev_halfwidth",
    "normal_quantile",
    "student_t_quantile",
]


def y_lower_bound(degrees: np.ndarray, q: int) -> float:
    """Lemma 9.5 lower bound on E[Y(q)] (dropping the 1-o(1) factor)."""
    if q < 3:
        raise ValueError("the analysis assumes q >= 3")
    d = np.asarray(degrees, dtype=np.float64)
    two_m = d.sum()
    return (1.0 / q) * two_m ** (3 - q) * moment(d, 2) ** (q - 2)


def x_upper_bound(degrees: np.ndarray, q: int, constant: float = 1.0) -> float:
    """Lemma 9.6 upper bound on E[X(q)] (constant C configurable)."""
    if q < 3:
        raise ValueError("the analysis assumes q >= 3")
    d = np.asarray(degrees, dtype=np.float64)
    two_m = d.sum()
    s = 2.0 - 1.0 / (q - 1)
    return constant * two_m ** (2 - q) * moment(d, s) ** (q - 1)


def power_law_exponents(alpha: float, q: int) -> Dict[str, float]:
    """Growth-rate exponents of Lemma 9.8 for a truncated power law.

    Returns ``{"y": e_y, "x": e_x, "x_is_nlogn": bool}`` where
    ``E[Y(q)] = Ω(n^{e_y})`` and ``E[X(q)] = O(n^{e_x})`` (with
    ``e_x = 1`` flagged as the ``n log n`` regime).
    """
    if not (1.0 < alpha < 2.0):
        raise ValueError("alpha must be in (1, 2)")
    if q < 3:
        raise ValueError("q >= 3")
    e_y = alpha - 1.0 + 0.5 * (2.0 - alpha) * q
    threshold = 2.0 - 1.0 / (q - 1)
    if alpha < threshold:
        e_x = 0.5 + 0.5 * (2.0 - alpha) * (q - 1)
        nlogn = False
    else:
        e_x = 1.0
        nlogn = True
    return {"y": e_y, "x": e_x, "x_is_nlogn": nlogn}


def predicted_gap_exponent(alpha: float, q: int) -> float:
    """Exponent of the predicted polynomial improvement Y(q)/X(q).

    Corollary 9.9: for ``α < 2 - 1/(q-1)`` the ratio grows as
    ``n^{(α-1)/2}``; in the ``n log n`` regime the gap exponent is
    ``e_y - 1`` (log factors dropped).
    """
    exps = power_law_exponents(alpha, q)
    return exps["y"] - exps["x"]


# ----------------------------------------------------------------------
# estimator precision: worst-case variance, Chebyshev trials, t quantile
# ----------------------------------------------------------------------

def estimator_relative_variance_bound(k: int, num_colors: Optional[int] = None) -> float:
    """Worst-case per-trial relative variance of one color-coding trial.

    One trial's estimate is ``s · X`` with ``X`` the colorful-match count
    and ``s = c^k / (c)_k`` the normalization (``k^k/k!`` under the
    paper's ``c == k`` palette; the expression mirrors
    :func:`repro.counting.estimator.normalization_factor`, re-derived
    here because ``theory`` sits below ``counting`` in the layering).
    Each fixed match survives a coloring with probability ``p = 1/s``, so
    in the hardest case of a single match the trial is a scaled Bernoulli
    with ``Var/mean² = (1 - p)/p <= s - 1``.  Correlated multi-match
    instances concentrate *better* per unit of mean in practice; the
    scheduler only uses this bound when the empirical variance is
    degenerate (too few trials, or an all-equal prefix), where a
    conservative number is exactly what is wanted.
    """
    c = num_colors if num_colors is not None else k
    if c < k:
        raise ValueError(f"need at least k={k} colors, got {c}")
    if k == 0:
        return 0.0
    falling = 1.0
    for i in range(k):
        falling *= c - i
    scale = float(c**k) / falling
    return scale - 1.0


def required_trials(rel_variance: float, rel_error: float, confidence: float) -> int:
    """Chebyshev bound on the trials needed to hit a relative error.

    For i.i.d. trials with per-trial relative variance ``r``,
    ``P(|mean - μ| >= ε·μ) <= r / (t·ε²)``; bounding the failure mass by
    ``1 - confidence`` gives ``t >= r / (ε²·(1 - confidence))``.
    Distribution-free, hence far more conservative than the empirical
    t-interval — it is the scheduler's fallback, not its fast path.
    """
    if rel_error <= 0.0:
        raise ValueError("rel_error must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if rel_variance < 0.0:
        raise ValueError("rel_variance must be non-negative")
    delta = 1.0 - confidence
    return max(1, math.ceil(rel_variance / (rel_error * rel_error * delta)))


def chebyshev_halfwidth(rel_variance: float, trials: int, confidence: float) -> float:
    """Relative CI half-width Chebyshev certifies after ``trials`` trials.

    Inverse of :func:`required_trials`: the smallest ``ε`` with
    ``r / (t·ε²) <= 1 - confidence``, i.e. ``sqrt(r / (t·(1-conf)))``.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if rel_variance < 0.0:
        raise ValueError("rel_variance must be non-negative")
    return math.sqrt(rel_variance / (trials * (1.0 - confidence)))


def normal_quantile(p: float) -> float:
    """Standard normal quantile Φ⁻¹(p) (Acklam's rational approximation).

    Absolute error below 1.15e-9 over the open unit interval — far
    tighter than the stopping rule needs — with no SciPy dependency.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie in (0, 1)")
    # coefficients of Peter Acklam's inverse-normal approximation
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)`` by the standard continued-fraction expansion."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_beta = math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
    front = math.exp(ln_beta + a * math.log(x) + b * math.log(1.0 - x))
    # use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) for fast convergence
    if x > (a + 1.0) / (a + b + 2.0):
        return 1.0 - _regularized_incomplete_beta(b, a, 1.0 - x)
    # modified Lentz continued fraction
    tiny = 1e-300
    f, c_term, d_term = 1.0, 1.0, 0.0
    for i in range(200):
        m = i // 2
        if i == 0:
            num = 1.0
        elif i % 2 == 0:
            num = m * (b - m) * x / ((a + 2.0 * m - 1.0) * (a + 2.0 * m))
        else:
            num = -(a + m) * (a + b + m) * x / ((a + 2.0 * m) * (a + 2.0 * m + 1.0))
        d_term = 1.0 + num * d_term
        if abs(d_term) < tiny:
            d_term = tiny
        d_term = 1.0 / d_term
        c_term = 1.0 + num / c_term
        if abs(c_term) < tiny:
            c_term = tiny
        f *= c_term * d_term
        if abs(1.0 - c_term * d_term) < 1e-12:
            break
    return front * (f - 1.0) / a


def _student_t_cdf(x: float, df: int) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    if x == 0.0:
        return 0.5
    tail = 0.5 * _regularized_incomplete_beta(
        df / 2.0, 0.5, df / (df + x * x)
    )
    return 1.0 - tail if x > 0 else tail


def student_t_quantile(p: float, df: int) -> float:
    """Quantile of Student's t with ``df`` degrees of freedom.

    Bisection on the exact CDF (incomplete-beta form) seeded by the
    normal quantile; accurate to ~1e-9, no SciPy.  ``df`` of 1 is the
    Cauchy case (the two-trial CI), large ``df`` converges to the normal.
    """
    if df < 1:
        raise ValueError("df must be at least 1")
    if not 0.0 < p < 1.0:
        raise ValueError("p must lie in (0, 1)")
    if p == 0.5:
        return 0.0
    z = normal_quantile(p)
    # t quantiles have heavier tails than the normal: bracket outward
    lo, hi = (z, z) if z == 0.0 else (min(z, z * 16.0), max(z, z * 16.0))
    lo, hi = min(lo, -1.0), max(hi, 1.0)
    while _student_t_cdf(lo, df) > p:
        lo *= 2.0
    while _student_t_cdf(hi, df) < p:
        hi *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)
