"""Closed-form bounds of Theorem 9.1 and Lemma 9.8.

These are the quantities the theory benchmark compares against the exact
X(q)/Y(q) counts:

* lower bound on ``E[Y(q)]``:  ``(1/q) (2m)^{3-q} (Σ d_u^2)^{q-2}``
  (Lemma 9.5, up to the ``1-o(1)`` factor);
* upper bound on ``E[X(q)]``:  ``C (2m)^{2-q} (Σ d_u^{2-1/(q-1)})^{q-1}``
  (Lemma 9.6, with ``C`` left as 1 — shapes, not constants);
* the power-law growth rates of Lemma 9.8:
  ``E[Y(q)] = Ω(n^{α-1+(2-α)q/2})`` and, for ``α < 2 - 1/(q-1)``,
  ``E[X(q)] = O(n^{1/2+(2-α)(q-1)/2})`` (else ``O(n log n)``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.degree import moment

__all__ = [
    "y_lower_bound",
    "x_upper_bound",
    "power_law_exponents",
    "predicted_gap_exponent",
]


def y_lower_bound(degrees: np.ndarray, q: int) -> float:
    """Lemma 9.5 lower bound on E[Y(q)] (dropping the 1-o(1) factor)."""
    if q < 3:
        raise ValueError("the analysis assumes q >= 3")
    d = np.asarray(degrees, dtype=np.float64)
    two_m = d.sum()
    return (1.0 / q) * two_m ** (3 - q) * moment(d, 2) ** (q - 2)


def x_upper_bound(degrees: np.ndarray, q: int, constant: float = 1.0) -> float:
    """Lemma 9.6 upper bound on E[X(q)] (constant C configurable)."""
    if q < 3:
        raise ValueError("the analysis assumes q >= 3")
    d = np.asarray(degrees, dtype=np.float64)
    two_m = d.sum()
    s = 2.0 - 1.0 / (q - 1)
    return constant * two_m ** (2 - q) * moment(d, s) ** (q - 1)


def power_law_exponents(alpha: float, q: int) -> Dict[str, float]:
    """Growth-rate exponents of Lemma 9.8 for a truncated power law.

    Returns ``{"y": e_y, "x": e_x, "x_is_nlogn": bool}`` where
    ``E[Y(q)] = Ω(n^{e_y})`` and ``E[X(q)] = O(n^{e_x})`` (with
    ``e_x = 1`` flagged as the ``n log n`` regime).
    """
    if not (1.0 < alpha < 2.0):
        raise ValueError("alpha must be in (1, 2)")
    if q < 3:
        raise ValueError("q >= 3")
    e_y = alpha - 1.0 + 0.5 * (2.0 - alpha) * q
    threshold = 2.0 - 1.0 / (q - 1)
    if alpha < threshold:
        e_x = 0.5 + 0.5 * (2.0 - alpha) * (q - 1)
        nlogn = False
    else:
        e_x = 1.0
        nlogn = True
    return {"y": e_y, "x": e_x, "x_is_nlogn": nlogn}


def predicted_gap_exponent(alpha: float, q: int) -> float:
    """Exponent of the predicted polynomial improvement Y(q)/X(q).

    Corollary 9.9: for ``α < 2 - 1/(q-1)`` the ratio grows as
    ``n^{(α-1)/2}``; in the ``n log n`` regime the gap exponent is
    ``e_y - 1`` (log factors dropped).
    """
    exps = power_law_exponents(alpha, q)
    return exps["y"] - exps["x"]
