"""Immutable configuration objects for the counting engine.

Two frozen dataclasses replace the long positional signatures of the
legacy free functions:

* :class:`EngineConfig` — per-engine defaults, fixed when the engine is
  constructed (method, trials, seed, palette, workers, simulated ranks);
* :class:`CountRequest` — one query execution; every field except the
  query itself is optional and inherits from the engine's config when
  left as ``None``.

Both are hashable value objects: requests can be deduplicated, logged,
or replayed, and a resolved request fully determines the estimate for a
given graph (same seeds → bit-identical results).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, Mapping, Optional, Tuple, Union

from ..decomposition.tree import Plan
from ..distributed.runtime import ExecutionContext
from ..query.query import QueryGraph

__all__ = ["EngineConfig", "CountRequest", "PrecisionSpec", "PrecisionLike"]

#: engine-wide default trial count (shared by EngineConfig and the
#: bare-request fallback in :meth:`CountRequest.effective_precision`)
DEFAULT_TRIALS = 10

#: default cap on adaptive trial counts: a precision-first request that
#: never converges still terminates (and the fingerprint stays finite)
DEFAULT_MAX_TRIALS = 200

#: default floor on adaptive trial counts: the t-interval needs a real
#: variance estimate before the stopping rule is allowed to fire
DEFAULT_MIN_TRIALS = 3


@dataclass(frozen=True)
class PrecisionSpec:
    """The single spelling of trial policy across the whole stack.

    ``rel_error=None`` (the default) is *fixed* mode: exactly
    ``max_trials`` trials run — ``PrecisionSpec.fixed(n)`` is what a bare
    ``trials=n`` desugars to, and such requests stay bit-identical (and
    cache-key-identical) to the historical fixed-trial behaviour.  With
    ``rel_error`` set, the engine keeps drawing colorings until the
    empirical confidence interval on the estimate is within
    ``rel_error`` (relative half-width) at ``confidence``, never running
    fewer than ``min_trials`` nor more than ``max_trials``.
    """

    #: target relative CI half-width; ``None`` disables adaptivity
    rel_error: Optional[float] = None
    confidence: float = 0.95
    min_trials: int = DEFAULT_MIN_TRIALS
    max_trials: int = DEFAULT_MAX_TRIALS

    def __post_init__(self) -> None:
        if self.min_trials < 1 or self.max_trials < 1:
            raise ValueError("need at least one trial")
        if self.max_trials < self.min_trials:
            raise ValueError(
                f"max_trials ({self.max_trials}) must be >= "
                f"min_trials ({self.min_trials})"
            )
        if self.rel_error is not None and self.rel_error <= 0.0:
            raise ValueError("rel_error must be positive")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie in (0, 1)")

    @classmethod
    def fixed(cls, trials: int) -> "PrecisionSpec":
        """The spec a bare ``trials=N`` desugars to (run exactly N)."""
        return cls(rel_error=None, min_trials=int(trials), max_trials=int(trials))

    @classmethod
    def coerce(cls, value: "PrecisionLike") -> "PrecisionSpec":
        """Normalise any accepted spelling to a :class:`PrecisionSpec`.

        Accepts a spec (returned as-is), an int (fixed trials), or a
        mapping with any subset of ``rel_error`` / ``confidence`` /
        ``min_trials`` / ``max_trials`` (the service JSON spelling).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, bool):
            raise ValueError("precision must be a PrecisionSpec, int, or mapping")
        if isinstance(value, int):
            return cls.fixed(value)
        if isinstance(value, Mapping):
            unknown = set(value) - {
                "rel_error", "confidence", "min_trials", "max_trials",
            }
            if unknown:
                raise ValueError(
                    f"unknown precision field(s): {sorted(unknown)}"
                )
            rel = value.get("rel_error")
            kwargs: Dict[str, object] = {
                "rel_error": float(rel) if rel is not None else None,
            }
            if "confidence" in value:
                kwargs["confidence"] = float(value["confidence"])  # type: ignore[arg-type]
            if "min_trials" in value:
                kwargs["min_trials"] = int(value["min_trials"])  # type: ignore[call-overload]
            if "max_trials" in value:
                kwargs["max_trials"] = int(value["max_trials"])  # type: ignore[call-overload]
            if rel is None and "min_trials" in value and "max_trials" not in value:
                # fixed-mode mapping with only min_trials: run exactly that
                kwargs["max_trials"] = kwargs["min_trials"]
            return cls(**kwargs)  # type: ignore[arg-type]
        raise ValueError(
            "precision must be a PrecisionSpec, int, or mapping, got "
            f"{type(value).__name__}"
        )

    @property
    def is_adaptive(self) -> bool:
        """Whether the stopping rule can change the trial count at all."""
        return self.rel_error is not None and self.max_trials > self.min_trials

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe rendering (the service wire / fingerprint spelling)."""
        return {
            "rel_error": self.rel_error,
            "confidence": self.confidence,
            "min_trials": self.min_trials,
            "max_trials": self.max_trials,
        }


#: every spelling :meth:`PrecisionSpec.coerce` accepts
PrecisionLike = Union["PrecisionSpec", int, Mapping[str, object]]


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide defaults applied to every request that omits a field.

    ``method="db"`` keeps the paper's contribution as the default kernel;
    pass ``method="auto"`` to let the registry pick per query (treelet DP
    for trees, ``ps-dist`` for huge inputs when ``workers > 1``,
    ``ps-vec`` for large ones, DB otherwise).  ``nranks > 1`` attaches a
    simulated-rank execution context to every run and reports its
    :class:`LoadStats` — the *predicted* cost model.  ``workers`` fans
    independent trials over processes for ordinary backends; for the
    distributed ``ps-dist`` backend it is the shard count and
    ``partition_strategy`` picks how vertices map to shard processes.
    """

    method: str = "db"
    trials: int = DEFAULT_TRIALS
    seed: int = 0
    num_colors: Optional[int] = None
    workers: int = 1
    nranks: int = 1
    partition_strategy: str = "block"
    coloring_strategy: str = "uniform"
    #: array-namespace spec for the vectorized backends ("numpy", "strict",
    #: "cupy", "torch", "auto"); ``None`` means the process default (the
    #: ``REPRO_ARRAY_NAMESPACE`` env var, or NumPy).  Counts are
    #: bit-identical across namespaces — this knob moves execution, not
    #: semantics — but it still enters the request fingerprint so cached
    #: results carry their provenance.
    namespace: Optional[str] = None
    #: relative cost of shipping one table entry vs one local operation,
    #: used by RunResult.makespan/speedup on simulated (nranks>1) runs
    kappa: float = 0.5
    plan_limit: int = 20000
    #: engine-wide trial policy; ``None`` keeps the bare ``trials`` knob
    #: as the policy (``PrecisionSpec.fixed(trials)``).  When set, every
    #: request that does not carry its own ``precision`` inherits this —
    #: including adaptive (``rel_error``) policies.
    precision: Optional[PrecisionSpec] = None

    def __post_init__(self) -> None:
        if self.precision is not None and not isinstance(self.precision, PrecisionSpec):
            object.__setattr__(
                self, "precision", PrecisionSpec.coerce(self.precision)
            )

    def replace(self, **changes: object) -> "EngineConfig":
        """A copy of this config with ``changes`` applied."""
        return replace(self, **changes)


#: CountRequest fields that fall back to the engine config when ``None``.
_INHERITED = (
    "method",
    "trials",
    "seed",
    "num_colors",
    "workers",
    "nranks",
    "coloring_strategy",
    "namespace",
    "precision",
)


@dataclass(frozen=True)
class CountRequest:
    """One counting job: a query plus optional per-request overrides.

    ``None`` means "inherit from :class:`EngineConfig`" for every field
    in ``method / trials / seed / num_colors / workers / nranks /
    coloring_strategy``.  ``plan`` overrides the engine's plan cache and
    ``ctx`` supplies an external :class:`ExecutionContext` (the legacy
    ``make_context`` flow); both default to engine-managed objects.
    """

    query: QueryGraph
    method: Optional[str] = None
    trials: Optional[int] = None
    seed: Optional[int] = None
    num_colors: Optional[int] = None
    workers: Optional[int] = None
    nranks: Optional[int] = None
    coloring_strategy: Optional[str] = None
    #: array-namespace spec for the vectorized backends (see EngineConfig)
    namespace: Optional[str] = None
    plan: Optional[Plan] = None
    ctx: Optional[ExecutionContext] = None
    #: optional vertex-label constraint applied to ``query`` at execution
    #: time.  Accepts the same spellings as the CLI/service surfaces — a
    #: ``{query node: int}`` mapping or a per-node list in the query's
    #: deterministic node order — and normalises either to a sorted tuple
    #: of ``(node, label)`` pairs so requests stay hashable.  ``None``
    #: keeps the query's own labels (or unlabeled counting if it has none).
    labels: Optional[Tuple[Tuple[Hashable, int], ...]] = None
    #: trial policy for this request; accepts every
    #: :meth:`PrecisionSpec.coerce` spelling (spec / int / mapping).
    #: ``None`` inherits the engine's policy; when that is also unset the
    #: resolved ``trials`` count desugars to ``PrecisionSpec.fixed(trials)``
    #: (see :meth:`effective_precision`).  An explicit ``precision`` wins
    #: over ``trials`` when both are given.
    precision: Optional[PrecisionSpec] = None

    def __post_init__(self) -> None:
        if self.precision is not None and not isinstance(self.precision, PrecisionSpec):
            object.__setattr__(
                self, "precision", PrecisionSpec.coerce(self.precision)
            )
        labels = self.labels
        if labels is None:
            return
        if isinstance(labels, Mapping):
            mapping = dict(labels)
        elif isinstance(labels, (list, tuple)):
            if all(isinstance(e, tuple) and len(e) == 2 for e in labels):
                mapping = dict(labels)  # already (node, label) pairs
            else:
                # per-node list spelling, matched to query node order
                nodes = self.query.nodes()
                if len(labels) != len(nodes):
                    raise ValueError(
                        f"labels list needs one label per query node "
                        f"({len(nodes)}), got {len(labels)}"
                    )
                mapping = dict(zip(nodes, labels))
        else:
            raise ValueError(
                "labels must be a {node: int} mapping, a per-node list, or "
                f"(node, label) pairs, got {type(labels).__name__}"
            )
        normalized = tuple(
            sorted(
                ((node, int(lab)) for node, lab in mapping.items()),
                key=lambda kv: repr(kv[0]),
            )
        )
        object.__setattr__(self, "labels", normalized)

    def effective_query(self) -> QueryGraph:
        """``query`` with this request's ``labels`` applied (if any)."""
        if self.labels is None:
            return self.query
        return self.query.with_labels(dict(self.labels))

    def effective_precision(self) -> PrecisionSpec:
        """The trial policy this request resolves to.

        An explicit ``precision`` wins; otherwise the (resolved or
        default) ``trials`` count desugars to the equivalent fixed spec —
        the mapping that keeps every pre-precision call site, golden
        fixture, and cache key unchanged.
        """
        if self.precision is not None:
            return self.precision
        trials = self.trials if self.trials is not None else DEFAULT_TRIALS
        return PrecisionSpec.fixed(trials)

    def resolved(self, config: EngineConfig) -> "CountRequest":
        """This request with every ``None`` field filled from ``config``."""
        changes = {
            name: getattr(config, name)
            for name in _INHERITED
            if getattr(self, name) is None
        }
        return replace(self, **changes) if changes else self

    def replace(self, **changes: object) -> "CountRequest":
        """A copy of this request with ``changes`` applied."""
        return replace(self, **changes)
