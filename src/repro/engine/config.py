"""Immutable configuration objects for the counting engine.

Two frozen dataclasses replace the long positional signatures of the
legacy free functions:

* :class:`EngineConfig` — per-engine defaults, fixed when the engine is
  constructed (method, trials, seed, palette, workers, simulated ranks);
* :class:`CountRequest` — one query execution; every field except the
  query itself is optional and inherits from the engine's config when
  left as ``None``.

Both are hashable value objects: requests can be deduplicated, logged,
or replayed, and a resolved request fully determines the estimate for a
given graph (same seeds → bit-identical results).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Mapping, Optional, Tuple

from ..decomposition.tree import Plan
from ..distributed.runtime import ExecutionContext
from ..query.query import QueryGraph

__all__ = ["EngineConfig", "CountRequest"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide defaults applied to every request that omits a field.

    ``method="db"`` keeps the paper's contribution as the default kernel;
    pass ``method="auto"`` to let the registry pick per query (treelet DP
    for trees, ``ps-dist`` for huge inputs when ``workers > 1``,
    ``ps-vec`` for large ones, DB otherwise).  ``nranks > 1`` attaches a
    simulated-rank execution context to every run and reports its
    :class:`LoadStats` — the *predicted* cost model.  ``workers`` fans
    independent trials over processes for ordinary backends; for the
    distributed ``ps-dist`` backend it is the shard count and
    ``partition_strategy`` picks how vertices map to shard processes.
    """

    method: str = "db"
    trials: int = 10
    seed: int = 0
    num_colors: Optional[int] = None
    workers: int = 1
    nranks: int = 1
    partition_strategy: str = "block"
    coloring_strategy: str = "uniform"
    #: array-namespace spec for the vectorized backends ("numpy", "strict",
    #: "cupy", "torch", "auto"); ``None`` means the process default (the
    #: ``REPRO_ARRAY_NAMESPACE`` env var, or NumPy).  Counts are
    #: bit-identical across namespaces — this knob moves execution, not
    #: semantics — but it still enters the request fingerprint so cached
    #: results carry their provenance.
    namespace: Optional[str] = None
    #: relative cost of shipping one table entry vs one local operation,
    #: used by RunResult.makespan/speedup on simulated (nranks>1) runs
    kappa: float = 0.5
    plan_limit: int = 20000

    def replace(self, **changes: object) -> "EngineConfig":
        """A copy of this config with ``changes`` applied."""
        return replace(self, **changes)


#: CountRequest fields that fall back to the engine config when ``None``.
_INHERITED = (
    "method",
    "trials",
    "seed",
    "num_colors",
    "workers",
    "nranks",
    "coloring_strategy",
    "namespace",
)


@dataclass(frozen=True)
class CountRequest:
    """One counting job: a query plus optional per-request overrides.

    ``None`` means "inherit from :class:`EngineConfig`" for every field
    in ``method / trials / seed / num_colors / workers / nranks /
    coloring_strategy``.  ``plan`` overrides the engine's plan cache and
    ``ctx`` supplies an external :class:`ExecutionContext` (the legacy
    ``make_context`` flow); both default to engine-managed objects.
    """

    query: QueryGraph
    method: Optional[str] = None
    trials: Optional[int] = None
    seed: Optional[int] = None
    num_colors: Optional[int] = None
    workers: Optional[int] = None
    nranks: Optional[int] = None
    coloring_strategy: Optional[str] = None
    #: array-namespace spec for the vectorized backends (see EngineConfig)
    namespace: Optional[str] = None
    plan: Optional[Plan] = None
    ctx: Optional[ExecutionContext] = None
    #: optional vertex-label constraint applied to ``query`` at execution
    #: time.  Accepts the same spellings as the CLI/service surfaces — a
    #: ``{query node: int}`` mapping or a per-node list in the query's
    #: deterministic node order — and normalises either to a sorted tuple
    #: of ``(node, label)`` pairs so requests stay hashable.  ``None``
    #: keeps the query's own labels (or unlabeled counting if it has none).
    labels: Optional[Tuple[Tuple[Hashable, int], ...]] = None

    def __post_init__(self) -> None:
        labels = self.labels
        if labels is None:
            return
        if isinstance(labels, Mapping):
            mapping = dict(labels)
        elif isinstance(labels, (list, tuple)):
            if all(isinstance(e, tuple) and len(e) == 2 for e in labels):
                mapping = dict(labels)  # already (node, label) pairs
            else:
                # per-node list spelling, matched to query node order
                nodes = self.query.nodes()
                if len(labels) != len(nodes):
                    raise ValueError(
                        f"labels list needs one label per query node "
                        f"({len(nodes)}), got {len(labels)}"
                    )
                mapping = dict(zip(nodes, labels))
        else:
            raise ValueError(
                "labels must be a {node: int} mapping, a per-node list, or "
                f"(node, label) pairs, got {type(labels).__name__}"
            )
        normalized = tuple(
            sorted(
                ((node, int(lab)) for node, lab in mapping.items()),
                key=lambda kv: repr(kv[0]),
            )
        )
        object.__setattr__(self, "labels", normalized)

    def effective_query(self) -> QueryGraph:
        """``query`` with this request's ``labels`` applied (if any)."""
        if self.labels is None:
            return self.query
        return self.query.with_labels(dict(self.labels))

    def resolved(self, config: EngineConfig) -> "CountRequest":
        """This request with every ``None`` field filled from ``config``."""
        changes = {
            name: getattr(config, name)
            for name in _INHERITED
            if getattr(self, name) is None
        }
        return replace(self, **changes) if changes else self

    def replace(self, **changes: object) -> "CountRequest":
        """A copy of this request with ``changes`` applied."""
        return replace(self, **changes)
