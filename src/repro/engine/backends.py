"""Pluggable counting backends behind one protocol.

Every kernel in the repo — the PS baseline, the DB contribution, the
``ps-even`` ablation, the vectorized ``ps-vec`` kernels, the sharded
multiprocess ``ps-dist`` executor, the FASCIA-style treelet DP and the
brute-force reference — is wrapped as a :class:`CountingBackend`: one
object with a uniform ``count_colorful(g, query, colors, ...)`` surface
plus the capability flags the engine needs for dispatch (does it consume
a decomposition plan? can it attribute work to simulated ranks? does
``workers`` mean shard processes? which queries/palettes does it
support?).

Backends live in a :class:`BackendRegistry`.  Registering a new kernel
is a decorator::

    @register_backend("mykernel")
    def my_kernel(g, query, colors, *, plan, ctx, num_colors):
        return ...  # colorful-match count under ``colors``

``method="auto"`` asks the registry to pick per query: the treelet DP
for acyclic queries under the paper's ``num_colors == k`` palette, DB
everywhere else.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..distributed.executor import ShardedExecutor, count_colorful_ps_dist
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..query.query import QueryGraph
from ..query.treewidth import is_tree
from ..counting.bruteforce import count_colorful_matches
from ..counting.solver import METHODS, VEC_METHOD, solve_plan
from ..counting.treelet import count_colorful_treelet
from ..counting.vectorized import MAX_COLORS_VEC, solve_plan_vectorized
from ..counting.xp import (
    ArrayNamespace,
    BackendUnavailable,
    NamespaceLike,
    as_namespace,
    gpu_namespace,
)

__all__ = [
    "CountingBackend",
    "BackendRegistry",
    "register_backend",
    "get_backend",
    "available_backends",
    "DEFAULT_REGISTRY",
    "AUTO",
    "VEC_AUTO_MIN_SIZE",
    "DIST_AUTO_MIN_SIZE",
    "DIST_METHOD",
    "GPU_METHOD",
]

#: sentinel method name resolved per query by the registry
AUTO = "auto"

#: ``method="auto"`` switches from the dict kernels to the vectorized PS
#: backend once ``n + m`` reaches this size — below it, per-call numpy
#: overhead can exceed the interpreter cost the vectorization removes
VEC_AUTO_MIN_SIZE = 2000

#: ``method="auto"`` escalates from ``ps-vec`` to the sharded multiprocess
#: executor on very large inputs (``n + m`` at least this size) when the
#: caller asked for ``workers > 1`` — below it, process orchestration
#: overhead eats the parallel gain
DIST_AUTO_MIN_SIZE = 150_000

#: registry name of the sharded multiprocess backend
DIST_METHOD = "ps-dist"

#: registry name of the CUDA vectorized backend; never picked by ``auto``
GPU_METHOD = "ps-gpu"


class CountingBackend:
    """One counting kernel behind the engine's uniform interface.

    Subclasses (or function backends built by :func:`register_backend`)
    implement :meth:`count_colorful` and advertise capabilities through
    ``needs_plan`` (consumes a decomposition plan) and ``tracks_load``
    (threads an :class:`ExecutionContext` for simulated-rank accounting).
    """

    #: registry key; also reported in RunResult provenance
    name: str = ""
    #: whether the kernel consumes a decomposition plan
    needs_plan: bool = False
    #: whether the kernel attributes operations to a simulated context
    tracks_load: bool = False
    #: whether ``workers`` means shard processes (engine passes a pooled
    #: executor and runs trials sequentially) rather than trial fan-out
    distributed: bool = False
    #: whether :meth:`count_colorful` accepts a ``namespace`` kwarg (the
    #: array-namespace knob threaded from EngineConfig/CountRequest)
    uses_namespace: bool = False

    def namespace_handle(self, namespace: NamespaceLike = None) -> ArrayNamespace:
        """Resolve the array namespace this backend would execute on.

        Only meaningful when ``uses_namespace``; the engine calls this to
        record the resolved name in RunResult provenance.
        """
        return as_namespace(namespace)

    def supports(self, query: QueryGraph, num_colors: Optional[int] = None) -> bool:
        """Whether this backend can count ``query`` under the palette."""
        return True

    def check(self, query: QueryGraph, num_colors: Optional[int] = None) -> None:
        """Raise ``ValueError`` when :meth:`supports` is False."""
        if not self.supports(query, num_colors):
            raise ValueError(
                f"backend {self.name!r} does not support query "
                f"{query.name!r} (k={query.k}, num_colors={num_colors})"
            )

    def count_colorful(
        self,
        g: Graph,
        query: QueryGraph,
        colors: Sequence[int],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
    ) -> int:
        """Colorful matches of ``query`` in ``g`` under ``colors``."""
        raise NotImplementedError

    def count_colorful_batch(
        self,
        g: Graph,
        query: QueryGraph,
        colorings: Sequence[Sequence[int]],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
        **extra: object,
    ) -> List[int]:
        """Colorful counts for a batch of colorings (one per trial).

        The engine's adaptive scheduler feeds trials through this seam
        so backends with per-call orchestration cost can amortise it —
        the sharded ``ps-dist`` executor runs the whole batch under one
        run-lock acquisition.  The default is the obvious loop and is
        bit-identical to calling :meth:`count_colorful` per coloring
        (which the parity tests pin down for every backend).
        """
        return [
            self.count_colorful(
                g, query, colors, plan=plan, ctx=ctx,
                num_colors=num_colors, **extra,  # type: ignore[arg-type]
            )
            for colors in colorings
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class SolverBackend(CountingBackend):
    """Plan-solver kernels (``ps``, ``db``, ``ps-even``) from Section 7."""

    needs_plan = True
    tracks_load = True

    def __init__(self, method: str) -> None:
        if method not in METHODS:
            raise ValueError(f"solver method must be one of {METHODS}")
        self.name = method

    def count_colorful(
        self,
        g: Graph,
        query: QueryGraph,
        colors: Sequence[int],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
    ) -> int:
        """Solve the plan bottom-up with this backend's join method."""
        plan = plan if plan is not None else heuristic_plan(query)
        return solve_plan(
            plan,
            g,
            np.asarray(colors),
            ctx=ctx,
            method=self.name,
            num_colors=num_colors,
        )


class VectorizedBackend(CountingBackend):
    """``ps-vec`` — PS re-expressed as batched numpy table operations.

    Bit-identical to ``ps`` on the same plan/coloring, typically an order
    of magnitude faster on the stand-in graphs; cannot attribute work to
    simulated ranks (``tracks_load=False``) and packs signatures in one
    ``int64`` word, so the palette is capped at ``MAX_COLORS_VEC``.
    """

    name = VEC_METHOD
    needs_plan = True
    tracks_load = False
    uses_namespace = True

    def supports(self, query: QueryGraph, num_colors: Optional[int] = None) -> bool:
        """Any query, as long as the palette fits one signature word."""
        kc = num_colors if num_colors is not None else query.k
        return kc <= MAX_COLORS_VEC

    def count_colorful(
        self,
        g: Graph,
        query: QueryGraph,
        colors: Sequence[int],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
        namespace: NamespaceLike = None,
    ) -> int:
        """Solve the plan with the vectorized PS kernels (ctx is ignored).

        ``namespace`` picks the array handle (None: the process default,
        normally NumPy); counts are bit-identical across namespaces.
        """
        self.check(query, num_colors)
        plan = plan if plan is not None else heuristic_plan(query)
        return solve_plan_vectorized(
            plan, g, np.asarray(colors), num_colors=num_colors,
            xp=self.namespace_handle(namespace),
        )


class GpuBackend(VectorizedBackend):
    """``ps-gpu`` — the same vectorized sweep, pinned to a CUDA namespace.

    Identical kernels to ``ps-vec``: the audited seam in
    :mod:`repro.counting.xp` is the only difference in execution (arrays
    live on the device; CSR/coloring/label masks transfer at solver
    construction, one Python scalar comes back per block root).

    Availability is a *device* property: :meth:`supports` is False on
    hosts without CuPy/torch + CUDA, and ``method="auto"`` never selects
    this backend — silently moving a workload onto a GPU would change
    its performance envelope and memory residency behind the caller's
    back.  Counts remain bit-identical to ``ps``/``ps-vec`` (int64
    arithmetic is exact on every namespace).
    """

    name = GPU_METHOD

    def namespace_handle(self, namespace: NamespaceLike = None) -> ArrayNamespace:
        """A CUDA handle (CuPy preferred, then torch); never a CPU one."""
        if isinstance(namespace, str) or namespace is None:
            return gpu_namespace(namespace)
        if getattr(namespace, "device", "cpu") != "cuda":
            raise ValueError(
                f"method 'ps-gpu' requires a CUDA namespace, got {namespace!r}"
            )
        return namespace

    def supports(self, query: QueryGraph, num_colors: Optional[int] = None) -> bool:
        """Palette fits one int64 word *and* a CUDA namespace is usable."""
        if not super().supports(query, num_colors):
            return False
        try:
            gpu_namespace(None)
        except (BackendUnavailable, ValueError):
            return False
        return True

    def check(self, query: QueryGraph, num_colors: Optional[int] = None) -> None:
        """Raise with the device-side reason, not just 'unsupported'."""
        try:
            gpu_namespace(None)
        except BackendUnavailable as exc:
            raise ValueError(str(exc)) from exc
        super().check(query, num_colors)


class DistributedBackend(CountingBackend):
    """``ps-dist`` — the vectorized PS DP sharded across worker processes.

    Partitions the data graph's vertices over real OS processes
    (shared-memory CSR, boundary table exchange between supersteps) and
    reduces per-shard results to a count bit-identical to ``ps``/
    ``ps-vec``.  The ``distributed`` flag tells the engine to interpret
    ``workers`` as the shard count (and to reuse a pooled
    :class:`~repro.distributed.executor.ShardedExecutor` across trials)
    instead of fanning trials out.
    """

    name = DIST_METHOD
    needs_plan = True
    tracks_load = False
    #: engine dispatch hint: ``workers`` means shard ranks, not trial fan-out
    distributed = True

    def supports(self, query: QueryGraph, num_colors: Optional[int] = None) -> bool:
        """Same envelope as ``ps-vec``: palette must fit one int64 word."""
        kc = num_colors if num_colors is not None else query.k
        return kc <= MAX_COLORS_VEC

    def count_colorful(
        self,
        g: Graph,
        query: QueryGraph,
        colors: Sequence[int],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
        workers: Optional[int] = None,
        partition: str = "block",
        executor: Optional[ShardedExecutor] = None,
    ) -> int:
        """Run the sharded executor (ctx is ignored; see ``tracks_load``).

        ``executor`` reuses a live worker pool (the engine passes its
        cached one); otherwise a transient pool is created for this call.
        """
        self.check(query, num_colors)
        plan = plan if plan is not None else heuristic_plan(query)
        return count_colorful_ps_dist(
            g, query, colors, plan=plan, num_colors=num_colors,
            workers=workers, strategy=partition, executor=executor,
        )

    def count_colorful_batch(
        self,
        g: Graph,
        query: QueryGraph,
        colorings: Sequence[Sequence[int]],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
        workers: Optional[int] = None,
        partition: str = "block",
        executor: Optional[ShardedExecutor] = None,
        **extra: object,
    ) -> List[int]:
        """Run a batch of trials through the executor's batch protocol.

        One run-lock acquisition covers the whole batch: the trials
        cannot interleave with concurrent service jobs sharing the
        pooled executor, and plan registration is amortised once.
        Counts are bit-identical to per-coloring :meth:`count_colorful`.
        """
        self.check(query, num_colors)
        plan = plan if plan is not None else heuristic_plan(query)
        if executor is not None:
            if executor.graph is not g:
                raise ValueError("executor is bound to a different data graph")
            return [
                r.count
                for r in executor.count_batch(plan, colorings, num_colors=num_colors)
            ]
        with ShardedExecutor(g, workers=workers, strategy=partition) as ex:
            return [
                r.count
                for r in ex.count_batch(plan, colorings, num_colors=num_colors)
            ]


class TreeletBackend(CountingBackend):
    """FASCIA-style DP for acyclic queries (paper's treewidth-1 context)."""

    name = "treelet"

    def supports(self, query: QueryGraph, num_colors: Optional[int] = None) -> bool:
        """Trees only, the paper's exact ``k``-color palette, unlabeled.

        Labeled queries fall through to the PS/DB family (``auto`` then
        picks ``ps-vec``/``ps-dist``/``db``), which carry label masks.
        """
        return (
            is_tree(query)
            and (num_colors is None or num_colors == query.k)
            and query.labels is None
        )

    def count_colorful(
        self,
        g: Graph,
        query: QueryGraph,
        colors: Sequence[int],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
    ) -> int:
        """Run the bottom-up treelet DP (plan and ctx are ignored)."""
        self.check(query, num_colors)
        return count_colorful_treelet(g, query, colors)


class BruteforceBackend(CountingBackend):
    """Exhaustive backtracking reference — exponential, validation only."""

    name = "bruteforce"

    def count_colorful(
        self,
        g: Graph,
        query: QueryGraph,
        colors: Sequence[int],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
    ) -> int:
        """Enumerate colorful matches directly (plan and ctx are ignored)."""
        return count_colorful_matches(g, query, colors)


class _FunctionBackend(CountingBackend):
    """Adapter turning a plain counting function into a backend."""

    def __init__(
        self,
        name: str,
        fn: Callable[..., int],
        needs_plan: bool = False,
        tracks_load: bool = False,
        supports: Optional[Callable[[QueryGraph, Optional[int]], bool]] = None,
    ) -> None:
        self.name = name
        self._fn = fn
        self.needs_plan = needs_plan
        self.tracks_load = tracks_load
        self._supports = supports
        self.__doc__ = fn.__doc__ or type(self).__doc__

    def supports(self, query: QueryGraph, num_colors: Optional[int] = None) -> bool:
        """Delegate to the ``supports`` predicate given at registration."""
        if self._supports is None:
            return True
        return self._supports(query, num_colors)

    def count_colorful(
        self,
        g: Graph,
        query: QueryGraph,
        colors: Sequence[int],
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
    ) -> int:
        """Call the wrapped counting function."""
        return self._fn(g, query, colors, plan=plan, ctx=ctx, num_colors=num_colors)


class BackendRegistry:
    """Named collection of :class:`CountingBackend` objects.

    The engine resolves ``method`` strings here; ``"auto"`` picks per
    query.  Registries are cheap to construct, so tests can build
    private ones, but most code shares :data:`DEFAULT_REGISTRY`.
    """

    def __init__(self) -> None:
        self._backends: Dict[str, CountingBackend] = {}

    # ------------------------------------------------------------------
    def register(self, backend: CountingBackend, replace: bool = False) -> CountingBackend:
        """Add ``backend`` under its ``name``; duplicate names must opt in."""
        if not backend.name:
            raise ValueError("backend must have a non-empty name")
        if backend.name == AUTO:
            raise ValueError(f"{AUTO!r} is reserved for per-query dispatch")
        if backend.name in self._backends and not replace:
            raise ValueError(f"backend {backend.name!r} already registered")
        self._backends[backend.name] = backend
        return backend

    def backend(
        self,
        name: str,
        needs_plan: bool = False,
        tracks_load: bool = False,
        supports: Optional[Callable[[QueryGraph, Optional[int]], bool]] = None,
        replace: bool = False,
    ) -> Callable[[Callable[..., int]], CountingBackend]:
        """Decorator: register ``fn(g, query, colors, *, plan, ctx,
        num_colors) -> int`` as a backend named ``name``."""

        def wrap(fn: Callable[..., int]) -> CountingBackend:
            return self.register(
                _FunctionBackend(
                    name, fn, needs_plan=needs_plan,
                    tracks_load=tracks_load, supports=supports,
                ),
                replace=replace,
            )

        return wrap

    # ------------------------------------------------------------------
    def get(self, name: str) -> CountingBackend:
        """Backend by name; raises the legacy 'unknown method' error."""
        try:
            return self._backends[name]
        except KeyError:
            raise ValueError(
                f"unknown method {name!r}; use one of {self.names()} or {AUTO!r}"
            ) from None

    def names(self) -> List[str]:
        """Registered backend names in registration order."""
        return list(self._backends)

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def resolve(
        self,
        method: str,
        query: QueryGraph,
        num_colors: Optional[int] = None,
        need_load_tracking: bool = False,
        graph: Optional[Graph] = None,
        workers: int = 1,
    ) -> CountingBackend:
        """Pick the backend for ``method`` (handling ``"auto"``) and
        verify it supports the query/palette/tracking combination.

        ``auto`` picks per query (and, when ``graph`` is given, per input
        size): the treelet DP for acyclic queries under the paper's
        palette, the sharded multiprocess executor for very large inputs
        when ``workers > 1`` was requested, the vectorized PS kernels for
        large inputs, DB otherwise.
        """
        if method == AUTO:
            treelet = self._backends.get("treelet")
            vec = self._backends.get(VEC_METHOD)
            dist = self._backends.get(DIST_METHOD)
            if (
                not need_load_tracking
                and treelet is not None
                and treelet.supports(query, num_colors)
            ):
                backend = treelet
            elif (
                not need_load_tracking
                and workers > 1
                and dist is not None
                and dist.supports(query, num_colors)
                and graph is not None
                and graph.n + graph.m >= DIST_AUTO_MIN_SIZE
            ):
                backend = dist
            elif (
                not need_load_tracking
                and vec is not None
                and vec.supports(query, num_colors)
                and graph is not None
                and graph.n + graph.m >= VEC_AUTO_MIN_SIZE
            ):
                backend = vec
            else:
                backend = self.get("db")
        else:
            backend = self.get(method)
        backend.check(query, num_colors)
        if need_load_tracking and not backend.tracks_load:
            raise ValueError(
                f"backend {backend.name!r} cannot attribute load to "
                "simulated ranks; use 'ps', 'db' or 'ps-even' with nranks > 1"
            )
        return backend


def _make_default_registry() -> BackendRegistry:
    reg = BackendRegistry()
    for method in METHODS:  # ps, db, ps-even
        reg.register(SolverBackend(method))
    reg.register(VectorizedBackend())
    reg.register(GpuBackend())
    reg.register(DistributedBackend())
    reg.register(TreeletBackend())
    reg.register(BruteforceBackend())
    return reg


#: process-global registry shared by every engine that does not bring its own
DEFAULT_REGISTRY = _make_default_registry()


def register_backend(
    name: str,
    needs_plan: bool = False,
    tracks_load: bool = False,
    supports: Optional[Callable[[QueryGraph, Optional[int]], bool]] = None,
    replace: bool = False,
) -> Callable[[Callable[..., int]], CountingBackend]:
    """Decorator registering a counting function in the default registry."""
    return DEFAULT_REGISTRY.backend(
        name, needs_plan=needs_plan, tracks_load=tracks_load,
        supports=supports, replace=replace,
    )


def get_backend(name: str) -> CountingBackend:
    """Backend by name from the default registry."""
    return DEFAULT_REGISTRY.get(name)


def available_backends() -> List[str]:
    """Names registered in the default registry."""
    return DEFAULT_REGISTRY.names()
