"""`CountingEngine` — session-oriented facade over the counting stack.

An engine is bound to one data graph and owns the cross-query state the
legacy free functions recomputed on every call:

* a **plan cache** — the Section 6 planner runs exactly once per
  distinct query structure, however many trials/requests reuse it;
* a **partition cache** — simulated-rank partitions are built once per
  ``(nranks, strategy)`` pair;
* a **backend registry** — every kernel (PS, DB, ps-even, treelet DP,
  brute force) behind one protocol, so ``method="auto"`` can pick per
  query and new kernels plug in via a decorator.

Single queries run through :meth:`CountingEngine.count`, batches through
:meth:`CountingEngine.count_many`; both accept :class:`CountRequest`
objects or raw queries plus keyword overrides.  ``workers=N`` fans the
independent color-coding trials out over processes, bit-identical to the
sequential path for the same seed (colorings are drawn up front from the
same deterministic batch).  With a *distributed* backend
(``method="ps-dist"``) ``workers`` instead sizes the shard pool: each
trial runs once, sharded across N real worker processes, and the engine
keeps the pool alive across trials/requests (a fourth cache — close it
with :meth:`CountingEngine.close` or an engine ``with`` block).
"""

from __future__ import annotations

import atexit
import math
import multiprocessing as mp
import threading
import time
import warnings
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..distributed.executor import ShardedExecutor

from .. import obs
from ..obs import catalogue as obs_catalogue
from ..counting.colorings import coloring_batch, coloring_stream
from ..counting.bruteforce import count_matches
from ..counting.estimator import StreamingEstimate, normalization_factor
from ..decomposition.planner import heuristic_plan
from ..decomposition.tree import Plan
from ..distributed.partition import Partition, make_partition
from ..distributed.runtime import ExecutionContext
from ..graph.graph import Graph
from ..query.query import QueryGraph
from ..theory.bounds import estimator_relative_variance_bound
from .backends import BackendRegistry, DEFAULT_REGISTRY, SolverBackend
from .config import CountRequest, EngineConfig, PrecisionSpec
from .result import RunResult

__all__ = ["CountingEngine", "EngineStats", "ProgressCallback"]

if TYPE_CHECKING:
    from typing import Callable

    #: signature of the optional per-batch progress hook: receives the
    #: JSON-safe snapshot built by :func:`_progress_snapshot`
    ProgressCallback = Callable[[Dict[str, object]], None]
else:  # pragma: no cover - runtime alias only
    ProgressCallback = object


def _progress_snapshot(
    acc: StreamingEstimate, spec: PrecisionSpec
) -> Dict[str, object]:
    """JSON-safe refining-CI snapshot handed to progress callbacks.

    This is what the service's job endpoints surface while a run is in
    flight: the trials spent so far against the policy's bounds, the
    current estimate, and the confidence interval as it tightens.
    """
    hw = acc.relative_halfwidth(spec.confidence)
    low, high = acc.interval(spec.confidence)
    finite = math.isfinite(hw)
    return {
        "trials_done": acc.trials,
        "min_trials": spec.min_trials,
        "max_trials": spec.max_trials,
        "target_rel_error": spec.rel_error,
        "confidence": spec.confidence,
        "estimate": acc.estimate,
        "rel_halfwidth": hw if finite else None,
        "ci_low": low if finite else None,
        "ci_high": high if finite else None,
    }


@dataclass
class EngineStats:
    """Cache/work counters for one engine (observability + tests).

    ``plan_builds`` counts actual planner invocations; the batch-vs-loop
    parity tests assert it stays at one per distinct query.
    """

    plan_builds: int = 0
    plan_cache_hits: int = 0
    partition_builds: int = 0
    partition_cache_hits: int = 0
    requests: int = 0
    trials: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy (stable keys, safe to log/serialise)."""
        return {
            "plan_builds": self.plan_builds,
            "plan_cache_hits": self.plan_cache_hits,
            "partition_builds": self.partition_builds,
            "partition_cache_hits": self.partition_cache_hits,
            "requests": self.requests,
            "trials": self.trials,
        }


# ----------------------------------------------------------------------
# process-parallel trial execution (fork workers, module-level state)
# ----------------------------------------------------------------------
_WORKER_STATE: dict = {}


def _init_worker(
    backend: SolverBackend,
    graph: Graph,
    query: QueryGraph,
    plan: Optional[Plan],
    num_colors: Optional[int],
    extra: Dict[str, object],
    trace_id: Optional[str] = None,
) -> None:  # pragma: no cover
    _WORKER_STATE.update(
        backend=backend, graph=graph, query=query, plan=plan,
        num_colors=num_colors, extra=extra,
    )
    # re-establish the parent's trace ID across the fork boundary so any
    # spans recorded in this worker join the same trace
    if trace_id is not None:
        obs.set_trace_id(trace_id)


def _run_trial(colors: Sequence[int]) -> int:  # pragma: no cover - runs in subprocess
    s = _WORKER_STATE
    return s["backend"].count_colorful(
        s["graph"], s["query"], colors, plan=s["plan"],
        num_colors=s["num_colors"], **s["extra"],
    )


# ----------------------------------------------------------------------
# engine lifecycle: every live engine is closed at interpreter exit, so
# pooled shard workers (and their shared-memory segments) never outlive a
# clean shutdown — long-lived holders like repro.service rely on this as
# the safety net behind their explicit close()/signal handling
# ----------------------------------------------------------------------
_LIVE_ENGINES: "weakref.WeakSet[CountingEngine]" = weakref.WeakSet()


@atexit.register
def _close_live_engines() -> None:  # pragma: no cover - interpreter teardown
    for engine in list(_LIVE_ENGINES):
        try:
            engine.close()
        except Exception:
            pass


class CountingEngine:
    """Counting session bound to one data graph.

    Typical use::

        engine = CountingEngine(g)                      # defaults: DB, 10 trials
        result = engine.count(q, trials=5, seed=1)      # one query
        results = engine.count_many(queries, trials=5)  # plan cache shared
        fast = engine.count(q, workers=4)               # process-parallel trials

    Construction is cheap; all caches fill lazily.  ``config`` may be an
    :class:`EngineConfig` or keyword overrides (``CountingEngine(g,
    method="auto", nranks=8)``).
    """

    def __init__(
        self,
        graph: Graph,
        config: Optional[EngineConfig] = None,
        registry: Optional[BackendRegistry] = None,
        **overrides: object,
    ) -> None:
        self.graph = graph
        base = config if config is not None else EngineConfig()
        self.config = base.replace(**overrides) if overrides else base
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.stats = EngineStats()
        self._plan_cache: Dict[QueryGraph, Plan] = {}
        self._partition_cache: Dict[Tuple[int, str], Partition] = {}
        # caller-supplied plans re-rooted on a labeled query, keyed by
        # (id(original), labels); the original is kept in the value so
        # its id can never be recycled while the key is live.  Without
        # this, every labeled request reusing one plan would mint a new
        # Plan object — which a pooled ShardedExecutor would pin and
        # re-broadcast to its workers on every call.
        self._reroot_cache: Dict[Tuple[int, object], Tuple[Plan, Plan]] = {}
        self._executor_cache: Dict[Tuple[int, str], "ShardedExecutor"] = {}
        # engines are shared across threads (the service's job workers):
        # _cache_lock guards the plan/partition caches and the stats
        # counters (so "planned exactly once per engine" and the exact
        # counter invariants hold under concurrency), _executor_lock the
        # executor pool map; counting itself is reentrant, and each
        # ShardedExecutor serializes its own runs
        self._cache_lock = threading.Lock()
        self._executor_lock = threading.Lock()
        _LIVE_ENGINES.add(self)

    # ------------------------------------------------------------------
    # caches
    # ------------------------------------------------------------------
    def plan_for(self, query: QueryGraph) -> Plan:
        """The cached decomposition plan for ``query`` (planning once)."""
        plan, _ = self._plan_for(query)
        return plan

    def _plan_for(self, query: QueryGraph) -> Tuple[Plan, bool]:
        with self._cache_lock:
            plan = self._plan_cache.get(query)
            if plan is not None:
                self.stats.plan_cache_hits += 1
        if plan is not None:
            obs_catalogue.engine_plan_cache().inc(result="hit")
            return plan, True
        # build outside the lock so a slow planner run never stalls
        # other queries' cache hits; on a lost race the winner's plan is
        # used and only the insert counts as a build (exact counters)
        built = heuristic_plan(query, limit=self.config.plan_limit)
        with self._cache_lock:
            plan = self._plan_cache.get(query)
            if plan is not None:
                self.stats.plan_cache_hits += 1
            else:
                self.stats.plan_builds += 1
                self._plan_cache[query] = built
        if plan is not None:
            obs_catalogue.engine_plan_cache().inc(result="hit")
            return plan, True
        obs_catalogue.engine_plan_cache().inc(result="miss")
        return built, False

    def _effective_plan(self, plan: Plan, query: QueryGraph) -> Plan:
        """``plan`` re-rooted on ``query`` when their labels differ.

        The solvers read label masks off ``plan.query``, so a
        caller-built plan for the unlabeled twin must be re-rooted or
        request-level labels would be silently ignored.  Re-rooted plans
        are cached per ``(plan, labels)`` so repeated requests reuse one
        object (stable ``id()`` for the executor's plan registry).
        """
        if plan.query.labels == query.labels:
            return plan
        label_key = (
            tuple(sorted(query.labels.items(), key=lambda kv: repr(kv[0])))
            if query.labels is not None
            else None
        )
        key = (id(plan), label_key)
        with self._cache_lock:
            hit = self._reroot_cache.get(key)
            if hit is not None and hit[0] is plan:
                return hit[1]
        rerooted = plan.with_query(query)
        with self._cache_lock:
            hit = self._reroot_cache.setdefault(key, (plan, rerooted))
        return hit[1]

    def partition_for(self, nranks: int, strategy: Optional[str] = None) -> Partition:
        """The cached vertex partition for ``(nranks, strategy)``."""
        strategy = strategy or self.config.partition_strategy
        key = (nranks, strategy)
        with self._cache_lock:
            part = self._partition_cache.get(key)
            if part is not None:
                self.stats.partition_cache_hits += 1
                return part
            part = make_partition(self.graph.n, nranks, strategy)
            self.stats.partition_builds += 1
            self._partition_cache[key] = part
            return part

    def make_context(self, nranks: Optional[int] = None, track: bool = True) -> ExecutionContext:
        """Fresh execution context over the cached partition."""
        nranks = nranks if nranks is not None else self.config.nranks
        return ExecutionContext(self.partition_for(nranks), track=track)

    def executor_for(self, workers: int, strategy: Optional[str] = None) -> "ShardedExecutor":
        """The cached live :class:`ShardedExecutor` for ``(workers, strategy)``.

        Worker pools are expensive to start, so the engine keeps them
        alive across requests and trials; :meth:`close` (or leaving an
        engine ``with`` block) stops them.  A pool that died (worker
        crash) is transparently replaced.
        """
        from ..distributed.executor import ShardedExecutor

        strategy = strategy or self.config.partition_strategy
        key = (workers, strategy)
        with self._executor_lock:
            executor = self._executor_cache.get(key)
            if executor is None or executor.closed:
                executor = ShardedExecutor(self.graph, workers=workers, strategy=strategy)
                self._executor_cache[key] = executor
            return executor

    def executors(self) -> List["ShardedExecutor"]:
        """Snapshot of the live pooled executors (thread-safe)."""
        with self._executor_lock:
            return list(self._executor_cache.values())

    def close(self) -> None:
        """Stop any live shard-worker pools.

        Idempotent and safe to call from teardown paths (``with`` exit,
        ``atexit``, signal handlers): repeated calls are no-ops, a
        failing pool never blocks the rest from closing, and the engine
        stays usable — the next distributed request simply starts a
        fresh pool.
        """
        with self._executor_lock:
            executors = list(self._executor_cache.values())
            self._executor_cache.clear()
        for executor in executors:
            try:
                executor.close()
            except Exception:  # pragma: no cover - teardown must not raise
                pass

    def __enter__(self) -> "CountingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def clear_caches(self) -> None:
        """Drop cached plans/partitions and stop pooled executors
        (counters are kept)."""
        with self._cache_lock:
            self._plan_cache.clear()
            self._partition_cache.clear()
            self._reroot_cache.clear()
        self.close()

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def count_exact(self, query: QueryGraph) -> int:
        """Exact match count by brute force (small inputs only)."""
        return count_matches(self.graph, query)

    def count_colorful(
        self,
        query: QueryGraph,
        colors: Sequence[int],
        method: Optional[str] = None,
        plan: Optional[Plan] = None,
        ctx: Optional[ExecutionContext] = None,
        num_colors: Optional[int] = None,
    ) -> int:
        """Colorful matches under one fixed coloring (no estimation)."""
        method = method if method is not None else self.config.method
        backend = self.registry.resolve(
            method, query, num_colors,
            need_load_tracking=ctx is not None, graph=self.graph,
            workers=self.config.workers,
        )
        if backend.needs_plan and plan is None:
            plan, _ = self._plan_for(query)
        if plan is not None:
            plan = self._effective_plan(plan, query)
        return backend.count_colorful(
            self.graph, query, colors, plan=plan, ctx=ctx, num_colors=num_colors,
            **self._distributed_extra(backend, self.config.workers),
            **self._namespace_extra(backend, self.config.namespace),
        )

    def _distributed_extra(self, backend: SolverBackend, workers: int) -> Dict[str, object]:
        """Extra kwargs for a distributed backend: shard count, partition
        strategy, and the engine's pooled executor (empty otherwise)."""
        if not backend.distributed:
            return {}
        return dict(
            workers=workers,
            partition=self.config.partition_strategy,
            executor=self.executor_for(workers),
        )

    def _namespace_extra(
        self, backend: SolverBackend, namespace: Optional[str]
    ) -> Dict[str, object]:
        """Extra kwargs for a namespace-aware backend: the array-namespace
        spec it resolves at execution time (empty outside the seam).  The
        spec string crosses process boundaries, not a live handle — fork
        workers resolve their own (GPU contexts don't survive fork)."""
        if not backend.uses_namespace:
            return {}
        return {"namespace": namespace}

    def count(
        self,
        request: Union[CountRequest, QueryGraph],
        on_progress: Optional["ProgressCallback"] = None,
        **overrides: object,
    ) -> RunResult:
        """Estimate the match count of one query.

        ``request`` is a :class:`CountRequest` or a raw query; keyword
        overrides win over both the request and the engine config.
        Returns a :class:`RunResult` carrying the estimate plus
        provenance (backend, plan, timings, optional load stats).

        The trial policy comes from the request's ``precision``
        (:class:`~repro.engine.config.PrecisionSpec`) or, when unset,
        the bare ``trials`` knob — a fixed policy that runs exactly that
        many colorings, bit-identical to the pre-precision engine.  With
        ``rel_error`` set the scheduler stops as soon as the empirical
        confidence interval meets the target (never under ``min_trials``
        nor over ``max_trials``); ``on_progress``, if given, receives a
        JSON-safe refining-CI snapshot after every trial batch.

        ``workers > 1`` and simulated-rank accounting are mutually
        exclusive: with ``nranks > 1`` (or an explicit ``ctx``) trials
        run sequentially and a warning is emitted; on platforms without
        ``fork`` the engine silently falls back to sequential execution
        (check ``RunResult.workers`` for what actually ran).
        """
        if isinstance(request, QueryGraph):
            request = CountRequest(query=request)
        if overrides:
            request = request.replace(**overrides)
        return self._execute(request.resolved(self.config), on_progress=on_progress)

    def count_many(
        self,
        requests: Iterable[Union[CountRequest, QueryGraph]],
        **overrides: object,
    ) -> List[RunResult]:
        """Run a batch of queries/requests against the shared caches.

        Each query's plan is built exactly once per engine regardless of
        how many requests (or trials) reuse it; results are bit-identical
        to calling :meth:`count` per query with the same parameters.
        """
        return [self.count(req, **overrides) for req in requests]

    # ------------------------------------------------------------------
    def _execute(
        self,
        r: CountRequest,
        on_progress: Optional["ProgressCallback"] = None,
    ) -> RunResult:
        # observability shell: mint (or inherit) the request's trace ID,
        # wrap the run in the engine-level span, and account the request
        # into the metrics registry.  The trace ID deliberately does NOT
        # enter CountRequest — it would shear request fingerprints — and
        # rides the obs contextvar plus explicit worker handoffs instead.
        trace_id = obs.current_trace_id()
        token = None
        if trace_id is None:
            trace_id = obs.new_trace_id()
            token = obs.set_trace_id(trace_id)
        try:
            with obs.span(
                "engine.count",
                graph=self.graph.name or "graph",
                query=r.query.name or "query",
                method=r.method,
            ) as sp:
                result = self._execute_traced(r, trace_id, on_progress=on_progress)
                sp.add(
                    backend=result.method,
                    trials=result.trials_used,
                    stopped_early=result.stopped_early,
                )
        finally:
            if token is not None:
                obs.reset_trace_id(token)
        obs_catalogue.engine_requests().inc(method=result.method)
        obs_catalogue.engine_request_seconds().observe(
            result.wall_clock or 0.0, method=result.method
        )
        obs_catalogue.engine_trials().inc(result.trials_used)
        if result.stopped_early:
            obs_catalogue.engine_stopped_early().inc()
        return result

    def _execute_traced(
        self,
        r: CountRequest,
        trace_id: str,
        on_progress: Optional["ProgressCallback"] = None,
    ) -> RunResult:
        # request-level labels specialise the query before planning, so
        # the plan cache keys labeled and unlabeled variants separately
        q = r.effective_query()
        # the trial policy: an explicit PrecisionSpec, or bare trials
        # desugared to the equivalent fixed spec (validates trials >= 1)
        spec = r.effective_precision()
        adaptive = spec.is_adaptive
        cap = spec.max_trials
        k = q.k
        kc = r.num_colors if r.num_colors is not None else k
        if kc < k:
            raise ValueError(f"need at least k={k} colors, got num_colors={kc}")
        scale = normalization_factor(k, kc)

        # external ctx (legacy make_context flow) wins over config nranks
        ctx = r.ctx
        if ctx is None and r.nranks > 1:
            ctx = self.make_context(r.nranks)
        backend = self.registry.resolve(
            r.method, q, r.num_colors,
            need_load_tracking=ctx is not None, graph=self.graph,
            workers=r.workers,
        )
        # for a distributed backend ``workers`` is the shard count: trials
        # run sequentially, each sharded across the pooled worker processes
        distributed = backend.distributed
        # resolve the namespace up front: provenance records what actually
        # ran, and an unavailable explicit namespace fails before any work
        namespace = (
            backend.namespace_handle(r.namespace).name
            if backend.uses_namespace else None
        )

        plan, plan_cached = r.plan, r.plan is not None
        if plan is not None:
            plan = self._effective_plan(plan, q)
        if plan is None and backend.needs_plan:
            plan, plan_cached = self._plan_for(q)

        workers = r.workers if distributed else min(r.workers, cap)
        if workers > 1 and ctx is not None:
            # per-rank accounting mutates one shared context; trials must
            # run in-process to keep the LoadStats coherent
            warnings.warn(
                "workers > 1 is ignored when a simulated-rank context is "
                "attached (nranks > 1 or ctx=...); running trials sequentially",
                stacklevel=3,
            )
        try:
            # worker state is inherited by forked processes; platforms
            # without fork (Windows) fall back to sequential execution
            fork = mp.get_context("fork")
        except ValueError:
            fork = None
        parallel = (
            not distributed
            and workers > 1 and cap >= 2 and ctx is None and fork is not None
        )
        ns_extra = self._namespace_extra(backend, r.namespace)
        extra = {**self._distributed_extra(backend, workers), **ns_extra}
        # the streaming accumulator doubles as the CI provenance for
        # fixed runs and as the stopping rule for adaptive ones; the
        # Chebyshev fallback bound kicks in on degenerate variance
        acc = StreamingEstimate(
            scale, rel_variance_bound=estimator_relative_variance_bound(k, kc)
        )
        stopped_early = False
        t0 = time.perf_counter()
        trial_times: Optional[List[float]]
        counts: List[int]
        if not adaptive:
            # fixed policy: the historical path, bit for bit — one batch
            # of exactly cap colorings, all of them executed
            colorings = coloring_batch(
                self.graph.n, kc, cap, r.seed, strategy=r.coloring_strategy
            )
            if parallel:
                with fork.Pool(
                    processes=workers,
                    initializer=_init_worker,
                    initargs=(
                        backend, self.graph, q, plan, r.num_colors, ns_extra,
                        trace_id,
                    ),
                ) as pool:
                    counts = pool.map(_run_trial, colorings)
                trial_times = None
                for c in counts:
                    acc.push(int(c))
            else:
                if not distributed:
                    workers = 1
                counts = []
                trial_times = []
                for colors in colorings:
                    t1 = time.perf_counter()
                    with obs.span("engine.trial", index=len(counts)):
                        counts.append(
                            backend.count_colorful(
                                self.graph, q, colors, plan=plan, ctx=ctx,
                                num_colors=r.num_colors, **extra,
                            )
                        )
                    trial_times.append(time.perf_counter() - t1)
                    acc.push(int(counts[-1]))
                    if on_progress is not None:
                        on_progress(_progress_snapshot(acc, spec))
        else:
            # adaptive policy: draw colorings lazily from the *same*
            # generator stream the fixed path batches from, so the first
            # t trials of any adaptive run are bit-identical to a fixed
            # t-trial run under the same seed (the parity invariant)
            stream = coloring_stream(
                self.graph.n, kc, r.seed, strategy=r.coloring_strategy
            )
            if not parallel and not distributed:
                workers = 1
            # batch granularity: enough to keep a process pool busy, one
            # trial at a time otherwise (finest-grained stopping)
            step = workers if parallel else 1
            counts = []
            trial_times = None
            pool = None
            try:
                if parallel:
                    pool = fork.Pool(
                        processes=workers,
                        initializer=_init_worker,
                        initargs=(
                            backend, self.graph, q, plan, r.num_colors, ns_extra,
                            trace_id,
                        ),
                    )
                while len(counts) < cap:
                    if len(counts) < spec.min_trials:
                        want = spec.min_trials - len(counts)
                    else:
                        want = step
                    want = max(1, min(want, cap - len(counts)))
                    batch = [next(stream) for _ in range(want)]
                    with obs.span("engine.batch", start=len(counts), size=want):
                        if pool is not None:
                            new = pool.map(_run_trial, batch)
                        else:
                            new = backend.count_colorful_batch(
                                self.graph, q, batch, plan=plan, ctx=ctx,
                                num_colors=r.num_colors, **extra,
                            )
                    for c in new:
                        acc.push(int(c))
                        counts.append(int(c))
                    if on_progress is not None:
                        on_progress(_progress_snapshot(acc, spec))
                    if len(counts) >= spec.min_trials and acc.precision_met(
                        spec.rel_error, spec.confidence
                    ):
                        stopped_early = len(counts) < cap
                        break
            finally:
                if pool is not None:
                    pool.close()
                    pool.join()
        wall = time.perf_counter() - t0

        hw = acc.relative_halfwidth(spec.confidence)
        ci_low: Optional[float] = None
        ci_high: Optional[float] = None
        if math.isfinite(hw):
            ci_low, ci_high = acc.interval(spec.confidence)

        trials_used = len(counts)
        with self._cache_lock:
            self.stats.requests += 1
            self.stats.trials += trials_used
        return RunResult(
            query_name=q.name,
            graph_name=self.graph.name,
            trials=trials_used,
            colorful_counts=[int(c) for c in counts],
            scale=scale,
            method=backend.name,
            seed=r.seed,
            num_colors=kc,
            workers=workers,
            namespace=namespace,
            plan=plan,
            plan_cached=plan_cached,
            trial_times=trial_times,
            wall_clock=wall,
            load=ctx.stats if ctx is not None and ctx.track else None,
            kappa=self.config.kappa,
            trials_used=trials_used,
            stopped_early=stopped_early,
            ci_low=ci_low,
            ci_high=ci_high,
            trace_id=trace_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._cache_lock:
            plans_cached = len(self._plan_cache)
        return (
            f"CountingEngine({self.graph.name or 'graph'!s}, n={self.graph.n}, "
            f"m={self.graph.m}, method={self.config.method!r}, "
            f"plans_cached={plans_cached})"
        )
