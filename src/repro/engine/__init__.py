"""Unified counting engine: pluggable backends, plan reuse, batching.

This package is the public entry point for counting workloads.  Where
the legacy surface scattered the pipeline over free functions with
divergent signatures, the engine binds a session to one data graph and
funnels every query through one coherent API::

    from repro.engine import CountingEngine

    engine = CountingEngine(g)                       # DB kernel defaults
    result = engine.count(q, trials=5, seed=1)       # RunResult
    batch  = engine.count_many(queries, trials=5)    # shared plan cache
    fast   = engine.count(q, workers=4)              # process-parallel trials

Pieces:

* :class:`CountingEngine` — the session object (plan/partition caches,
  batch execution, worker dispatch, simulated-rank contexts);
* :class:`EngineConfig` / :class:`CountRequest` — immutable parameter
  objects replacing long positional signatures;
* :class:`RunResult` — estimate + provenance (backend, plan, timings,
  optional :class:`LoadStats`);
* :class:`BackendRegistry` / :func:`register_backend` — the pluggable
  kernel seam (``ps``, ``db``, ``ps-even``, ``ps-vec``, ``ps-dist``,
  ``treelet``, ``bruteforce`` built in; ``method="auto"`` picks per
  query and input size).
"""

from .backends import (
    AUTO,
    BackendRegistry,
    CountingBackend,
    DEFAULT_REGISTRY,
    DIST_AUTO_MIN_SIZE,
    DIST_METHOD,
    VEC_AUTO_MIN_SIZE,
    available_backends,
    get_backend,
    register_backend,
)
from .config import CountRequest, EngineConfig, PrecisionSpec
from .engine import CountingEngine, EngineStats
from .fingerprint import canonical_query, canonical_request, request_fingerprint
from .result import RunResult, plan_summary

__all__ = [
    "CountingEngine",
    "EngineStats",
    "EngineConfig",
    "CountRequest",
    "PrecisionSpec",
    "RunResult",
    "plan_summary",
    "canonical_query",
    "canonical_request",
    "request_fingerprint",
    "CountingBackend",
    "BackendRegistry",
    "register_backend",
    "get_backend",
    "available_backends",
    "DEFAULT_REGISTRY",
    "AUTO",
    "VEC_AUTO_MIN_SIZE",
    "DIST_AUTO_MIN_SIZE",
    "DIST_METHOD",
]
