"""Stable request fingerprints: the service's cache / dedup key.

A counting request is fully determined by ``(dataset, query structure,
resolved execution parameters)`` — same fingerprint, bit-identical
:class:`~repro.engine.result.RunResult` payload (the engine draws every
coloring deterministically from the seed).  :func:`request_fingerprint`
hashes a canonical JSON rendering of exactly those inputs, so the
fingerprint is stable across processes, Python versions and dict
orderings — unlike ``hash()``, which is salted per interpreter.

The canonical forms are plain JSON-safe dicts (useful on their own for
logging/replay); the fingerprint is the SHA-256 of their sorted-key JSON
encoding.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from ..query.query import QueryGraph
from .config import CountRequest, EngineConfig

__all__ = ["canonical_query", "canonical_request", "request_fingerprint"]


def canonical_query(query: QueryGraph) -> Dict[str, object]:
    """JSON-safe canonical form of a query's *structure* (and labels).

    Node names are mapped to ``0..k-1`` in the query's deterministic
    node order (sorted by ``repr``), so two structurally identical
    queries built with different name spellings canonicalise the same
    way.  The name rides along: it is part of the cached
    :class:`~repro.engine.result.RunResult` payload (``query_name``), so
    requests that differ only in name must not share a cache entry.
    Vertex labels — which change the counts — are rendered in the same
    canonical node order (``None`` for unlabeled queries), so a labeled
    query can never collide with its unlabeled twin.
    """
    relabeled, _ = query.relabel_to_ints()
    edges = sorted(tuple(sorted(e)) for e in relabeled.edges())
    labels = (
        [relabeled.labels[i] for i in range(relabeled.k)]
        if relabeled.labels is not None
        else None
    )
    return {
        "name": query.name,
        "k": query.k,
        "edges": [list(e) for e in edges],
        "labels": labels,
    }


#: resolved request fields that determine the RunResult payload
_FINGERPRINT_FIELDS = (
    "method",
    "trials",
    "seed",
    "num_colors",
    "workers",
    "nranks",
    "coloring_strategy",
    "namespace",
)


def canonical_request(
    dataset: str,
    request: CountRequest,
    config: Optional[EngineConfig] = None,
) -> Dict[str, object]:
    """JSON-safe canonical form of one resolved counting request.

    ``request`` is resolved against ``config`` (default
    :class:`EngineConfig`) first, so a request that *inherits* ``seed=0``
    and one that *states* ``seed=0`` canonicalise identically.  Engine
    fields that shape the result payload beyond the request itself
    (partition strategy for distributed shards, the ``kappa`` cost model
    constant) come from the config.

    The trial policy canonicalises through
    :meth:`~repro.engine.config.CountRequest.effective_precision`:
    a non-adaptive policy collapses onto the legacy ``trials`` key (so a
    bare ``trials=N`` request and the equivalent
    ``PrecisionSpec(min_trials=N, max_trials=N)`` share a fingerprint,
    and every pre-precision cache key is unchanged), while an adaptive
    policy adds a ``precision`` sub-document — adaptive and fixed
    requests can therefore never collide in the cache even when their
    realised trial counts coincide.
    """
    cfg = config if config is not None else EngineConfig()
    resolved = request.resolved(cfg)
    doc: Dict[str, object] = {
        "dataset": dataset,
        # request-level labels are folded into the canonical query — the
        # engine executes exactly this effective query
        "query": canonical_query(resolved.effective_query()),
        "partition_strategy": cfg.partition_strategy,
        "kappa": cfg.kappa,
    }
    for field in _FINGERPRINT_FIELDS:
        doc[field] = getattr(resolved, field)
    spec = resolved.effective_precision()
    if spec.is_adaptive:
        # trials is pinned to the cap so the irrelevant bare knob can
        # never split (or alias) adaptive cache entries
        doc["trials"] = spec.max_trials
        doc["precision"] = spec.to_dict()
    else:
        doc["trials"] = spec.max_trials
    return doc


def request_fingerprint(
    dataset: str,
    request: CountRequest,
    config: Optional[EngineConfig] = None,
) -> str:
    """Hex SHA-256 fingerprint of one resolved counting request.

    Stable across processes and runs: equal fingerprints guarantee
    bit-identical result *payloads* — counts, provenance and the
    ``query_name`` label alike (same dataset contents assumed) — so the
    service's :class:`~repro.service.cache.ResultCache` and in-flight
    dedup key on it directly.
    """
    doc = canonical_request(dataset, request, config)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
