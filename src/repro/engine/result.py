"""Unified run result: the legacy estimate plus execution provenance.

:class:`RunResult` subclasses the estimator's :class:`EstimateResult`
(so every consumer of ``estimate`` / ``relative_std`` /
``coefficient_of_variation`` keeps working unchanged) and records how
the numbers were produced: which backend ran, under which seed/palette,
the decomposition plan that was used (and whether it came from the
engine's cache), per-trial wall-clock timings, and the simulated-rank
:class:`LoadStats` when a distributed context was attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..counting.estimator import EstimateResult
from ..decomposition.tree import Plan
from ..distributed.runtime import LoadStats

__all__ = ["RunResult"]


@dataclass
class RunResult(EstimateResult):
    """Estimate plus provenance for one engine run.

    Inherits the statistical surface of :class:`EstimateResult`
    (``estimate``, ``colorful_mean``, ``relative_std``,
    ``coefficient_of_variation``, ``estimated_subgraphs``); adds the
    execution record.  ``trial_times`` is ``None`` for process-parallel
    runs, where per-trial wall clocks are not individually meaningful.
    """

    method: str = ""
    seed: int = 0
    num_colors: int = 0
    workers: int = 1
    plan: Optional[Plan] = None
    plan_cached: bool = False
    trial_times: Optional[List[float]] = None
    wall_clock: float = 0.0
    load: Optional[LoadStats] = None
    kappa: float = 0.5

    @property
    def time_per_trial(self) -> float:
        """Average wall-clock seconds per trial."""
        return self.wall_clock / self.trials if self.trials else 0.0

    @property
    def makespan(self) -> float:
        """Modeled parallel time under the engine's ``kappa`` (simulated
        runs only; 0.0 when no load statistics were tracked)."""
        return self.load.makespan(self.kappa) if self.load is not None else 0.0

    @property
    def speedup(self) -> float:
        """Modeled speedup over one rank (simulated runs only)."""
        return self.load.speedup(self.kappa) if self.load is not None else 1.0

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI)."""
        bits = [
            f"{self.query_name} on {self.graph_name}",
            f"method={self.method}",
            f"trials={self.trials}",
            f"estimate={self.estimate:.6g}",
            f"rel_std={self.relative_std:.4f}",
            f"wall={self.wall_clock:.3f}s",
        ]
        if self.workers > 1:
            bits.insert(3, f"workers={self.workers}")
        if self.load is not None:
            bits.append(f"nranks={self.load.nranks}")
        return "  ".join(bits)
