"""Unified run result: the legacy estimate plus execution provenance.

:class:`RunResult` subclasses the estimator's :class:`EstimateResult`
(so every consumer of ``estimate`` / ``relative_std`` /
``coefficient_of_variation`` keeps working unchanged) and records how
the numbers were produced: which backend ran, under which seed/palette,
the decomposition plan that was used (and whether it came from the
engine's cache), per-trial wall-clock timings, and the simulated-rank
:class:`LoadStats` when a distributed context was attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..counting.estimator import EstimateResult
from ..decomposition.tree import Plan
from ..distributed.runtime import LoadStats

__all__ = ["RunResult", "plan_summary", "WIRE_VERSION"]

#: serialization format version emitted by :meth:`RunResult.to_dict`.
#: v1 (implicit, pre-adaptive) lacked ``wire_version`` and the CI /
#: adaptive-provenance fields; :meth:`RunResult.from_dict` accepts both.
#: ``trace_id`` is an optional v2 key (absent/None on older documents).
WIRE_VERSION = 2


def plan_summary(plan: Plan) -> Dict[str, object]:
    """JSON-safe digest of a decomposition plan (the wire form of a
    :class:`Plan`: enough to reason about cost, no block objects)."""
    return {
        "blocks": len(plan.blocks()),
        "longest_cycle": plan.longest_cycle(),
        "boundary_nodes": plan.total_boundary_nodes(),
        "annotations": plan.total_annotations(),
        "cycle_annotations": plan.cycle_annotations(),
    }


@dataclass
class RunResult(EstimateResult):
    """Estimate plus provenance for one engine run.

    Inherits the statistical surface of :class:`EstimateResult`
    (``estimate``, ``colorful_mean``, ``relative_std``,
    ``coefficient_of_variation``, ``estimated_subgraphs``); adds the
    execution record.  ``trial_times`` is ``None`` for process-parallel
    runs, where per-trial wall clocks are not individually meaningful.
    """

    method: str = ""
    seed: int = 0
    num_colors: int = 0
    workers: int = 1
    #: resolved array namespace the backend executed under ("numpy",
    #: "strict", ...); ``None`` for backends that do not use the seam
    namespace: Optional[str] = None
    plan: Optional[Plan] = None
    plan_cached: bool = False
    trial_times: Optional[List[float]] = None
    wall_clock: float = 0.0
    load: Optional[LoadStats] = None
    kappa: float = 0.5
    #: plan digest carried by deserialized results (``plan`` itself does
    #: not survive the wire; see :meth:`to_dict` / :meth:`from_dict`)
    plan_digest: Optional[Dict[str, object]] = None
    #: trials actually executed (equals ``trials``; kept explicit so wire
    #: consumers can tell an adaptive run's spend from its cap)
    trials_used: int = 0
    #: whether the adaptive stopping rule fired before ``max_trials``
    stopped_early: bool = False
    #: empirical CI on ``estimate`` at the run's confidence level;
    #: ``None`` when no finite interval could be computed (degenerate
    #: variance with no usable fallback)
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    #: observability trace ID minted (or inherited) for this run; joins
    #: the result to its spans in a collected trace.  Not part of the
    #: request fingerprint — two identical requests get distinct IDs.
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.trials_used:
            self.trials_used = self.trials

    @property
    def time_per_trial(self) -> float:
        """Average wall-clock seconds per trial."""
        return self.wall_clock / self.trials if self.trials else 0.0

    @property
    def makespan(self) -> float:
        """Modeled parallel time under the engine's ``kappa`` (simulated
        runs only; 0.0 when no load statistics were tracked)."""
        return self.load.makespan(self.kappa) if self.load is not None else 0.0

    @property
    def speedup(self) -> float:
        """Modeled speedup over one rank (simulated runs only)."""
        return self.load.speedup(self.kappa) if self.load is not None else 1.0

    # ------------------------------------------------------------------
    # deterministic serialization (the service's wire format)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict rendering of this result.

        Deterministic for a given result: stable keys, plain
        lists/scalars only.  The decomposition plan is reduced to its
        :func:`plan_summary` digest and :class:`LoadStats` to its own
        ``to_dict`` form; derived statistics (``estimate``,
        ``relative_std``, ``coefficient_of_variation``) are included for
        consumers that never reconstruct the object.  Round trip:
        ``RunResult.from_dict(r.to_dict())`` preserves every stored field
        (with ``plan`` flattened to ``plan_digest``), and serializing
        again yields an identical dict.
        """
        digest = self.plan_digest
        if digest is None and self.plan is not None:
            digest = plan_summary(self.plan)
        return {
            "wire_version": WIRE_VERSION,
            "query_name": self.query_name,
            "graph_name": self.graph_name,
            "trials": self.trials,
            "colorful_counts": [int(c) for c in self.colorful_counts],
            "scale": float(self.scale),
            "method": self.method,
            "seed": self.seed,
            "num_colors": self.num_colors,
            "workers": self.workers,
            "namespace": self.namespace,
            "plan": dict(digest) if digest is not None else None,
            "plan_cached": bool(self.plan_cached),
            "trial_times": (
                [float(t) for t in self.trial_times]
                if self.trial_times is not None else None
            ),
            "wall_clock": float(self.wall_clock),
            "load": self.load.to_dict() if self.load is not None else None,
            "kappa": float(self.kappa),
            "trials_used": int(self.trials_used),
            "stopped_early": bool(self.stopped_early),
            "ci_low": float(self.ci_low) if self.ci_low is not None else None,
            "ci_high": float(self.ci_high) if self.ci_high is not None else None,
            "trace_id": self.trace_id,
            # derived, for dashboards/JSON consumers (ignored by from_dict)
            "estimate": float(self.estimate),
            "relative_std": float(self.relative_std),
            "coefficient_of_variation": float(self.coefficient_of_variation),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output.

        The plan digest round-trips via ``plan_digest`` (the full
        :class:`Plan` object does not cross the wire); an attached
        :class:`LoadStats` is reconstructed exactly.  Accepts both wire
        v2 documents and v1 documents (no ``wire_version`` key, no
        CI/adaptive fields — rolling-upgrade safety): the missing fields
        default to the fixed-run reading (``trials_used = trials``, no
        early stop, no recorded interval).
        """
        version = int(doc.get("wire_version", 1))  # type: ignore[arg-type]
        if version > WIRE_VERSION:
            raise ValueError(
                f"unsupported RunResult wire_version {version} "
                f"(this build reads <= {WIRE_VERSION})"
            )
        load_doc = doc.get("load")
        return cls(
            query_name=str(doc["query_name"]),
            graph_name=str(doc["graph_name"]),
            trials=int(doc["trials"]),
            colorful_counts=[int(c) for c in doc["colorful_counts"]],
            scale=float(doc["scale"]),
            method=str(doc.get("method", "")),
            seed=int(doc.get("seed", 0)),
            num_colors=int(doc.get("num_colors", 0)),
            workers=int(doc.get("workers", 1)),
            namespace=(
                str(doc["namespace"])
                if doc.get("namespace") is not None else None
            ),
            plan=None,
            plan_cached=bool(doc.get("plan_cached", False)),
            trial_times=(
                [float(t) for t in doc["trial_times"]]
                if doc.get("trial_times") is not None else None
            ),
            wall_clock=float(doc.get("wall_clock", 0.0)),
            load=LoadStats.from_dict(load_doc) if load_doc is not None else None,
            kappa=float(doc.get("kappa", 0.5)),
            plan_digest=dict(doc["plan"]) if doc.get("plan") is not None else None,
            trials_used=int(doc.get("trials_used", doc["trials"])),
            stopped_early=bool(doc.get("stopped_early", False)),
            ci_low=(
                float(doc["ci_low"]) if doc.get("ci_low") is not None else None
            ),
            ci_high=(
                float(doc["ci_high"]) if doc.get("ci_high") is not None else None
            ),
            trace_id=(
                str(doc["trace_id"]) if doc.get("trace_id") is not None else None
            ),
        )

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI)."""
        trials_bit = f"trials={self.trials}"
        if self.stopped_early:
            trials_bit += " (early stop)"
        bits = [
            f"{self.query_name} on {self.graph_name}",
            f"method={self.method}",
            trials_bit,
            f"estimate={self.estimate:.6g}",
            f"rel_std={self.relative_std:.4f}",
            f"wall={self.wall_clock:.3f}s",
        ]
        if self.ci_low is not None and self.ci_high is not None:
            bits.insert(4, f"ci=[{self.ci_low:.6g}, {self.ci_high:.6g}]")
        if self.workers > 1:
            bits.insert(3, f"workers={self.workers}")
        if self.load is not None:
            bits.append(f"nranks={self.load.nranks}")
        return "  ".join(bits)
