"""Command-line interface: ``repro-count`` / ``python -m repro.cli``.

Subcommands
-----------
``count``      approximate match counting on a dataset or edge-list file;
``compare``    PS vs DB on one input (improvement factor, load balance);
``plan``       show the decomposition tree the planner picks for a query;
``verify``     run the self-verification battery on one input;
``trace``      superstep trace of a simulated distributed run;
``report``     aggregate saved benchmark tables into one document;
``datasets``   list the Table 1 stand-in graphs with their statistics;
``queries``    list the Figure 8 query library;
``serve``      boot the JSON/HTTP counting service (also ``repro-serve``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .bench.datasets import dataset, dataset_names
from .counting.xp import BackendUnavailable, KNOWN_NAMESPACES
from .decomposition.enumeration import enumerate_plans
from .decomposition.planner import choose_plan
from .graph.io import read_edge_list
from .graph.properties import graph_summary
from .engine import CountingEngine, PrecisionSpec, available_backends
from .query.automorphisms import automorphism_count
from .query.library import (
    PAPER_QUERY_SIZES,
    coerce_node_labels,
    labeled_queries,
    paper_queries,
    resolve_query_name,
)
from .query.treewidth import treewidth


def _load_graph(arg: str):
    if arg in dataset_names():
        return dataset(arg)
    return read_edge_list(arg)


def _cli_error(exc: BaseException) -> int:
    """Print a clean ``error: ...`` line and return exit code 2.

    ``KeyError`` carries its message in ``args[0]`` (``str()`` would
    repr-quote it); bare-path ``OSError``\\ s get a what-failed prefix.
    """
    if isinstance(exc, KeyError) and exc.args:
        msg = exc.args[0]
    elif isinstance(exc, OSError):
        msg = f"cannot read input: {exc}"
    else:
        msg = str(exc)
    print(f"error: {msg}", file=sys.stderr)
    return 2


def _parse_query_labels(q, spec: str):
    """``--labels`` spec → ``{query node: int}``.

    Two spellings: ``node=label`` pairs (``a=0,b=1``) or a bare
    comma-separated list with one label per node in the query's
    deterministic node order (``0,1,1,0``).  Validation (coverage,
    bounds, int coercion) is the service wire format's, via the shared
    :func:`repro.query.library.coerce_node_labels`.
    """
    spec = spec.strip()
    if "=" in spec:
        parsed: object = {}
        for item in spec.split(","):
            key, _, value = item.partition("=")
            parsed[key.strip()] = value.strip()
    else:
        parsed = [x.strip() for x in spec.split(",")]
    return coerce_node_labels(q, parsed)


def _apply_graph_labels(g, spec: str):
    """``--graph-labels`` spec → labeled copy of ``g``.

    ``random:<L>[:<seed>]`` draws one of ``L`` labels per vertex from a
    deterministic generator; anything else is a path to a whitespace- or
    newline-separated file with one integer per vertex.
    """
    if spec.startswith("random:"):
        parts = spec.split(":")
        num_labels = int(parts[1])
        seed = int(parts[2]) if len(parts) > 2 else 0
        rng = np.random.default_rng(seed)
        return g.with_labels(rng.integers(0, num_labels, size=g.n))
    with open(spec, "r", encoding="utf-8") as fh:
        values = [int(x) for x in fh.read().split()]
    return g.with_labels(values)


def _parse_precision(args: argparse.Namespace) -> Optional[PrecisionSpec]:
    """``--rel-error``/``--confidence``/``--min-trials``/``--max-trials``
    → a :class:`PrecisionSpec`, or ``None`` to fall back on ``--trials``.

    The spec is built through the same :meth:`PrecisionSpec.coerce`
    grammar the service wire format uses, so CLI and JSON spellings
    validate identically.
    """
    if args.rel_error is None and args.min_trials is None and args.max_trials is None:
        return None
    doc: dict = {}
    if args.rel_error is not None:
        doc["rel_error"] = args.rel_error
        doc["confidence"] = args.confidence
    if args.min_trials is not None:
        doc["min_trials"] = args.min_trials
    if args.max_trials is not None:
        doc["max_trials"] = args.max_trials
    return PrecisionSpec.coerce(doc)


def _cmd_count(args: argparse.Namespace) -> int:
    try:
        g = _load_graph(args.graph)
        q = resolve_query_name(args.query)
        if args.graph_labels:
            g = _apply_graph_labels(g, args.graph_labels)
        if args.labels:
            q = q.with_labels(_parse_query_labels(q, args.labels))
        precision = _parse_precision(args)
        trace: Optional[object] = None
        with CountingEngine(g, partition_strategy=args.partition) as engine:
            if args.trace:
                # collect the measured trace around the whole run and dump
                # it as one Chrome trace-event JSON (chrome://tracing,
                # Perfetto, or `python -m repro.obs.view`)
                from . import obs

                with obs.collect() as trace:
                    result = engine.count(
                        q,
                        trials=args.trials,
                        precision=precision,
                        seed=args.seed,
                        method=args.method,
                        num_colors=args.num_colors,
                        workers=args.workers,
                        namespace=args.namespace,
                    )
                obs.write_chrome_trace(args.trace, trace)
            else:
                result = engine.count(
                    q,
                    trials=args.trials,
                    precision=precision,
                    seed=args.seed,
                    method=args.method,
                    num_colors=args.num_colors,
                    workers=args.workers,
                    namespace=args.namespace,
                )
    except (KeyError, OSError, ValueError, BackendUnavailable) as exc:
        return _cli_error(exc)
    palette = f", num_colors={result.num_colors}" if result.num_colors != q.k else ""
    workers = f", workers={result.workers}" if result.workers > 1 else ""
    labeled = " labeled" if q.labels is not None else ""
    trials_bit = f"trials={result.trials_used}"
    if result.stopped_early:
        trials_bit += f" (early stop, cap {precision.max_trials})" if precision else " (early stop)"
    print(f"graph          : {g.name} (n={g.n}, m={g.m}"
          + (f", labels={g.num_labels()}" if g.labels is not None else "") + ")")
    print(f"query          : {q.name} (k={q.k}{labeled})")
    print(f"method         : {result.method}, {trials_bit}{palette}{workers}")
    print(f"colorful counts: {result.colorful_counts}")
    print(f"match estimate : {result.estimate:.6g}")
    print(f"subgraph est.  : {result.estimate / automorphism_count(q):.6g}")
    if result.ci_low is not None and result.ci_high is not None:
        conf = precision.confidence if precision is not None else 0.95
        print(f"{conf:.0%} CI         : [{result.ci_low:.6g}, {result.ci_high:.6g}]")
    print(f"rel. std       : {result.relative_std:.4f}")
    print(f"elapsed        : {result.wall_clock:.2f}s")
    if args.trace and trace is not None:
        print(f"trace          : {args.trace} ({len(trace)} spans, "
              f"id={result.trace_id})")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    try:
        q = resolve_query_name(args.query)
    except KeyError as exc:
        return _cli_error(exc)
    plans = enumerate_plans(q)
    best = choose_plan(q)
    print(f"query {q.name}: k={q.k}, treewidth={treewidth(q)}, plans={len(plans)}")
    print(f"heuristic key (longest cycle, boundary, annotations): {best.heuristic_key()}")
    print(best.describe())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .counting.colorings import uniform_coloring
    from .distributed.metrics import compare_methods

    try:
        g = _load_graph(args.graph)
        q = resolve_query_name(args.query)
        rng = np.random.default_rng(args.seed)
        colors = uniform_coloring(g.n, q.k, rng)
        cmp = compare_methods(g, q, colors, nranks=args.ranks)
    except (KeyError, OSError, ValueError) as exc:
        return _cli_error(exc)
    print(f"graph {g.name} (n={g.n}, m={g.m}, skew={g.degree_skew():.1f}) x "
          f"query {q.name} (k={q.k}) @ {args.ranks} simulated ranks")
    print(f"colorful count      : {cmp.db.count}")
    print(f"PS  makespan / imb  : {cmp.ps.makespan:.0f} / {cmp.ps.imbalance:.2f}")
    print(f"DB  makespan / imb  : {cmp.db.makespan:.0f} / {cmp.db.imbalance:.2f}")
    print(f"improvement factor  : {cmp.improvement_factor:.2f}x")
    print(f"max-load reduction  : {cmp.load_reduction:.2f}x")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .counting.verify import verify_counting

    try:
        g = _load_graph(args.graph)
        q = resolve_query_name(args.query)
        report = verify_counting(g, q, seed=args.seed)
    except (KeyError, OSError, ValueError) as exc:
        return _cli_error(exc)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .counting.colorings import uniform_coloring
    from .distributed.engine import run_distributed
    from .distributed.trace import format_trace

    try:
        g = _load_graph(args.graph)
        q = resolve_query_name(args.query)
        rng = np.random.default_rng(args.seed)
        colors = uniform_coloring(g.n, q.k, rng)
        run = run_distributed(g, q, colors, args.ranks, method=args.method)
    except (KeyError, OSError, ValueError) as exc:
        return _cli_error(exc)
    print(f"count={run.count} makespan={run.makespan:.0f} speedup={run.speedup:.2f}")
    print(format_trace(run.stats, top=args.top))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from .bench.report import render_report

    results_dir = args.results_dir or os.path.join(
        os.getcwd(), "benchmarks", "results"
    )
    print(render_report(results_dir))
    return 0


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``repro-serve`` flag set (shared by the standalone
    entry point and the ``serve`` subcommand; pure argparse so building
    the parser never imports the service/HTTP stack)."""
    parser.add_argument(
        "--dataset", action="append", default=None, metavar="SPEC", dest="datasets",
        help="dataset to register: builtin name, file path, or alias=path "
        "(repeatable; default: condmat)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port; 0 picks an ephemeral one (default: %(default)s)")
    parser.add_argument("--workers", type=int, default=2,
                        help="job-queue worker threads (default: %(default)s)")
    parser.add_argument("--queue-depth", type=int, default=32,
                        help="admission bound: queued jobs before 429 (default: %(default)s)")
    parser.add_argument("--cache-size", type=int, default=256,
                        help="result-cache entries, 0 disables (default: %(default)s)")
    parser.add_argument(
        "--method", choices=tuple(available_backends()) + ("auto",), default="db",
        help="default counting backend for requests that omit one (default: %(default)s)",
    )
    parser.add_argument("--trials", type=int, default=10,
                        help="default trials per request (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="default root seed (default: %(default)s)")
    parser.add_argument(
        "--engine-workers", type=int, default=1, metavar="N",
        help="EngineConfig.workers: trial fan-out processes, or the shard "
        "pool size with --method ps-dist (default: %(default)s)",
    )
    parser.add_argument("--partition", choices=("block", "cyclic", "hash"), default="block",
                        help="vertex partition strategy for ps-dist shards (default: %(default)s)")
    parser.add_argument("--verbose", action="store_true", help="log every HTTP request")
    parser.add_argument(
        "--access-log", action="store_true",
        help="one structured JSON line per request on stderr (method, "
        "path, status, duration_ms, trace_id); off by default",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.cli import run_serve

    return run_serve(args)


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in dataset_names():
        print(graph_summary(dataset(name)))
    return 0


def _cmd_queries(_args: argparse.Namespace) -> int:
    for name, q in paper_queries().items():
        print(
            f"{name:8s} k={q.k:2d} (paper: {PAPER_QUERY_SIZES[name]:2d}) "
            f"edges={q.num_edges():2d} tw={treewidth(q)}"
        )
    print("labeled templates (use with --graph-labels / labeled datasets):")
    for name, q in labeled_queries().items():
        labs = ",".join(str(q.labels[v]) for v in q.nodes())
        print(f"{name:14s} k={q.k:2d} edges={q.num_edges():2d} labels={labs}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-count",
        description="Color coding beyond trees: treewidth-2 subgraph counting",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_count = sub.add_parser("count", help="approximate match counting")
    p_count.add_argument("--graph", required=True, help="dataset name or edge-list path")
    p_count.add_argument("--query", required=True, help="paper query name (see `queries`)")
    p_count.add_argument(
        "--method",
        choices=tuple(available_backends()) + ("auto",),
        default="db",
        help="counting backend; 'auto' picks per query (default: db)",
    )
    p_count.add_argument("--trials", type=int, default=5,
                         help="fixed trial count (ignored when --rel-error / "
                         "--min-trials / --max-trials request a precision run)")
    p_count.add_argument(
        "--rel-error", type=float, default=None, metavar="EPS",
        help="adaptive precision: stop once the estimate's relative CI "
        "half-width is below EPS (e.g. 0.05) at --confidence",
    )
    p_count.add_argument(
        "--confidence", type=float, default=0.95, metavar="C",
        help="confidence level for the --rel-error stopping rule and the "
        "reported interval (default: %(default)s)",
    )
    p_count.add_argument(
        "--min-trials", type=int, default=None, metavar="N",
        help="floor before adaptive stopping may trigger (default: 3)",
    )
    p_count.add_argument(
        "--max-trials", type=int, default=None, metavar="N",
        help="hard cap on adaptive trials (default: 200)",
    )
    p_count.add_argument("--seed", type=int, default=0)
    p_count.add_argument(
        "--num-colors", type=int, default=None,
        help="palette size >= k (variance-reduction extension; default: k)",
    )
    p_count.add_argument(
        "--workers", type=int, default=1,
        help="process-parallel trials; with --method ps-dist, the number "
        "of shard worker processes (default: 1, sequential)",
    )
    p_count.add_argument(
        "--partition", choices=("block", "cyclic", "hash"), default="block",
        help="vertex partition strategy for ps-dist shards (default: block)",
    )
    p_count.add_argument(
        "--namespace", choices=KNOWN_NAMESPACES, default=None,
        help="array namespace for the vectorized backends (ps-vec/ps-gpu): "
        "numpy, strict (audited CPU stub), cupy, torch, or auto; default: "
        "the REPRO_ARRAY_NAMESPACE env var, else numpy",
    )
    p_count.add_argument(
        "--labels", default=None, metavar="SPEC",
        help="vertex-labeled counting: query labels as node=label pairs "
        "('a=0,b=1') or a per-node list ('0,1,1,0') in node order",
    )
    p_count.add_argument(
        "--graph-labels", default=None, metavar="SPEC",
        help="data-graph labels: a file with one integer per vertex, or "
        "'random:<L>[:<seed>]' for deterministic random labels",
    )
    p_count.add_argument(
        "--trace", default=None, metavar="OUT.json",
        help="write a Chrome trace-event JSON of the run (engine, solver "
        "stages, and — with ps-dist — per-rank worker spans); view with "
        "chrome://tracing or `python -m repro.obs.view`",
    )
    p_count.set_defaults(func=_cmd_count)

    p_plan = sub.add_parser("plan", help="show the chosen decomposition tree")
    p_plan.add_argument("--query", required=True)
    p_plan.set_defaults(func=_cmd_plan)

    p_cmp = sub.add_parser("compare", help="PS vs DB on one input")
    p_cmp.add_argument("--graph", required=True)
    p_cmp.add_argument("--query", required=True)
    p_cmp.add_argument("--ranks", type=int, default=16)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.set_defaults(func=_cmd_compare)

    p_ver = sub.add_parser("verify", help="run the self-verification battery")
    p_ver.add_argument("--graph", required=True)
    p_ver.add_argument("--query", required=True)
    p_ver.add_argument("--seed", type=int, default=0)
    p_ver.set_defaults(func=_cmd_verify)

    p_tr = sub.add_parser("trace", help="superstep trace of a simulated run")
    p_tr.add_argument("--graph", required=True)
    p_tr.add_argument("--query", required=True)
    p_tr.add_argument("--ranks", type=int, default=8)
    p_tr.add_argument("--method", choices=("ps", "db", "ps-even"), default="db")
    p_tr.add_argument("--seed", type=int, default=0)
    p_tr.add_argument("--top", type=int, default=8)
    p_tr.set_defaults(func=_cmd_trace)

    p_rep = sub.add_parser("report", help="aggregate saved benchmark tables")
    p_rep.add_argument("--results-dir", default=None)
    p_rep.set_defaults(func=_cmd_report)

    p_srv = sub.add_parser("serve", help="boot the JSON/HTTP counting service")
    add_serve_arguments(p_srv)
    p_srv.set_defaults(func=_cmd_serve)

    p_ds = sub.add_parser("datasets", help="list dataset stand-ins")
    p_ds.set_defaults(func=_cmd_datasets)

    p_q = sub.add_parser("queries", help="list the Figure 8 query library")
    p_q.set_defaults(func=_cmd_queries)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
