"""Query-graph isomorphism utilities.

Small-graph isomorphism testing and canonical forms, used to deduplicate
generated queries, to sanity-check the Figure 8 reconstructions (e.g.
glet2 really is the diamond graphlet) and to verify match counts are
isomorphism-invariant.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from .query import QueryGraph

__all__ = ["are_isomorphic", "find_isomorphism", "canonical_form", "degree_sequence"]


def degree_sequence(q: QueryGraph) -> Tuple[int, ...]:
    """Sorted degree sequence (an isomorphism invariant)."""
    return tuple(sorted(q.degree(v) for v in q.nodes()))


def find_isomorphism(
    a: QueryGraph, b: QueryGraph
) -> Optional[Dict[Hashable, Hashable]]:
    """A node bijection ``a -> b`` preserving adjacency exactly, or None.

    Backtracking with degree pruning; fine for the ≤ ~12-node queries of
    the paper (use networkx for anything bigger).
    """
    if a.k != b.k or a.num_edges() != b.num_edges():
        return None
    if degree_sequence(a) != degree_sequence(b):
        return None
    a_nodes = sorted(a.nodes(), key=lambda v: (-a.degree(v), repr(v)))
    b_nodes = b.nodes()
    b_by_degree: Dict[int, List[Hashable]] = {}
    for v in b_nodes:
        b_by_degree.setdefault(b.degree(v), []).append(v)

    mapping: Dict[Hashable, Hashable] = {}
    used: set = set()

    def backtrack(i: int) -> bool:
        if i == len(a_nodes):
            return True
        v = a_nodes[i]
        for cand in b_by_degree.get(a.degree(v), ()):
            if cand in used:
                continue
            ok = True
            for u in a.adj[v]:
                if u in mapping and mapping[u] not in b.adj[cand]:
                    ok = False
                    break
            if ok:
                # non-adjacency must also be preserved (exact isomorphism)
                for u, mu in mapping.items():
                    if (u in a.adj[v]) != (mu in b.adj[cand]):
                        ok = False
                        break
            if ok:
                mapping[v] = cand
                used.add(cand)
                if backtrack(i + 1):
                    return True
                del mapping[v]
                used.discard(cand)
        return False

    return dict(mapping) if backtrack(0) else None


def are_isomorphic(a: QueryGraph, b: QueryGraph) -> bool:
    """Whether an exact isomorphism ``a -> b`` exists."""
    return find_isomorphism(a, b) is not None


def canonical_form(q: QueryGraph) -> FrozenSet[Tuple[int, int]]:
    """Canonical edge set: lexicographically smallest over relabelings.

    Brute force over permutations — only for queries up to ~8 nodes
    (deduplicating generated test queries).  For larger graphs compare
    with :func:`are_isomorphic` pairwise instead.
    """
    qi, _ = q.relabel_to_ints()
    k = qi.k
    if k > 8:
        raise ValueError("canonical_form is factorial; limited to 8 nodes")
    edges = [tuple(sorted(e)) for e in qi.edges()]
    best: Optional[Tuple[Tuple[int, int], ...]] = None
    for perm in permutations(range(k)):
        relabeled = tuple(
            sorted(tuple(sorted((perm[u], perm[v]))) for u, v in edges)
        )
        if best is None or relabeled < best:
            best = relabeled
    return frozenset(best or ())
