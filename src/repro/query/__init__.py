"""Query graphs, treewidth machinery and the Figure 8 query library."""

from .automorphisms import automorphism_count, matches_to_subgraphs
from .generators import (
    random_cactus,
    random_partial_two_tree,
    random_series_parallel,
    random_tw2_query,
)
from .isomorphism import are_isomorphic, canonical_form, degree_sequence, find_isomorphism
from .library import (
    PAPER_QUERY_SIZES,
    all_fixture_queries,
    complete_binary_tree,
    cycle_query,
    diamond,
    labeled_queries,
    labeled_query,
    paper_queries,
    paper_query,
    path_query,
    resolve_query_name,
    satellite,
    star_query,
    with_random_labels,
)
from .query import QueryGraph
from .treedecomposition import (
    TreeDecomposition,
    tree_decomposition_tw2,
    verify_tree_decomposition,
)
from .treewidth import is_tree, is_treewidth_at_most_2, treewidth

__all__ = [
    "QueryGraph",
    "treewidth",
    "is_treewidth_at_most_2",
    "is_tree",
    "automorphism_count",
    "matches_to_subgraphs",
    "paper_query",
    "paper_queries",
    "PAPER_QUERY_SIZES",
    "satellite",
    "cycle_query",
    "path_query",
    "star_query",
    "diamond",
    "complete_binary_tree",
    "all_fixture_queries",
    "labeled_query",
    "labeled_queries",
    "resolve_query_name",
    "with_random_labels",
    "random_series_parallel",
    "random_partial_two_tree",
    "random_cactus",
    "random_tw2_query",
    "are_isomorphic",
    "find_isomorphism",
    "canonical_form",
    "degree_sequence",
    "TreeDecomposition",
    "tree_decomposition_tw2",
    "verify_tree_decomposition",
]
