"""Random treewidth-2 query generators.

The paper's class of queries — treewidth ≤ 2 — is exactly the class of
partial 2-trees (subgraphs of series-parallel graphs plus trees).  These
generators sample that space for property-based testing and for workload
sweeps beyond the fixed Figure 8 library:

* :func:`random_series_parallel` — random series-parallel graph between
  two terminals by repeated series/parallel composition;
* :func:`random_partial_two_tree` — a 2-tree grown by ear/vertex
  additions, then randomly sparsified (still connected);
* :func:`random_cactus` — cycles glued at single vertices (the shape of
  brain1 and friends);
* :func:`random_tw2_query` — a mixed sampler over the above plus trees.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from .query import QueryGraph
from .treewidth import is_treewidth_at_most_2

__all__ = [
    "random_series_parallel",
    "random_partial_two_tree",
    "random_cactus",
    "random_tw2_query",
]


def random_series_parallel(
    num_ops: int, rng: np.random.Generator, name: str = "sp"
) -> QueryGraph:
    """Random series-parallel graph via ``num_ops`` compositions.

    Starts from a single edge between terminals ``s`` and ``t``; each
    operation picks a random existing edge and either *subdivides* it
    (series) or *duplicates it through a fresh middle vertex* (parallel
    with a 2-path, keeping the graph simple).  Series-parallel graphs
    have treewidth ≤ 2 by construction.
    """
    edges: Set[Tuple[int, int]] = {(0, 1)}
    nxt = 2
    for _ in range(num_ops):
        edge_list = sorted(edges)
        a, b = edge_list[rng.integers(len(edge_list))]
        if rng.random() < 0.5:
            # series: a-b becomes a-x-b
            edges.discard((a, b))
            edges.add((min(a, nxt), max(a, nxt)))
            edges.add((min(nxt, b), max(nxt, b)))
        else:
            # parallel: add a second a-x-b path alongside a-b
            edges.add((min(a, nxt), max(a, nxt)))
            edges.add((min(nxt, b), max(nxt, b)))
        nxt += 1
    q = QueryGraph(sorted(edges), name=name)
    assert is_treewidth_at_most_2(q)
    return q


def random_partial_two_tree(
    k: int, rng: np.random.Generator, sparsify: float = 0.25, name: str = "p2t"
) -> QueryGraph:
    """Random connected partial 2-tree on ``k`` nodes.

    Grows a 2-tree (each new vertex attached to both endpoints of an
    existing edge), then removes a ``sparsify`` fraction of removable
    edges while keeping the graph connected.
    """
    if k < 2:
        return QueryGraph([], nodes=range(max(k, 1)), name=name)
    edges: Set[Tuple[int, int]] = {(0, 1)}
    for v in range(2, k):
        edge_list = sorted(edges)
        a, b = edge_list[rng.integers(len(edge_list))]
        edges.add((min(a, v), max(a, v)))
        edges.add((min(b, v), max(b, v)))
    # sparsify while preserving connectivity
    removable = sorted(edges)
    rng.shuffle(removable)
    target_removals = int(sparsify * len(removable))
    removed = 0
    for e in removable:
        if removed >= target_removals:
            break
        trial = set(edges)
        trial.discard(e)
        if _connected(k, trial):
            edges = trial
            removed += 1
    q = QueryGraph(sorted(edges), nodes=range(k), name=name)
    assert is_treewidth_at_most_2(q)
    return q


def random_cactus(
    num_cycles: int,
    rng: np.random.Generator,
    min_len: int = 3,
    max_len: int = 6,
    name: str = "cactus",
) -> QueryGraph:
    """Cycles glued at single shared vertices (brain1-style queries)."""
    edges: List[Tuple[int, int]] = []
    anchors = [0]
    nxt = 1
    for _ in range(num_cycles):
        length = int(rng.integers(min_len, max_len + 1))
        anchor = anchors[rng.integers(len(anchors))]
        ring = [anchor] + list(range(nxt, nxt + length - 1))
        nxt += length - 1
        for i in range(length):
            a, b = ring[i], ring[(i + 1) % length]
            edges.append((min(a, b), max(a, b)))
        anchors.extend(ring[1:])
    q = QueryGraph(sorted(set(edges)), name=name)
    assert is_treewidth_at_most_2(q)
    return q


def random_tw2_query(
    rng: np.random.Generator, max_k: int = 10, name: str = ""
) -> QueryGraph:
    """Mixed sampler over the treewidth-2 query space (incl. trees)."""
    kind = rng.integers(4)
    if kind == 0:
        q = random_series_parallel(int(rng.integers(2, max(3, max_k - 2))), rng)
    elif kind == 1:
        q = random_partial_two_tree(int(rng.integers(3, max_k + 1)), rng)
    elif kind == 2:
        q = random_cactus(int(rng.integers(1, 3)), rng)
    else:
        # random tree
        k = int(rng.integers(2, max_k + 1))
        edges = [(int(rng.integers(i)), i) for i in range(1, k)]
        q = QueryGraph(edges, nodes=range(k))
    if q.k > max_k:
        # regenerate smaller rather than truncate (keeps invariants simple)
        return random_tw2_query(rng, max_k=max_k, name=name)
    q.name = name or f"tw2-rand-{q.k}"
    return q


def _connected(n: int, edges: Set[Tuple[int, int]]) -> bool:
    adj: List[List[int]] = [[] for _ in range(n)]
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == n
