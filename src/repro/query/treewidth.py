"""Treewidth computation for small query graphs.

Two levels are provided:

* :func:`is_treewidth_at_most_2` — linear-time recognition of partial
  2-trees via the classic reduction rule (repeatedly delete degree-≤1
  vertices; splice out degree-2 vertices, connecting their neighbours).
  This is the gate every query must pass before the decomposition-tree
  machinery of the paper applies.
* :func:`treewidth` — exact treewidth by dynamic programming over vertex
  subsets (the Bodlaender–Held-Karp style elimination-ordering DP,
  ``O(2^k · k^2)``), fine for the paper's ≤ 12-node queries.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Hashable, List, Set

from .query import QueryGraph

__all__ = ["is_treewidth_at_most_2", "treewidth", "is_tree"]


def is_tree(q: QueryGraph) -> bool:
    """Connected and acyclic (treewidth exactly 1 unless edgeless)."""
    return q.is_connected() and q.num_edges() == q.k - 1


def is_treewidth_at_most_2(q: QueryGraph) -> bool:
    """Partial 2-tree recognition by reduction.

    A graph has treewidth ≤ 2 iff repeatedly (a) removing isolated and
    degree-1 vertices and (b) replacing a degree-2 vertex by an edge
    between its neighbours (if absent) reduces it to the empty graph.
    Works on disconnected graphs too.
    """
    adj: Dict[Hashable, Set[Hashable]] = {v: set(ns) for v, ns in q.adj.items()}
    queue = [v for v in adj if len(adj[v]) <= 2]
    while queue:
        v = queue.pop()
        if v not in adj:
            continue
        deg = len(adj[v])
        if deg > 2:
            continue
        if deg == 2:
            x, y = tuple(adj[v])
            adj[x].discard(v)
            adj[y].discard(v)
            if y not in adj[x]:
                adj[x].add(y)
                adj[y].add(x)
        elif deg == 1:
            (x,) = tuple(adj[v])
            adj[x].discard(v)
        del adj[v]
        for u in list(adj):
            if len(adj[u]) <= 2:
                queue.append(u)
    return not adj


def treewidth(q: QueryGraph) -> int:
    """Exact treewidth via subset DP over elimination orderings.

    ``tw(G) = min over orderings of max over v of |higher neighbours of v
    in the fill-in graph|``; computed as the classic recurrence
    ``f(S) = min_{v in S} max(f(S - v), |N(v) in G[S] reachable...|)``
    using the "Q-function": the cost of eliminating ``v`` from subset
    ``S`` is the number of vertices outside ``S`` reachable from ``v``
    through ``S``.  Exponential in ``k``; intended for ``k <= ~16``.
    """
    qi, _ = q.relabel_to_ints()
    k = qi.k
    if k == 0:
        return -1  # convention: empty graph
    if k > 20:
        raise ValueError("exact treewidth DP limited to 20 nodes")
    nbr_mask: List[int] = [0] * k
    for a, b in qi.edges():
        nbr_mask[a] |= 1 << b
        nbr_mask[b] |= 1 << a
    full = (1 << k) - 1

    @lru_cache(maxsize=None)
    def reach_cost(v: int, s_mask: int) -> int:
        """# vertices outside S ∪ {v} reachable from v via vertices in S."""
        seen = 1 << v
        stack = [v]
        outside = 0
        while stack:
            u = stack.pop()
            for w in range(k):
                bit = 1 << w
                if nbr_mask[u] & bit and not seen & bit:
                    seen |= bit
                    if s_mask & bit:
                        stack.append(w)
                    else:
                        outside += 1
        return outside

    @lru_cache(maxsize=None)
    def f(s_mask: int) -> int:
        """Min over orderings of S of the max elimination cost."""
        if s_mask == 0:
            return 0
        best = k
        sub = s_mask
        v = 0
        while sub:
            if sub & 1:
                rest = s_mask & ~(1 << v)
                cost = reach_cost(v, rest)
                best = min(best, max(cost, f(rest)))
            sub >>= 1
            v += 1
        return best

    result = f(full)
    f.cache_clear()
    reach_cost.cache_clear()
    return result
