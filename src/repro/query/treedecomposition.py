"""Explicit tree decompositions (paper Section 2, "Treewidth").

The decomposition-tree machinery of Section 4 never materialises a formal
tree decomposition — Lemma 4.1 only relies on one existing.  For
completeness (and to validate the treewidth bounds independently), this
module constructs an explicit width-≤2 tree decomposition for any partial
2-tree via the reduction sequence, and verifies the three defining
properties of Section 2 for arbitrary decompositions:

(i)  every query edge is inside some bag;
(ii) for every query node, the bags containing it form a connected
     subtree (equivalently: the running-intersection property);
(iii) width = max bag size - 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

from .query import QueryGraph

__all__ = ["TreeDecomposition", "tree_decomposition_tw2", "verify_tree_decomposition"]

Node = Hashable


@dataclass
class TreeDecomposition:
    """Bags plus tree edges over bag indices."""

    bags: List[FrozenSet[Node]]
    tree_edges: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def width(self) -> int:
        return max((len(b) for b in self.bags), default=0) - 1

    def bags_containing(self, v: Node) -> List[int]:
        return [i for i, b in enumerate(self.bags) if v in b]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TreeDecomposition(bags={len(self.bags)}, width={self.width})"


def tree_decomposition_tw2(q: QueryGraph) -> TreeDecomposition:
    """A width-≤2 tree decomposition of a partial 2-tree.

    Standard construction along the degree-≤2 reduction: eliminating a
    vertex ``v`` of degree ≤ 2 creates the bag ``{v} ∪ N(v)`` which is
    attached to (a bag later created for) one of its neighbours.  Raises
    ``ValueError`` on queries of treewidth > 2.
    """
    if q.k == 0:
        return TreeDecomposition(bags=[])
    adj: Dict[Node, Set[Node]] = {v: set(ns) for v, ns in q.adj.items()}
    elimination: List[Tuple[Node, Tuple[Node, ...]]] = []
    order_queue = sorted(adj, key=lambda u: (len(adj[u]), repr(u)))
    while adj:
        candidates = [v for v in adj if len(adj[v]) <= 2]
        if not candidates:
            raise ValueError("query has treewidth > 2; no width-2 decomposition")
        v = min(candidates, key=lambda u: (len(adj[u]), repr(u)))
        nbrs = tuple(sorted(adj[v], key=repr))
        elimination.append((v, nbrs))
        if len(nbrs) == 2:
            x, y = nbrs
            adj[x].discard(v)
            adj[y].discard(v)
            adj[x].add(y)
            adj[y].add(x)
        elif len(nbrs) == 1:
            adj[nbrs[0]].discard(v)
        del adj[v]

    bags: List[FrozenSet[Node]] = []
    tree_edges: List[Tuple[int, int]] = []
    # Process in reverse elimination order.  Invariant: when vertex v (with
    # eliminated-time neighbours N, |N| <= 2) is processed, N was a clique
    # of the reduced graph, so some already-created bag contains all of N —
    # the new bag {v} ∪ N attaches there, which preserves the
    # running-intersection property for every member of N.
    for v, nbrs in reversed(elimination):
        idx = len(bags)
        need = set(nbrs)
        bags.append(frozenset((v,) + nbrs))
        if need:
            anchor = next(
                (i for i, b in enumerate(bags[:idx]) if need <= b), None
            )
            if anchor is None:  # pragma: no cover - invariant violation
                raise AssertionError("no bag contains the eliminated clique")
            tree_edges.append((anchor, idx))
        elif idx > 0:
            # isolated remainder (connected queries: only the final root);
            # attach anywhere to keep the bag tree connected
            tree_edges.append((0, idx))
    td = TreeDecomposition(bags=bags, tree_edges=tree_edges)
    verify_tree_decomposition(q, td)
    return td


def verify_tree_decomposition(q: QueryGraph, td: TreeDecomposition) -> None:
    """Check the three Section 2 properties; raise ``ValueError`` if broken."""
    n_bags = len(td.bags)
    for i, j in td.tree_edges:
        if not (0 <= i < n_bags and 0 <= j < n_bags):
            raise ValueError("tree edge references a missing bag")
    # the tree must be acyclic and connected over the bags
    if n_bags:
        if len(td.tree_edges) != n_bags - 1:
            raise ValueError("bag tree must have exactly bags-1 edges")
        parent = list(range(n_bags))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, j in td.tree_edges:
            ri, rj = find(i), find(j)
            if ri == rj:
                raise ValueError("bag tree contains a cycle")
            parent[ri] = rj

    # (i) node and edge coverage
    covered: Set[Node] = set()
    for b in td.bags:
        covered |= set(b)
    if covered != set(q.nodes()):
        raise ValueError("bags do not cover the query nodes")
    for a, b in q.edges():
        if not any(a in bag and b in bag for bag in td.bags):
            raise ValueError(f"edge ({a!r},{b!r}) not inside any bag")

    # (ii) connected subtree per node
    adj_bags: Dict[int, List[int]] = {i: [] for i in range(n_bags)}
    for i, j in td.tree_edges:
        adj_bags[i].append(j)
        adj_bags[j].append(i)
    for v in q.nodes():
        containing = set(td.bags_containing(v))
        if not containing:
            raise ValueError(f"node {v!r} missing from all bags")
        start = next(iter(containing))
        seen = {start}
        stack = [start]
        while stack:
            cur = stack.pop()
            for nb in adj_bags[cur]:
                if nb in containing and nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        if seen != containing:
            raise ValueError(f"bags containing {v!r} are not connected")
