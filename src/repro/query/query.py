"""Query (template/motif) graphs.

Queries are small (≤ ~12 nodes in the paper) so they are stored as plain
adjacency sets over hashable node labels.  Labels are kept symbolic
(strings like ``"a"`` or ints) because the decomposition machinery
annotates and contracts named nodes, mirroring the paper's Figure 2.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

__all__ = ["QueryGraph"]

Node = Hashable
Edge = Tuple[Node, Node]


class QueryGraph:
    """A small undirected simple query graph over hashable node labels.

    ``labels`` optionally assigns an integer *vertex label* to **every**
    query node (``{node: int}``); a labeled query matches only data
    vertices carrying the same label, so labeled counting is a strict
    filter over the unlabeled DP.  ``labels=None`` (the default) is the
    paper's unlabeled setting.
    """

    def __init__(
        self,
        edges: Iterable[Edge],
        nodes: Iterable[Node] = (),
        name: str = "",
        labels: Optional[Mapping[Node, int]] = None,
    ) -> None:
        self.name = name
        self.adj: Dict[Node, Set[Node]] = {}
        for v in nodes:
            self.adj.setdefault(v, set())
        for a, b in edges:
            if a == b:
                raise ValueError(f"self loop on query node {a!r}")
            self.adj.setdefault(a, set())
            self.adj.setdefault(b, set())
            self.adj[a].add(b)
            self.adj[b].add(a)
        self.labels: Optional[Dict[Node, int]] = self._validate_labels(labels)

    def _validate_labels(
        self, labels: Optional[Mapping[Node, int]]
    ) -> Optional[Dict[Node, int]]:
        """Check a label map covers exactly this query's nodes, values int >= 0."""
        if labels is None:
            return None
        out: Dict[Node, int] = {}
        for node, lab in labels.items():
            if node not in self.adj:
                raise ValueError(f"label for unknown query node {node!r}")
            lab = int(lab)
            if lab < 0:
                raise ValueError(f"query labels must be non-negative, got {lab} on {node!r}")
            out[node] = lab
        missing = [v for v in self.adj if v not in out]
        if missing:
            raise ValueError(
                f"labels must cover every query node; missing {sorted(map(repr, missing))}"
            )
        return out

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of query nodes — the number of colors used by color coding."""
        return len(self.adj)

    def nodes(self) -> List[Node]:
        return sorted(self.adj, key=repr)

    def edges(self) -> List[Edge]:
        seen: Set[FrozenSet[Node]] = set()
        out: List[Edge] = []
        for a in self.nodes():
            for b in sorted(self.adj[a], key=repr):
                key = frozenset((a, b))
                if key not in seen:
                    seen.add(key)
                    out.append((a, b))
        return out

    def num_edges(self) -> int:
        return sum(len(s) for s in self.adj.values()) // 2

    def degree(self, v: Node) -> int:
        return len(self.adj[v])

    def has_edge(self, a: Node, b: Node) -> bool:
        return b in self.adj.get(a, ())

    def neighbors(self, v: Node) -> Set[Node]:
        return self.adj[v]

    def is_connected(self) -> bool:
        if self.k <= 1:
            return True
        nodes = self.nodes()
        seen = {nodes[0]}
        stack = [nodes[0]]
        while stack:
            u = stack.pop()
            for v in self.adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.k

    # ------------------------------------------------------------------
    @property
    def labeled(self) -> bool:
        """Whether this query constrains data-vertex labels."""
        return self.labels is not None

    def with_labels(self, labels: Optional[Mapping[Node, int]]) -> "QueryGraph":
        """A copy of this query carrying ``labels`` (``None`` clears them)."""
        return QueryGraph(self.edges(), nodes=self.nodes(), name=self.name, labels=labels)

    def relabel_to_ints(self) -> Tuple["QueryGraph", Dict[Node, int]]:
        """Return an integer-named copy (0..k-1) plus the mapping used."""
        mapping = {v: i for i, v in enumerate(self.nodes())}
        edges = [(mapping[a], mapping[b]) for a, b in self.edges()]
        labels = (
            {mapping[v]: lab for v, lab in self.labels.items()}
            if self.labels is not None
            else None
        )
        return (
            QueryGraph(edges, nodes=range(self.k), name=self.name, labels=labels),
            mapping,
        )

    def subgraph(self, keep: Iterable[Node]) -> "QueryGraph":
        keep_set = set(keep)
        edges = [(a, b) for a, b in self.edges() if a in keep_set and b in keep_set]
        labels = (
            {v: lab for v, lab in self.labels.items() if v in keep_set}
            if self.labels is not None
            else None
        )
        return QueryGraph(edges, nodes=keep_set, name=self.name, labels=labels)

    def copy(self) -> "QueryGraph":
        return QueryGraph(
            self.edges(), nodes=self.nodes(), name=self.name, labels=self.labels
        )

    # ------------------------------------------------------------------
    def degeneracy(self) -> int:
        """Graph degeneracy (lower bound on treewidth); simple peeling."""
        adj = {v: set(ns) for v, ns in self.adj.items()}
        best = 0
        while adj:
            v = min(adj, key=lambda u: (len(adj[u]), repr(u)))
            best = max(best, len(adj[v]))
            for u in adj[v]:
                adj[u].discard(v)
            del adj[v]
        return best

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"QueryGraph{label}(k={self.k}, m={self.num_edges()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryGraph):
            return NotImplemented
        return (
            set(self.nodes()) == set(other.nodes())
            and set(map(frozenset, self.edges())) == set(map(frozenset, other.edges()))
            and self.labels == other.labels
        )

    def __hash__(self) -> int:
        label_part = (
            frozenset(self.labels.items()) if self.labels is not None else None
        )
        return hash(
            (
                frozenset(map(frozenset, self.edges()))
                | frozenset((n,) for n in self.nodes()),
                label_part,
            )
        )
