"""The query benchmark of the paper (Figure 8) plus test fixtures.

The paper evaluates ten real-world treewidth-2 queries named ``dros``,
``ecoli1``, ``ecoli2``, ``brain1``, ``brain2``, ``brain3``, ``glet1``,
``glet2``, ``wiki`` and ``youtube`` (sizes 4–10 nodes), drawn as pictures
in Figure 8.  The source text does not include the drawings, so the
topologies below are reconstructions that honour every structural fact the
prose states:

* all queries have treewidth ≤ 2 and contain cycles (``Beyond Trees``);
* ``glet1``/``glet2`` are 4-node graphlets and, with ``youtube``, run
  sub-second (smallest queries);
* ``brain2``/``brain3`` are 10-node queries with the longest cycles and
  dominate the running time ("queries with longer cycles are more
  challenging", brain3 ≈ 2 minutes);
* ``brain1`` admits **exactly two** decomposition trees — "contract the
  4-cycle first and then the 6-cycle, and vice versa" (Section 6) — which
  pins it to two cycles of lengths 4 and 6 sharing a single node;
* the 11-node ``satellite`` query of Figure 2 *is* fully specified by the
  prose (its cycles, boundary nodes and leaf edge are all named) and is
  reproduced exactly; it is used as a ground-truth fixture.

Each reconstruction is annotated with the paper-reported size so tests can
verify ``k`` and the treewidth bound.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .query import QueryGraph
from .treewidth import is_treewidth_at_most_2

__all__ = [
    "paper_queries",
    "paper_query",
    "satellite",
    "cycle_query",
    "path_query",
    "star_query",
    "diamond",
    "complete_binary_tree",
    "all_fixture_queries",
    "labeled_query",
    "labeled_queries",
    "resolve_query_name",
    "coerce_node_labels",
    "MAX_NODE_LABEL",
    "with_random_labels",
]


def cycle_query(length: int, name: str = "") -> QueryGraph:
    """Simple cycle C_length (the paper's core primitive, Section 9)."""
    if length < 3:
        raise ValueError("cycles need length >= 3")
    edges = [(i, (i + 1) % length) for i in range(length)]
    return QueryGraph(edges, name=name or f"C{length}")


def path_query(num_nodes: int, name: str = "") -> QueryGraph:
    """Simple path P_num_nodes (treewidth 1 test workload)."""
    if num_nodes < 1:
        raise ValueError("paths need >= 1 node")
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return QueryGraph(edges, nodes=range(num_nodes), name=name or f"P{num_nodes}")


def star_query(num_leaves: int, name: str = "") -> QueryGraph:
    """Star with ``num_leaves`` leaves around a hub (treewidth 1)."""
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return QueryGraph(edges, name=name or f"S{num_leaves}")


def diamond(name: str = "diamond") -> QueryGraph:
    """K4 minus an edge: a 4-cycle with one chord (treewidth 2)."""
    return QueryGraph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], name=name)


def complete_binary_tree(levels: int, name: str = "") -> QueryGraph:
    """The 12-vertex complete binary tree of Section 8.2 is levels=3 plus root path.

    ``levels`` counts edge-levels below the root; ``levels=3`` gives 15
    nodes, ``levels=2`` gives 7.  Used as the paper's tree-query contrast.
    """
    edges = []
    n = 2 ** (levels + 1) - 1
    for i in range(1, n):
        edges.append(((i - 1) // 2, i))
    return QueryGraph(edges, name=name or f"cbt{levels}")


def satellite() -> QueryGraph:
    """The Satellite query of Figure 2 — fully specified by the prose.

    Nodes ``a..k``; the 5-cycle ``(a,b,c,d,e)`` (boundary a, c), the leaf
    edge ``(f,h)``, the 4-cycle ``(a,f,g,c)``, the triangle ``(i,j,k)``
    (boundary i) and the non-contractible cycle ``(i,f,g)``.
    """
    edges = [
        # 5-cycle a-b-c-d-e
        ("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a"),
        # the 4-cycle (a, f, g, c): a-f, f-g, g-c (a-c closed by contraction)
        ("a", "f"), ("f", "g"), ("g", "c"),
        # leaf edge
        ("f", "h"),
        # cycle (i, f, g)
        ("i", "f"), ("i", "g"),
        # triangle (i, j, k)
        ("i", "j"), ("j", "k"), ("k", "i"),
    ]
    return QueryGraph(edges, name="satellite")


def _glet1() -> QueryGraph:
    # 4-node cycle graphlet (GUISE / Bhuiyan et al. graphlet g5).
    return cycle_query(4, name="glet1")


def _glet2() -> QueryGraph:
    # 4-node diamond graphlet (two triangles sharing an edge).
    return QueryGraph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], name="glet2")


def _youtube() -> QueryGraph:
    # 5-node spam-campaign motif: triangle with a 2-path tail.
    return QueryGraph(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)], name="youtube"
    )


def _wiki() -> QueryGraph:
    # 6-node collaboration motif: 4-cycle with two pendant edges on
    # opposite corners.
    return QueryGraph(
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (2, 5)], name="wiki"
    )


def _dros() -> QueryGraph:
    # 7-node Drosophila PIN motif: 5-cycle sharing one node with a triangle.
    return QueryGraph(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (4, 5), (5, 6), (6, 4)],
        name="dros",
    )


def _ecoli1() -> QueryGraph:
    # 8-node E. coli motif: 6-cycle with two pendant leaves.
    return QueryGraph(
        [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 6), (3, 7)],
        name="ecoli1",
    )


def _ecoli2() -> QueryGraph:
    # 9-node E. coli motif: two 4-cycles sharing a node, plus a leaf.
    return QueryGraph(
        [
            (0, 1), (1, 2), (2, 3), (3, 0),       # first 4-cycle
            (3, 4), (4, 5), (5, 6), (6, 3),       # second 4-cycle (shares node 3)
            (1, 7), (5, 8),                        # leaves
        ],
        name="ecoli2",
    )


def _brain1() -> QueryGraph:
    # 9-node brain motif: a 4-cycle and a 6-cycle sharing exactly one node.
    # Section 6: "brain1 admits two decomposition trees: contract the
    # 4-cycle first and then the 6-cycle, and (ii) vice versa."
    return QueryGraph(
        [
            (0, 1), (1, 2), (2, 3), (3, 0),                   # 4-cycle
            (0, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 0),   # 6-cycle sharing node 0
        ],
        name="brain1",
    )


def _brain2() -> QueryGraph:
    # 10-node brain motif: 7-cycle sharing a node with a triangle, plus leaf.
    return QueryGraph(
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0),  # 7-cycle
            (0, 7), (7, 8), (8, 0),                                   # triangle at 0
            (3, 9),                                                   # leaf
        ],
        name="brain2",
    )


def _brain3() -> QueryGraph:
    # 10-node brain motif with the longest cycle in the benchmark (C8):
    # the hardest query in Figure 9 ("nearly 2 minutes on average").
    return QueryGraph(
        [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 0),  # 8-cycle
            (0, 8), (8, 9),                                                  # 2-path tail
        ],
        name="brain3",
    )


_BUILDERS = {
    "glet1": _glet1,
    "glet2": _glet2,
    "youtube": _youtube,
    "wiki": _wiki,
    "dros": _dros,
    "ecoli1": _ecoli1,
    "ecoli2": _ecoli2,
    "brain1": _brain1,
    "brain2": _brain2,
    "brain3": _brain3,
}

#: paper-reported node counts, for validation in tests
PAPER_QUERY_SIZES = {
    "glet1": 4,
    "glet2": 4,
    "youtube": 5,
    "wiki": 6,
    "dros": 7,
    "ecoli1": 8,
    "ecoli2": 9,
    "brain1": 9,
    "brain2": 10,
    "brain3": 10,
}


def paper_query(name: str) -> QueryGraph:
    """One of the ten Figure 8 queries by name."""
    try:
        q = _BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown paper query {name!r}; choose from {sorted(_BUILDERS)}"
        ) from None
    assert is_treewidth_at_most_2(q), f"library bug: {name} exceeds treewidth 2"
    return q


def paper_queries() -> Dict[str, QueryGraph]:
    """All ten Figure 8 queries, keyed by paper name."""
    return {name: paper_query(name) for name in _BUILDERS}


# ----------------------------------------------------------------------
# labeled query library (vertex-labeled motif scanning workload)
# ----------------------------------------------------------------------

def _labeled(base: QueryGraph, pattern: str, name: str) -> QueryGraph:
    """``base`` with labels read off ``pattern`` in deterministic node order."""
    nodes = base.nodes()
    assert len(pattern) == len(nodes), "label pattern length != k"
    q = base.with_labels({v: int(c) for v, c in zip(nodes, pattern)})
    q.name = name
    return q


#: small vertex-labeled templates over the library shapes; the suffix is
#: the label string in deterministic node order (``query.nodes()``)
_LABELED_BUILDERS = {
    # heterogeneous triangle: two label-0 endpoints closing on a label-1 hub
    "tri-001": lambda: _labeled(cycle_query(3), "001", "tri-001"),
    # bipartite-style square: labels alternate around the 4-cycle
    "square-0101": lambda: _labeled(cycle_query(4), "0101", "square-0101"),
    # diamond with a distinguished chord endpoint
    "diamond-0011": lambda: _labeled(diamond(), "0011", "diamond-0011"),
    # labeled path: a 0-1-1-0 chain (protein-interaction style linker)
    "path4-0110": lambda: _labeled(path_query(4), "0110", "path4-0110"),
    # labeled star: hub label 1, leaves label 0
    "star3-1000": lambda: _labeled(star_query(3), "1000", "star3-1000"),
    # the youtube spam motif with a labeled triangle core
    "youtube-00101": lambda: _labeled(paper_query("youtube"), "00101", "youtube-00101"),
}


def labeled_query(name: str) -> QueryGraph:
    """One of the labeled library templates by name."""
    try:
        return _LABELED_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown labeled query {name!r}; choose from {sorted(_LABELED_BUILDERS)}"
        ) from None


def labeled_queries() -> Dict[str, QueryGraph]:
    """All labeled library templates, keyed by name."""
    return {name: labeled_query(name) for name in _LABELED_BUILDERS}


def resolve_query_name(name: str) -> QueryGraph:
    """A Figure 8 paper query or a labeled template by name.

    The shared name resolver behind the CLI and the service wire format;
    an unknown name raises one ``KeyError`` listing *both* namespaces.
    """
    if name in _BUILDERS:
        return paper_query(name)
    if name in _LABELED_BUILDERS:
        return labeled_query(name)
    raise KeyError(
        f"unknown query {name!r}; choose a Figure 8 name {sorted(_BUILDERS)} "
        f"or a labeled template {sorted(_LABELED_BUILDERS)}"
    )


#: labels are int64 internally; external label specs are capped well
#: below that so label arithmetic can never overflow and typos fail loudly
MAX_NODE_LABEL = 2**31 - 1


def _coerce_one_label(node: object, value: object, max_label: int) -> int:
    """One external label value → bounded non-negative int."""
    if isinstance(value, bool):
        raise ValueError(f"bad label for node {node!r}: {value!r} (need int)")
    try:
        lab = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"bad label for node {node!r}: {value!r} (need int)") from None
    if isinstance(value, float) and value != lab:
        raise ValueError(f"bad label for node {node!r}: {value!r} (need int)")
    if not 0 <= lab <= max_label:
        raise ValueError(f"label for node {node!r} must be in [0, {max_label}]")
    return lab


def coerce_node_labels(
    query: QueryGraph, value: object, max_label: int = MAX_NODE_LABEL
) -> Dict[object, int]:
    """External label spec → ``{query node: int}`` covering every node.

    The one grammar shared by the CLI and the service wire format: a
    mapping keyed by node name (matched against ``str(node)``, since
    JSON object keys are strings) or a sequence with one label per node
    in the query's deterministic node order.  Raises ``ValueError`` with
    a client-presentable message; surfaces map it to their own error
    type (CLI exit 2, HTTP 400).
    """
    nodes = query.nodes()
    if isinstance(value, dict):
        by_name: Dict[str, object] = {}
        for n in nodes:
            key = str(n)
            if key in by_name:
                raise ValueError(
                    f"query node names collide on {key!r}; use the list label form"
                )
            by_name[key] = n
        out: Dict[object, int] = {}
        for key, lab in value.items():
            node = by_name.get(str(key))
            if node is None:
                raise ValueError(f"label for unknown query node {key!r}")
            out[node] = _coerce_one_label(key, lab, max_label)
        missing = sorted(str(n) for n in nodes if n not in out)
        if missing:
            raise ValueError(f"labels must cover every query node; missing {missing}")
        return out
    if isinstance(value, (list, tuple)):
        if len(value) != len(nodes):
            raise ValueError(
                f"labels list needs one label per query node ({len(nodes)}), "
                f"got {len(value)}"
            )
        return {n: _coerce_one_label(n, lab, max_label) for n, lab in zip(nodes, value)}
    raise ValueError(
        f"labels must be a node→label mapping or a per-node list, "
        f"got {type(value).__name__}"
    )


def with_random_labels(
    query: QueryGraph, num_labels: int, seed: int = 0
) -> QueryGraph:
    """``query`` with deterministic pseudo-random labels in ``[0, num_labels)``.

    The assignment depends only on ``(query structure, num_labels, seed)``
    — used by the differential test matrix and workload sweeps to build
    reproducible labeled variants of any query.
    """
    if num_labels < 1:
        raise ValueError("need at least one label class")
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, num_labels, size=query.k)
    return query.with_labels(
        {v: int(draws[i]) for i, v in enumerate(query.nodes())}
    )


def all_fixture_queries() -> List[QueryGraph]:
    """Paper queries plus structured fixtures used across the test suite."""
    out = list(paper_queries().values())
    out.append(satellite())
    out.append(diamond())
    for length in (3, 4, 5, 6, 7):
        out.append(cycle_query(length))
    out.append(path_query(4))
    out.append(star_query(3))
    out.append(complete_binary_tree(2))
    return out
