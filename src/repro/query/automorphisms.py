"""Automorphism counting for query graphs.

Section 2 of the paper: the number of colorful *subgraphs* isomorphic to
``Q`` equals the number of colorful *matches* divided by ``aut(Q)``.  For
the paper's ≤ 12-node queries a pruned backtracking search is instant.
"""

from __future__ import annotations

from typing import List, Optional

from .query import QueryGraph

__all__ = ["automorphism_count", "matches_to_subgraphs"]


def automorphism_count(q: QueryGraph) -> int:
    """Number of adjacency-preserving permutations of the nodes of ``Q``.

    For a vertex-labeled query the automorphism must also preserve
    labels — only label-preserving permutations keep a labeled match a
    match, so the matches→subgraphs division uses this smaller group.
    """
    qi, _ = q.relabel_to_ints()
    k = qi.k
    if k == 0:
        return 1
    adj = [set(qi.adj[i]) for i in range(k)]
    degrees = [len(adj[i]) for i in range(k)]
    labels = [qi.labels[i] for i in range(k)] if qi.labels is not None else [0] * k
    # Order candidates by degree so the search fails fast on mismatches.
    order = sorted(range(k), key=lambda v: -degrees[v])
    mapping: List[Optional[int]] = [None] * k
    used = [False] * k
    count = 0

    def backtrack(idx: int) -> None:
        nonlocal count
        if idx == k:
            count += 1
            return
        v = order[idx]
        for cand in range(k):
            if used[cand] or degrees[cand] != degrees[v] or labels[cand] != labels[v]:
                continue
            ok = True
            for w in adj[v]:
                mw = mapping[w]
                if mw is not None and mw not in adj[cand]:
                    ok = False
                    break
            if ok:
                # also ensure no non-edge maps to an edge (automorphism is
                # exact): mapped neighbours of cand must be images of
                # neighbours of v
                for w2 in range(k):
                    mw2 = mapping[w2]
                    if mw2 is not None and (w2 in adj[v]) != (mw2 in adj[cand]):
                        ok = False
                        break
            if ok:
                mapping[v] = cand
                used[cand] = True
                backtrack(idx + 1)
                mapping[v] = None
                used[cand] = False

    backtrack(0)
    return count


def matches_to_subgraphs(match_count: float, q: QueryGraph) -> float:
    """Convert a match (injective mapping) count to a subgraph count."""
    return match_count / automorphism_count(q)
