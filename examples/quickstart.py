#!/usr/bin/env python
"""Quickstart: the `CountingEngine` in three moves.

Walks the full pipeline of the paper on a small synthetic social network
through the unified engine API:

1. build a data graph and bind a `CountingEngine` to it,
2. single query  — `engine.count(q)` returns a `RunResult` with the
   estimate, the chosen decomposition plan and per-trial timings,
3. batched      — `engine.count_many(queries)` shares the plan cache, so
   each query is planned exactly once for the whole batch,
4. parallel     — `engine.count(q, workers=4)` fans the independent
   color-coding trials out over processes, bit-identical to the
   sequential run for the same seed,
5. sanity-check the estimate against brute force.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CountingEngine, paper_query
from repro.graph import chung_lu_power_law
from repro.graph.properties import graph_summary, largest_component_subgraph
from repro.query import automorphism_count


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A ~300-node power-law data graph (small enough to brute force),
    #    and an engine session bound to it.
    g = largest_component_subgraph(
        chung_lu_power_law(300, alpha=1.7, rng=rng, name="demo-social")
    )
    print("data graph:", graph_summary(g))
    engine = CountingEngine(g)  # defaults: DB kernel, 10 trials

    # 2. Single query: the 4-cycle graphlet (Figure 8's glet1).
    q = paper_query("glet1")
    result = engine.count(q, trials=10, seed=42)
    print(f"\nquery: {q.name} with k={q.k} nodes, {q.num_edges()} edges")
    print("decomposition tree (planned once, cached by the engine):")
    print(result.plan.describe())
    print(f"colorful counts per trial: {result.colorful_counts}")
    print(f"estimated matches       : {result.estimate:,.0f}")
    print(f"estimated subgraphs     : {result.estimated_subgraphs(q):,.0f}")
    print(f"relative std            : {result.relative_std:.3f}")
    print(f"wall clock              : {result.wall_clock:.3f}s "
          f"({result.time_per_trial * 1e3:.1f} ms/trial)")

    # 3. Batched: several queries through one call; the engine plans each
    #    exactly once however many trials/batches reuse it.
    batch = engine.count_many(
        [paper_query(name) for name in ("glet1", "glet2", "youtube")],
        trials=5, seed=42,
    )
    print("\nbatched census:")
    for r in batch:
        print(f"  {r.query_name:8s} estimate={r.estimate:12,.0f} "
              f"rel_std={r.relative_std:.3f} plan_cached={r.plan_cached}")
    print(f"engine stats: {engine.stats.snapshot()}")

    # 4. Process-parallel trials: same seed, bit-identical estimate.
    fast = engine.count(q, trials=10, seed=42, workers=4)
    assert fast.colorful_counts == result.colorful_counts
    print(f"\nparallel rerun (workers=4): estimate={fast.estimate:,.0f} "
          f"wall={fast.wall_clock:.3f}s (bit-identical to sequential)")

    # 5. Ground truth (exponential brute force — fine at this scale).
    exact = engine.count_exact(q)
    err = abs(result.estimate - exact) / exact if exact else 0.0
    print(f"exact matches           : {exact:,}")
    print(f"estimation error        : {100 * err:.1f}%")
    print(f"exact subgraphs         : {exact // automorphism_count(q):,}")


if __name__ == "__main__":
    main()
