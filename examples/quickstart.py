#!/usr/bin/env python
"""Quickstart: count a cyclic motif in a scale-free network.

Walks the full pipeline of the paper on a small synthetic social network:

1. build a data graph,
2. pick a treewidth-2 query from the Figure 8 library,
3. let the planner choose a decomposition tree,
4. run the color-coding estimator with the DB algorithm,
5. convert matches to subgraph counts and sanity-check against brute force.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import count, count_exact, paper_query
from repro.decomposition import choose_plan
from repro.graph import chung_lu_power_law
from repro.graph.properties import graph_summary, largest_component_subgraph
from repro.query import automorphism_count


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A ~300-node power-law data graph (small enough to brute force).
    g = largest_component_subgraph(
        chung_lu_power_law(300, alpha=1.7, rng=rng, name="demo-social")
    )
    print("data graph:", graph_summary(g))

    # 2. The 4-cycle graphlet query (Figure 8's glet1).
    q = paper_query("glet1")
    print(f"query: {q.name} with k={q.k} nodes, {q.num_edges()} edges")

    # 3. The decomposition tree the Section 6 heuristic picks.
    plan = choose_plan(q)
    print("decomposition tree:")
    print(plan.describe())

    # 4. Color-coding estimation (10 random colorings, DB algorithm).
    result = count(g, q, trials=10, seed=42, method="db", plan=plan)
    print(f"colorful counts per trial: {result.colorful_counts}")
    print(f"estimated matches       : {result.estimate:,.0f}")
    print(f"estimated subgraphs     : {result.estimate / automorphism_count(q):,.0f}")
    print(f"relative std            : {result.relative_std:.3f}")

    # 5. Ground truth (exponential brute force — fine at this scale).
    exact = count_exact(g, q)
    err = abs(result.estimate - exact) / exact if exact else 0.0
    print(f"exact matches           : {exact:,}")
    print(f"estimation error        : {100 * err:.1f}%")


if __name__ == "__main__":
    main()
