#!/usr/bin/env python
"""Social-network analysis: PS vs DB and load balance on skewed graphs.

Demonstrates the paper's core systems claim on a social-network-style
workload: the Degree Based algorithm works around hubs, cutting both total
work and the maximum per-rank load, and the advantage grows with skew.

The script builds two networks — one heavy-tailed ("social") and one flat
("road") — and compares PS and DB on each with the simulated distributed
engine, printing improvement factors, load imbalance and a strong-scaling
curve.

Run:  python examples/social_network_scaling.py
"""

import numpy as np

from repro.counting.estimator import random_coloring
from repro.decomposition import choose_plan
from repro.distributed import compare_methods, strong_scaling
from repro.graph import grid_road_network
from repro.graph.degree import zipf_degree_sequence
from repro.graph.generators import chung_lu
from repro.graph.properties import graph_summary, largest_component_subgraph
from repro.query import paper_query

RANKS = 16


def build_networks(rng):
    seq = zipf_degree_sequence(600, 2.0, 5.0, max_degree=110, rng=rng)
    social = largest_component_subgraph(chung_lu(seq, rng, name="social"))
    road = largest_component_subgraph(
        grid_road_network(25, 25, rng, rewire_prob=0.02, name="road")
    )
    return social, road


def main() -> None:
    rng = np.random.default_rng(11)
    social, road = build_networks(rng)
    q = paper_query("wiki")
    plan = choose_plan(q)

    print("query:", q.name, f"(k={q.k}, longest cycle {plan.longest_cycle()})")
    print(f"{'network':8s} {'skew':>6s} {'count':>12s} {'IF=T(PS)/T(DB)':>15s} "
          f"{'imb PS':>7s} {'imb DB':>7s}")
    for g in (social, road):
        colors = random_coloring(g.n, q.k, rng)
        cmp = compare_methods(g, q, colors, nranks=RANKS, ps_plan=plan)
        print(
            f"{g.name:8s} {g.degree_skew():6.1f} {cmp.db.count:12,d} "
            f"{cmp.improvement_factor:15.2f} "
            f"{cmp.ps.imbalance:7.2f} {cmp.db.imbalance:7.2f}"
        )

    print("\nStrong scaling of DB on the social network (modeled makespan):")
    colors = random_coloring(social.n, q.k, rng)
    curve = strong_scaling(social, q, colors, ranks=[1, 2, 4, 8, 16], plan=plan)
    for r, s in zip(curve.ranks, curve.speedups()):
        bar = "#" * int(round(4 * s))
        print(f"  {r:3d} ranks: speedup {s:5.2f}x  {bar}")

    print("\nTakeaway: on the skewed network DB beats PS and stays balanced;")
    print("on the flat road network the pruning buys nothing (paper Fig 10).")


if __name__ == "__main__":
    main()
