#!/usr/bin/env python
"""Biological motif scan: count all Figure 8 motifs in a PIN-like network.

Reproduces the workflow motivating the paper's introduction — motif
counting in protein-interaction-style networks (Alon et al.'s application
domain).  Builds a synthetic PIN-like graph, then scans it with every
biological query from the Figure 8 library (dros, ecoli1/2, brain1/2/3),
reporting match estimates, subgraph estimates and per-motif trial spread.

Run:  python examples/motif_scan_bio.py [--quick]
"""

import argparse

import numpy as np

from repro import CountingEngine, paper_query
from repro.graph import chung_lu_power_law
from repro.graph.properties import graph_summary, largest_component_subgraph
from repro.query import automorphism_count

BIO_QUERIES = ["dros", "ecoli1", "ecoli2", "brain1"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="fewer trials, smaller graph")
    args = parser.parse_args()

    rng = np.random.default_rng(2016)
    n = 250 if args.quick else 500
    trials = 3 if args.quick else 6

    g = largest_component_subgraph(
        chung_lu_power_law(n, alpha=1.85, rng=rng, name="pin-like")
    )
    print("protein-interaction-style network:", graph_summary(g))
    print(f"{'motif':8s} {'k':>2s} {'cycle':>5s} {'matches':>14s} {'subgraphs':>12s} "
          f"{'rel.std':>8s} {'time(s)':>8s}")

    # one batched engine call: every motif is planned exactly once and the
    # DB kernel runs all trials against the shared session caches
    engine = CountingEngine(g)
    queries = [paper_query(qname) for qname in BIO_QUERIES]
    results = engine.count_many(queries, trials=trials, seed=7, method="db")

    for q, result in zip(queries, results):
        aut = automorphism_count(q)
        print(
            f"{q.name:8s} {q.k:2d} {result.plan.longest_cycle():5d} "
            f"{result.estimate:14,.0f} {result.estimate / aut:12,.0f} "
            f"{result.relative_std:8.3f} {result.wall_clock:8.2f}"
        )

    print("\nNote: zero estimates are legitimate — large sparse motifs may")
    print("simply not occur; rel.std is only meaningful for non-zero counts.")


if __name__ == "__main__":
    main()
