#!/usr/bin/env python
"""Network-motif significance analysis (Milo et al. workflow).

The paper's introduction motivates subgraph counting with motif analysis:
find which small subgraphs are over/under-represented in a network
compared to degree-matched random graphs.  This example runs the full
workflow on two structurally different networks:

1. enumerate every 4-node treewidth-2 motif;
2. estimate each motif's count with the DB color-coding counter;
3. build a degree-preserving null ensemble (double edge swaps);
4. report z-scores and the normalised significance profile.

A clustered network (ring of cliques) should light up the triangle-rich
motifs; an Erdős–Rényi control should sit near zero everywhere.

Run:  python examples/motif_significance.py
"""

import numpy as np

from repro.graph import erdos_renyi, ring_of_cliques
from repro.graph.properties import graph_summary
from repro.motifs import all_tw2_motifs, motif_significance, significance_profile


def analyse(g, motifs, seed):
    print(f"\n--- {g.name}: {graph_summary(g)}")
    results = motif_significance(g, motifs, null_samples=5, trials=4, seed=seed)
    print(f"{'motif':10s} {'edges':>5s} {'observed':>12s} {'null_mean':>12s} "
          f"{'null_std':>10s} {'z':>8s}")
    for q, r in zip(motifs, results):
        z = r.z_score
        z_str = f"{z:8.2f}" if np.isfinite(z) else "     inf"
        print(
            f"{r.motif_name:10s} {q.num_edges():5d} {r.observed:12,.0f} "
            f"{r.null_mean:12,.0f} {r.null_std:10,.0f} {z_str}"
        )
    profile = significance_profile(results)
    print("significance profile:", np.round(profile, 2))
    return profile


def main() -> None:
    rng = np.random.default_rng(99)
    motifs = all_tw2_motifs(4)
    print(f"{len(motifs)} four-node treewidth-2 motifs "
          f"(all connected 4-node graphs except K4)")

    clustered = ring_of_cliques(10, 5)
    clustered.name = "clique-ring"
    control = erdos_renyi(50, clustered.avg_degree() / 49, rng, name="er-control")

    p1 = analyse(clustered, motifs, seed=1)
    p2 = analyse(control, motifs, seed=2)

    corr = float(np.dot(p1, p2))
    print(f"\nprofile correlation between the two networks: {corr:.2f}")
    print("(clustered networks diverge from their degree-null; ER does not)")


if __name__ == "__main__":
    main()
