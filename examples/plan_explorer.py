#!/usr/bin/env python
"""Decomposition-plan explorer: enumerate, rank and visualise plans.

Walks through Section 4's decomposition machinery on the Satellite query
of Figure 2 (the worked example of the paper) and on brain1 (the paper's
two-plan example): enumerates all decomposition trees, shows the
heuristic's ranking factors, and prints the chosen tree in the same
block-by-block structure as the paper's figure.

Run:  python examples/plan_explorer.py [query_name]
"""

import sys

from repro.decomposition import enumerate_plans, rank_plans
from repro.query import paper_queries, satellite, treewidth


def explore(q) -> None:
    print(f"\n=== {q.name} (k={q.k}, edges={q.num_edges()}, treewidth={treewidth(q)}) ===")
    plans = rank_plans(enumerate_plans(q))
    print(f"{len(plans)} decomposition tree(s); ranked by "
          "(longest cycle, cycle annotations, boundary nodes, total annotations):")
    for i, p in enumerate(plans[:8]):
        marker = " <- heuristic pick" if i == 0 else ""
        cycles = sorted(b.length for b in p.cycle_blocks())
        print(f"  #{i}: key={p.heuristic_key()} cycles={cycles}{marker}")
    if len(plans) > 8:
        print(f"  ... {len(plans) - 8} more")
    print("\nchosen tree:")
    print(plans[0].describe())


def main() -> None:
    if len(sys.argv) > 1:
        name = sys.argv[1]
        if name == "satellite":
            explore(satellite())
        else:
            explore(paper_queries()[name])
        return
    explore(satellite())
    explore(paper_queries()["brain1"])


if __name__ == "__main__":
    main()
