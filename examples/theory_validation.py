#!/usr/bin/env python
"""Theory validation: the Section 9 analysis, empirically.

Samples Chung-Lu graphs with truncated-power-law degree sequences and
counts the two work proxies exactly:

* Y(q) — paths whose start has the highest id (PS work, Lemma 9.5);
* X(q) — high-starting paths in the degree order (DB work, Lemma 9.6);

then compares their growth against the closed-form predictions of
Theorem 9.1 / Corollary 9.9 and checks the λ-balance of the sequences
(Claim 10.1).

Run:  python examples/theory_validation.py
"""

import numpy as np

from repro.theory import (
    balance_report,
    count_x_paths,
    count_y_paths,
    power_law_exponents,
    power_law_graph,
    x_upper_bound,
    y_lower_bound,
)

ALPHA = 1.5
Q = 3
SIZES = [256, 512, 1024, 2048]


def main() -> None:
    exps = power_law_exponents(ALPHA, Q)
    print(f"Chung-Lu truncated power law, alpha={ALPHA}, path length q={Q}")
    print(f"predicted growth: Y(q) ~ n^{exps['y']:.2f},  X(q) ~ n^{exps['x']:.2f}"
          + ("  (n log n regime)" if exps["x_is_nlogn"] else ""))
    print(f"\n{'n':>6s} {'edges':>7s} {'Y(q)':>10s} {'X(q)':>10s} {'Y/X':>7s} "
          f"{'Y bound':>10s} {'X bound':>10s} {'lambda':>9s}")

    ratios = []
    for n in SIZES:
        rng = np.random.default_rng(n)
        g, seq = power_law_graph(n, ALPHA, rng)
        ids = rng.permutation(g.n)
        y = count_y_paths(g, Q, ids=ids)
        x = count_x_paths(g, Q)
        ratios.append(y / max(x, 1))
        bal = balance_report(seq, ALPHA)
        print(
            f"{n:6d} {g.m:7d} {y:10d} {x:10d} {y / max(x, 1):7.2f} "
            f"{y_lower_bound(seq, Q):10.0f} {x_upper_bound(seq, Q):10.0f} "
            f"{bal['lambda_empirical']:9.5f}"
        )

    slope = np.polyfit(np.log(SIZES), np.log(ratios), 1)[0]
    print(f"\nmeasured Y/X gap exponent: {slope:.2f} "
          f"(Corollary 9.9 predicts a positive polynomial gap)")
    print("DB's degree ordering prunes polynomially more as graphs grow — the")
    print("theoretical root of the empirical wins in Figures 10-13.")


if __name__ == "__main__":
    main()
