"""Section 9 — X(q) vs Y(q) on Chung-Lu power-law graphs.

Theorem 9.1 / Corollary 9.9: on truncated-power-law Chung-Lu graphs the
DB work proxy X(q) (high-starting paths) is polynomially smaller than the
PS work proxy Y(q) (highest-id paths).  This bench counts both exactly on
sampled graphs of growing size and checks:

* X(q) <= Y(q) at every size (Lemma 9.7's O(.) relation, empirically);
* the Y/X ratio grows with n (the polynomial gap of Corollary 9.9);
* the closed-form bound formulas track the measured counts.
"""

import numpy as np

from repro.theory import (
    count_x_paths,
    count_y_paths,
    power_law_exponents,
    power_law_graph,
    x_upper_bound,
    y_lower_bound,
)

from bench_common import emit_table

ALPHA = 1.5
SIZES = [256, 512, 1024, 2048]
Q = 3  # path length for cycle queries of length 5-6 (q = ceil(k/2))


def test_theory_xy_gap(benchmark):
    rows = []
    ratios = []
    for n in SIZES:
        rng = np.random.default_rng(900 + n)
        g, seq = power_law_graph(n, ALPHA, rng)
        ids = rng.permutation(g.n)
        y = count_y_paths(g, Q, ids=ids)
        x = count_x_paths(g, Q)
        ratios.append(y / max(x, 1))
        rows.append(
            {
                "n": n,
                "m": g.m,
                "Y(q)_measured": y,
                "X(q)_measured": x,
                "Y/X": y / max(x, 1),
                "Y_bound": y_lower_bound(seq, Q),
                "X_bound": x_upper_bound(seq, Q),
            }
        )
    exps = power_law_exponents(ALPHA, Q)
    emit_table(
        "theory_xy",
        rows,
        title=f"Section 9: X(q)/Y(q), alpha={ALPHA}, q={Q} "
        f"(predicted exponents: Y ~ n^{exps['y']:.2f}, X ~ n^{exps['x']:.2f})",
    )

    # Lemma 9.7 shape: X never exceeds Y.
    for row in rows:
        assert row["X(q)_measured"] <= row["Y(q)_measured"]
    # Corollary 9.9 shape: the gap widens with n.
    assert ratios[-1] > ratios[0]

    # measured growth exponent of the gap is positive
    gap_exp = np.polyfit(np.log(SIZES), np.log(ratios), 1)[0]
    emit_table(
        "theory_xy_summary",
        [
            {
                "measured_gap_exponent": float(gap_exp),
                "predicted_gap_exponent": exps["y"] - exps["x"],
            }
        ],
        title="Section 9 summary: polynomial Y/X gap (Corollary 9.9)",
    )
    assert gap_exp > 0.05

    rng = np.random.default_rng(1)
    g, _ = power_law_graph(512, ALPHA, rng)
    benchmark(lambda: count_x_paths(g, Q))
