"""Figure 14 — quality of the Section 6 plan-generation heuristic.

The paper enumerates all decomposition trees per query, measures each, and
compares the heuristic's pick against the optimum: optimal in 90% of the
graph-query combinations, within 15% otherwise.

Here: for every (graph, query) pair the full plan set is evaluated by
modeled DB makespan; the heuristic's plan is compared to the best plan.
"""

import numpy as np

from repro.bench import SIM_RANKS_HIGH, dataset
from repro.decomposition import enumerate_plans, rank_plans
from repro.distributed import run_distributed
from repro.query import paper_query

from bench_common import coloring_for, emit_table

GRAPHS = ["condmat", "enron"]
QUERIES = ["glet2", "youtube", "wiki", "ecoli1", "brain1"]
MAX_PLANS = 12  # cap per query; ranked plans beyond this are skipped


def test_fig14_heuristic_quality(benchmark):
    rows = []
    errors = []
    for gname in GRAPHS:
        g = dataset(gname)
        for qname in QUERIES:
            q = paper_query(qname)
            plans = rank_plans(enumerate_plans(q))[:MAX_PLANS]
            heuristic_pick = plans[0]  # rank_plans puts the heuristic's pick first
            colors = coloring_for(gname, qname)
            times = {}
            for i, plan in enumerate(plans):
                run = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan)
                times[i] = run.makespan
            counts = {
                run_distributed(g, q, colors, 1, method="db", plan=p).count
                for p in plans[:2]
            }
            assert len(counts) == 1  # all plans count identically
            t_heur = times[0]
            t_opt = min(times.values())
            err_pct = 100.0 * (t_heur - t_opt) / t_opt if t_opt > 0 else 0.0
            errors.append(err_pct)
            rows.append(
                {
                    "graph": gname,
                    "query": qname,
                    "plans": len(plans),
                    "t_heuristic": t_heur,
                    "t_optimal": t_opt,
                    "error_%": err_pct,
                    "optimal": "Y" if err_pct < 1e-9 else "n",
                }
            )
    emit_table(
        "fig14",
        rows,
        title="Figure 14: heuristic plan vs optimal plan, modeled DB time "
        "(paper: optimal in 90% of combos, else within 15%)",
    )
    frac_optimal = np.mean([e < 1e-9 for e in errors])
    emit_table(
        "fig14_summary",
        [{"optimal_%": 100 * frac_optimal, "max_error_%": max(errors)}],
        title="Figure 14 summary",
    )
    # Paper shape: heuristic optimal most of the time, bounded error else.
    assert frac_optimal >= 0.5
    assert max(errors) < 120.0

    g = dataset("condmat")
    q = paper_query("glet2")
    benchmark(lambda: rank_plans(enumerate_plans(q))[0].heuristic_key())
