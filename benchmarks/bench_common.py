"""Shared helpers for the per-figure benchmark files.

Every bench prints its result table to stdout AND appends it to
``benchmarks/results/<bench>.txt`` so the tables survive pytest's output
capturing.  Workload sizes honour ``REPRO_BENCH_SCALE``.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Dict, List

import numpy as np

from repro.bench import dataset, format_table, write_bench_json
from repro.counting.estimator import random_coloring
from repro.decomposition import choose_plan
from repro.engine import EngineConfig
from repro.query import paper_query

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: deterministic seed for every bench coloring — rooted in the engine's
#: default config seed (plus a fixed salt) so the per-figure benches,
#: perf-smoke and the scaling bench all derive their randomness from
#: ``EngineConfig.seed`` and CI runs are reproducible end to end
BENCH_SEED = EngineConfig().seed + 2016


def emit_table(name: str, rows: List[Dict], columns=None, title: str = "", floatfmt=".3g") -> str:
    """Print a table and persist it under benchmarks/results/."""
    text = format_table(rows, columns=columns, title=title, floatfmt=floatfmt)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    print(f"[saved to {path}]")
    return text


def emit_bench_json(name: str, records: List[Dict], **meta) -> str:
    """Persist machine-comparable records as benchmarks/results/BENCH_<name>.json."""
    path = write_bench_json(
        os.path.join(RESULTS_DIR, f"BENCH_{name}.json"), records, **meta
    )
    print(f"[bench json saved to {path}]")
    return path


@lru_cache(maxsize=None)
def bench_plan(query_name: str):
    return choose_plan(paper_query(query_name))


@lru_cache(maxsize=None)
def bench_coloring(graph_name: str, k: int, trial: int = 0) -> np.ndarray:
    g = dataset(graph_name)
    rng = np.random.default_rng(BENCH_SEED + 1000 * trial + k)
    return random_coloring(g.n, k, rng)


def coloring_for(graph_name: str, query_name: str, trial: int = 0) -> np.ndarray:
    return bench_coloring(graph_name, paper_query(query_name).k, trial)
