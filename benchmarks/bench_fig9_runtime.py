"""Figure 9 — average execution time per graph and per query (DB).

The paper runs the DB algorithm over all 100 graph-query pairs at 512
ranks and reports per-graph averages (across queries) and per-query
averages (across graphs), observing: skewed graphs are expensive,
roadNetCA is an order of magnitude cheaper than epinions despite being
larger, and longer-cycle queries dominate.

Here: wall-clock DB runs on the stand-in grid.  The *orderings* are the
reproduction target, not absolute seconds.
"""

import time

import numpy as np
import pytest

from repro.bench import dataset
from repro.counting import count_colorful
from repro.query import paper_query

from bench_common import bench_plan, coloring_for, emit_table

GRAPHS = ["condmat", "astroph", "enron", "brightkite", "roadnetca", "brain", "epinions"]
QUERIES = ["glet1", "glet2", "youtube", "wiki", "dros"]
# epinions x dros explodes under PS in other benches; keep it here (DB only)
SKIP = set()


def _run_grid():
    times = {}
    counts = {}
    for gname in GRAPHS:
        g = dataset(gname)
        for qname in QUERIES:
            if (gname, qname) in SKIP:
                continue
            q = paper_query(qname)
            plan = bench_plan(qname)
            colors = coloring_for(gname, qname)
            t0 = time.perf_counter()
            counts[(gname, qname)] = count_colorful(g, q, colors, method="db", plan=plan)
            times[(gname, qname)] = time.perf_counter() - t0
    return times, counts


def test_fig9_average_runtime(benchmark):
    times, counts = _run_grid()

    per_graph = []
    for gname in GRAPHS:
        vals = [times[(gname, q)] for q in QUERIES if (gname, q) in times]
        per_graph.append(
            {
                "graph": gname,
                "avg_time_s": float(np.mean(vals)),
                "max_time_s": float(np.max(vals)),
                "skew": round(dataset(gname).degree_skew(), 1),
            }
        )
    emit_table(
        "fig9_per_graph", per_graph, title="Figure 9a: avg DB time per graph (s)"
    )

    per_query = []
    for qname in QUERIES:
        vals = [times[(g, qname)] for g in GRAPHS if (g, qname) in times]
        per_query.append(
            {
                "query": qname,
                "k": paper_query(qname).k,
                "avg_time_s": float(np.mean(vals)),
                "max_time_s": float(np.max(vals)),
                "longest_cycle": bench_plan(qname).longest_cycle(),
            }
        )
    emit_table(
        "fig9_per_query", per_query, title="Figure 9b: avg DB time per query (s)"
    )

    # Paper shape 1: the flat road network is cheaper than skewed epinions.
    t_road = next(r["avg_time_s"] for r in per_graph if r["graph"] == "roadnetca")
    t_epin = next(r["avg_time_s"] for r in per_graph if r["graph"] == "epinions")
    assert t_road < t_epin

    # Paper shape 2: the longest-cycle query is the most expensive.
    t_dros = next(r["avg_time_s"] for r in per_query if r["query"] == "dros")
    t_glet1 = next(r["avg_time_s"] for r in per_query if r["query"] == "glet1")
    assert t_dros > t_glet1

    # pytest-benchmark number: one representative combo (enron x wiki)
    g = dataset("enron")
    q = paper_query("wiki")
    plan = bench_plan("wiki")
    colors = coloring_for("enron", "wiki")
    benchmark(lambda: count_colorful(g, q, colors, method="db", plan=plan))
