"""Figure 9 — average execution time per graph and per query (DB).

The paper runs the DB algorithm over all 100 graph-query pairs at 512
ranks and reports per-graph averages (across queries) and per-query
averages (across graphs), observing: skewed graphs are expensive,
roadNetCA is an order of magnitude cheaper than epinions despite being
larger, and longer-cycle queries dominate.

Here: wall-clock DB runs on the stand-in grid.  The *orderings* are the
reproduction target, not absolute seconds.  A second test compares the
dict-kernel PS baseline against the vectorized ``ps-vec`` backend on a
small fixed config and records the per-pair speedups as a committed
``BENCH_fig9_runtime.json`` (the perf-CI evidence that the vectorized
sweep pays off).
"""

import time

import numpy as np

from repro import obs
from repro.bench import OBS_OVERHEAD_LIMIT, bench_record, dataset, geometric_mean
from repro.counting.xp import default_namespace
from repro.engine import CountingEngine
from repro.query import paper_query

from bench_common import BENCH_SEED, bench_plan, coloring_for, emit_bench_json, emit_table


def count_colorful(g, q, colors, method="db", plan=None):
    """Bench-local adapter: one colorful count through an ephemeral engine."""
    return CountingEngine(g).count_colorful(q, colors, method=method, plan=plan)

GRAPHS = ["condmat", "astroph", "enron", "brightkite", "roadnetca", "brain", "epinions"]
QUERIES = ["glet1", "glet2", "youtube", "wiki", "dros"]
# epinions x dros explodes under PS in other benches; keep it here (DB only)
SKIP = set()

#: the small fixed config for the PS vs ps-vec comparison (kept cheap so
#: the JSON record can be refreshed on any machine in a few seconds)
VEC_GRAPHS = ["condmat", "enron", "roadnetca"]
VEC_QUERIES = ["glet1", "youtube", "wiki"]

#: the labeled-workload datapoint: one (graph, labeled query) pair run
#: through ps and ps-vec with label masks active, recorded in the same
#: BENCH_fig9_runtime.json — the perf evidence that the vectorized path
#: keeps its edge on the new workload class
LABELED_GRAPH = "enron"
LABELED_QUERY = "wiki"
LABELED_CLASSES = 2


def _run_grid():
    times = {}
    counts = {}
    for gname in GRAPHS:
        g = dataset(gname)
        for qname in QUERIES:
            if (gname, qname) in SKIP:
                continue
            q = paper_query(qname)
            plan = bench_plan(qname)
            colors = coloring_for(gname, qname)
            t0 = time.perf_counter()
            counts[(gname, qname)] = count_colorful(g, q, colors, method="db", plan=plan)
            times[(gname, qname)] = time.perf_counter() - t0
    return times, counts


def test_fig9_average_runtime(benchmark):
    times, counts = _run_grid()

    per_graph = []
    for gname in GRAPHS:
        vals = [times[(gname, q)] for q in QUERIES if (gname, q) in times]
        per_graph.append(
            {
                "graph": gname,
                "avg_time_s": float(np.mean(vals)),
                "max_time_s": float(np.max(vals)),
                "skew": round(dataset(gname).degree_skew(), 1),
            }
        )
    emit_table(
        "fig9_per_graph", per_graph, title="Figure 9a: avg DB time per graph (s)"
    )

    per_query = []
    for qname in QUERIES:
        vals = [times[(g, qname)] for g in GRAPHS if (g, qname) in times]
        per_query.append(
            {
                "query": qname,
                "k": paper_query(qname).k,
                "avg_time_s": float(np.mean(vals)),
                "max_time_s": float(np.max(vals)),
                "longest_cycle": bench_plan(qname).longest_cycle(),
            }
        )
    emit_table(
        "fig9_per_query", per_query, title="Figure 9b: avg DB time per query (s)"
    )

    # Paper shape 1: the flat road network is cheaper than skewed epinions.
    t_road = next(r["avg_time_s"] for r in per_graph if r["graph"] == "roadnetca")
    t_epin = next(r["avg_time_s"] for r in per_graph if r["graph"] == "epinions")
    assert t_road < t_epin

    # Paper shape 2: the longest-cycle query is the most expensive.
    t_dros = next(r["avg_time_s"] for r in per_query if r["query"] == "dros")
    t_glet1 = next(r["avg_time_s"] for r in per_query if r["query"] == "glet1")
    assert t_dros > t_glet1

    # pytest-benchmark number: one representative combo (enron x wiki)
    g = dataset("enron")
    q = paper_query("wiki")
    plan = bench_plan("wiki")
    colors = coloring_for("enron", "wiki")
    benchmark(lambda: count_colorful(g, q, colors, method="db", plan=plan))


def _record_namespace(method):
    """The array namespace a fig9 record ran under (None off the seam).

    ``ps`` is the dict-kernel baseline — no array namespace; ``ps-vec``
    resolves the process default (numpy, or REPRO_ARRAY_NAMESPACE).
    """
    return default_namespace().name if method == "ps-vec" else None


def _timed_pair(g, q, plan, colors, repeats=3):
    """Best-of-N ps and ps-vec timings plus their (identical) counts."""
    timings, counts = {}, {}
    for method in ("ps", "ps-vec"):
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            counts[method] = count_colorful(g, q, colors, method=method, plan=plan)
            best = min(best, time.perf_counter() - t0)
        timings[method] = best
    assert counts["ps"] == counts["ps-vec"], (g.name, q.name)
    return timings, counts


def _labeled_workload():
    """The deterministic labeled (graph, query, plan, coloring) datapoint."""
    from repro.decomposition import choose_plan
    from repro.query.library import with_random_labels

    g = dataset(LABELED_GRAPH)
    rng = np.random.default_rng(BENCH_SEED)
    g = g.with_labels(rng.integers(0, LABELED_CLASSES, size=g.n))
    q = with_random_labels(paper_query(LABELED_QUERY), LABELED_CLASSES, seed=BENCH_SEED)
    q.name = f"{LABELED_QUERY}-labeled"
    return g, q, choose_plan(q), coloring_for(LABELED_GRAPH, LABELED_QUERY)


def test_fig9_vectorized_speedup(benchmark):
    """PS vs ps-vec: identical counts, >=3x faster — unlabeled and labeled.

    Writes ``BENCH_fig9_runtime.json`` with one record per (pair, method),
    the per-pair speedups, and one vertex-labeled datapoint (label masks
    active in both kernels) — the committed perf evidence that the
    vectorized DP sweep pays off on both workload classes.
    """
    rows, records, speedups = [], [], []
    for gname in VEC_GRAPHS:
        g = dataset(gname)
        for qname in VEC_QUERIES:
            q = paper_query(qname)
            plan = bench_plan(qname)
            colors = coloring_for(gname, qname)
            timings, counts = _timed_pair(g, q, plan, colors)
            for method in ("ps", "ps-vec"):
                records.append(
                    bench_record("fig9_runtime", gname, qname, method,
                                 timings[method], count=counts[method],
                                 namespace=_record_namespace(method))
                )
            speedup = timings["ps"] / timings["ps-vec"]
            speedups.append(speedup)
            rows.append(
                {
                    "graph": gname,
                    "query": qname,
                    "ps_s": timings["ps"],
                    "ps_vec_s": timings["ps-vec"],
                    "speedup": speedup,
                }
            )

    # labeled datapoint: same acceptance bar with label masks active.
    # A single (graph, query) sample is noisier than the 9-pair geomean,
    # so take best-of-5 — measured headroom is ~2x over the 3x bar.
    lg, lq, lplan, lcolors = _labeled_workload()
    ltimings, lcounts = _timed_pair(lg, lq, lplan, lcolors, repeats=5)
    for method in ("ps", "ps-vec"):
        records.append(
            bench_record("fig9_runtime", LABELED_GRAPH, lq.name, method,
                         ltimings[method], count=lcounts[method], labeled=True,
                         namespace=_record_namespace(method))
        )
    labeled_speedup = ltimings["ps"] / ltimings["ps-vec"]
    rows.append(
        {
            "graph": LABELED_GRAPH,
            "query": lq.name,
            "ps_s": ltimings["ps"],
            "ps_vec_s": ltimings["ps-vec"],
            "speedup": labeled_speedup,
        }
    )

    # obs-overhead datapoint: the representative ps-vec cell re-timed with
    # the observability kill-switch thrown.  The committed record is the
    # evidence that dormant instrumentation (spans present, nobody
    # collecting) costs nothing measurable on the hot path.
    og = dataset("enron")
    oq = paper_query("wiki")
    oplan = bench_plan("wiki")
    ocolors = coloring_for("enron", "wiki")

    def _best_vec(reps=5):
        best, count = np.inf, None
        for _ in range(reps):
            t0 = time.perf_counter()
            count = count_colorful(og, oq, ocolors, method="ps-vec", plan=oplan)
            best = min(best, time.perf_counter() - t0)
        return best, count

    on_best, on_count = _best_vec()
    obs.disable()
    try:
        off_best, off_count = _best_vec()
    finally:
        obs.enable()
    assert on_count == off_count
    obs_overhead = on_best / off_best
    records.append(
        bench_record("fig9_runtime", "enron", "wiki", "ps-vec@obs-off",
                     off_best, count=off_count,
                     overhead_obs_enabled=obs_overhead)
    )

    emit_table(
        "fig9_vectorized", rows,
        title="Figure 9 addendum: PS dict kernels vs ps-vec (same counts)",
    )
    emit_bench_json(
        "fig9_runtime", records,
        geomean_speedup=geometric_mean(speedups),
        labeled_speedup=labeled_speedup,
        obs_overhead=obs_overhead,
    )

    # The acceptance bar: the vectorized path is >=3x faster on this
    # config, for the unlabeled grid and for the labeled datapoint alike;
    # instrumented ps-vec stays within noise of the kill-switched run.
    assert geometric_mean(speedups) >= 3.0
    assert labeled_speedup >= 3.0
    assert obs_overhead <= OBS_OVERHEAD_LIMIT, (
        f"obs overhead {obs_overhead:.3f}x > {OBS_OVERHEAD_LIMIT}x"
    )

    benchmark(
        lambda: count_colorful(
            dataset("enron"), paper_query("wiki"),
            coloring_for("enron", "wiki"), method="ps-vec", plan=bench_plan("wiki"),
        )
    )
