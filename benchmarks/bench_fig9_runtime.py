"""Figure 9 — average execution time per graph and per query (DB).

The paper runs the DB algorithm over all 100 graph-query pairs at 512
ranks and reports per-graph averages (across queries) and per-query
averages (across graphs), observing: skewed graphs are expensive,
roadNetCA is an order of magnitude cheaper than epinions despite being
larger, and longer-cycle queries dominate.

Here: wall-clock DB runs on the stand-in grid.  The *orderings* are the
reproduction target, not absolute seconds.  A second test compares the
dict-kernel PS baseline against the vectorized ``ps-vec`` backend on a
small fixed config and records the per-pair speedups as a committed
``BENCH_fig9_runtime.json`` (the perf-CI evidence that the vectorized
sweep pays off).
"""

import time

import numpy as np
import pytest

from repro.bench import bench_record, dataset, geometric_mean
from repro.counting import count_colorful
from repro.query import paper_query

from bench_common import bench_plan, coloring_for, emit_bench_json, emit_table

GRAPHS = ["condmat", "astroph", "enron", "brightkite", "roadnetca", "brain", "epinions"]
QUERIES = ["glet1", "glet2", "youtube", "wiki", "dros"]
# epinions x dros explodes under PS in other benches; keep it here (DB only)
SKIP = set()

#: the small fixed config for the PS vs ps-vec comparison (kept cheap so
#: the JSON record can be refreshed on any machine in a few seconds)
VEC_GRAPHS = ["condmat", "enron", "roadnetca"]
VEC_QUERIES = ["glet1", "youtube", "wiki"]


def _run_grid():
    times = {}
    counts = {}
    for gname in GRAPHS:
        g = dataset(gname)
        for qname in QUERIES:
            if (gname, qname) in SKIP:
                continue
            q = paper_query(qname)
            plan = bench_plan(qname)
            colors = coloring_for(gname, qname)
            t0 = time.perf_counter()
            counts[(gname, qname)] = count_colorful(g, q, colors, method="db", plan=plan)
            times[(gname, qname)] = time.perf_counter() - t0
    return times, counts


def test_fig9_average_runtime(benchmark):
    times, counts = _run_grid()

    per_graph = []
    for gname in GRAPHS:
        vals = [times[(gname, q)] for q in QUERIES if (gname, q) in times]
        per_graph.append(
            {
                "graph": gname,
                "avg_time_s": float(np.mean(vals)),
                "max_time_s": float(np.max(vals)),
                "skew": round(dataset(gname).degree_skew(), 1),
            }
        )
    emit_table(
        "fig9_per_graph", per_graph, title="Figure 9a: avg DB time per graph (s)"
    )

    per_query = []
    for qname in QUERIES:
        vals = [times[(g, qname)] for g in GRAPHS if (g, qname) in times]
        per_query.append(
            {
                "query": qname,
                "k": paper_query(qname).k,
                "avg_time_s": float(np.mean(vals)),
                "max_time_s": float(np.max(vals)),
                "longest_cycle": bench_plan(qname).longest_cycle(),
            }
        )
    emit_table(
        "fig9_per_query", per_query, title="Figure 9b: avg DB time per query (s)"
    )

    # Paper shape 1: the flat road network is cheaper than skewed epinions.
    t_road = next(r["avg_time_s"] for r in per_graph if r["graph"] == "roadnetca")
    t_epin = next(r["avg_time_s"] for r in per_graph if r["graph"] == "epinions")
    assert t_road < t_epin

    # Paper shape 2: the longest-cycle query is the most expensive.
    t_dros = next(r["avg_time_s"] for r in per_query if r["query"] == "dros")
    t_glet1 = next(r["avg_time_s"] for r in per_query if r["query"] == "glet1")
    assert t_dros > t_glet1

    # pytest-benchmark number: one representative combo (enron x wiki)
    g = dataset("enron")
    q = paper_query("wiki")
    plan = bench_plan("wiki")
    colors = coloring_for("enron", "wiki")
    benchmark(lambda: count_colorful(g, q, colors, method="db", plan=plan))


def test_fig9_vectorized_speedup(benchmark):
    """PS vs ps-vec on the small fixed config: identical counts, >=3x faster.

    Writes ``BENCH_fig9_runtime.json`` with one record per (pair, method)
    plus the per-pair speedups — the committed perf evidence for the
    vectorized DP sweep.
    """
    rows, records, speedups = [], [], []
    for gname in VEC_GRAPHS:
        g = dataset(gname)
        for qname in VEC_QUERIES:
            q = paper_query(qname)
            plan = bench_plan(qname)
            colors = coloring_for(gname, qname)
            timings = {}
            counts = {}
            for method in ("ps", "ps-vec"):
                best = np.inf
                for _ in range(3):
                    t0 = time.perf_counter()
                    counts[method] = count_colorful(g, q, colors, method=method, plan=plan)
                    best = min(best, time.perf_counter() - t0)
                timings[method] = best
                records.append(
                    bench_record("fig9_runtime", gname, qname, method, best,
                                 count=counts[method])
                )
            assert counts["ps"] == counts["ps-vec"], (gname, qname)
            speedup = timings["ps"] / timings["ps-vec"]
            speedups.append(speedup)
            rows.append(
                {
                    "graph": gname,
                    "query": qname,
                    "ps_s": timings["ps"],
                    "ps_vec_s": timings["ps-vec"],
                    "speedup": speedup,
                }
            )
    emit_table(
        "fig9_vectorized", rows,
        title="Figure 9 addendum: PS dict kernels vs ps-vec (same counts)",
    )
    emit_bench_json(
        "fig9_runtime", records, geomean_speedup=geometric_mean(speedups)
    )

    # The acceptance bar: the vectorized path is >=3x faster on this config.
    assert geometric_mean(speedups) >= 3.0

    benchmark(
        lambda: count_colorful(
            dataset("enron"), paper_query("wiki"),
            coloring_for("enron", "wiki"), method="ps-vec", plan=bench_plan("wiki"),
        )
    )
