"""Adaptive-precision scheduling: trials saved vs a fixed schedule.

The color-coding estimator's cost is linear in trials, but the trials
*needed* for a target relative error vary by an order of magnitude
across (graph, query) cells — per-trial variance is a property of the
workload a fixed ``trials=N`` caller cannot see.  The adaptive
scheduler (``PrecisionSpec(rel_error=...)``) runs every cell to the
same 5% @ 95% target and stops each at its own convergence point; the
fixed baseline must provision the *worst-case* realised trial count to
make the same guarantee everywhere.

This is the same sweep CI's ``precision-smoke`` job runs through
``python -m repro.bench --precision-smoke``; the committed
``BENCH_precision.json`` is its evidence record.

Gates: every cell reaches the target (asserted inside
:func:`run_precision_smoke` — savings can never be bought by
under-delivering on error), no cell exceeds the fixed baseline, and
the geomean trials-saved factor clears 1.5x.
"""

from repro.bench import run_precision_smoke
from repro.engine import EngineConfig

from bench_common import emit_bench_json, emit_table

MIN_GEOMEAN_SAVINGS = 1.5


def test_precision_adaptive_savings(benchmark):
    doc = run_precision_smoke(config=EngineConfig(seed=0))
    emit_table(
        "precision_adaptive",
        doc["records"],
        columns=["key", "trials_used", "stopped_early", "trials_saved",
                 "rel_halfwidth", "seconds"],
        title=(f"Adaptive precision ({doc['rel_error']:g} rel error @ "
               f"{doc['confidence']:g} confidence; fixed worst case "
               f"{doc['trials_fixed_worst_case']} trials)"),
    )
    emit_bench_json(
        "precision", doc["records"],
        **{k: v for k, v in doc.items() if k != "records"},
    )

    fixed = doc["trials_fixed_worst_case"]
    for rec in doc["records"]:
        # the adaptive scheduler never runs more than the fixed schedule
        assert rec["trials_used"] <= fixed, rec["key"]
        # ...and certified the target precision when it stopped
        assert rec["rel_halfwidth"] <= doc["rel_error"] * (1 + 1e-9), rec["key"]
    assert doc["geomean_trials_saved"] >= MIN_GEOMEAN_SAVINGS

    # pytest-benchmark number: one representative adaptive cell
    from repro.bench import dataset
    from repro.engine import CountingEngine, PrecisionSpec
    from repro.query import paper_query

    engine = CountingEngine(dataset("roadnetca"))
    q = paper_query("wiki")
    spec = PrecisionSpec(rel_error=0.05, max_trials=400)
    benchmark(lambda: engine.count(q, method="ps-vec", precision=spec).trials_used)
