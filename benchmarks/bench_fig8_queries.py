"""Figure 8 — the query benchmark: reconstruction inventory.

Prints each reconstructed query with its size (vs the paper's), treewidth
and decomposition-plan statistics, and benchmarks plan enumeration + the
Section 6 heuristic (the "planner" layer, which the paper notes "takes
insignificant amount of running time").
"""

import time


from repro.bench import bench_record
from repro.decomposition import choose_plan, enumerate_plans
from repro.query import PAPER_QUERY_SIZES, paper_queries, satellite, treewidth

from bench_common import emit_bench_json, emit_table


def test_fig8_query_inventory(benchmark):
    rows = []
    planner_records = []
    for name, q in paper_queries().items():
        t0 = time.perf_counter()
        plans = enumerate_plans(q)
        best = choose_plan(q)
        planner_records.append(
            bench_record("fig8_planner", "-", name, "planner", time.perf_counter() - t0)
        )
        rows.append(
            {
                "query": name,
                "paper_k": PAPER_QUERY_SIZES[name],
                "ours_k": q.k,
                "edges": q.num_edges(),
                "treewidth": treewidth(q),
                "plans": len(plans),
                "longest_cycle": best.longest_cycle(),
                "blocks": len(best.blocks()),
            }
        )
    sat = satellite()
    rows.append(
        {
            "query": "satellite (Fig 2)",
            "paper_k": 11,
            "ours_k": sat.k,
            "edges": sat.num_edges(),
            "treewidth": treewidth(sat),
            "plans": len(enumerate_plans(sat)),
            "longest_cycle": choose_plan(sat).longest_cycle(),
            "blocks": len(choose_plan(sat).blocks()),
        }
    )
    emit_table("fig8", rows, title="Figure 8: query library (reconstructed)")
    emit_bench_json("fig8_planner", planner_records)

    for r in rows:
        assert r["treewidth"] <= 2
        assert r["paper_k"] == r["ours_k"]

    # benchmark the planner on the largest query
    result = benchmark(lambda: choose_plan(paper_queries()["brain2"]))
    assert result.longest_cycle() >= 3
