"""Figure 11 — normalized execution time, max load and avg load on enron.

The paper (512 ranks, enron): DB has lower *average* load than PS (it
avoids wasteful computations) and its time improvement correlates with the
improvement in *maximum* load (better balance).  Load = number of
projection-table operations, exactly what our execution context counts.
"""


from repro.bench import SIM_RANKS_HIGH, dataset
from repro.distributed import run_distributed
from repro.query import paper_query

from bench_common import bench_plan, coloring_for, emit_table

GRAPH = "enron"
QUERIES = ["glet1", "glet2", "youtube", "wiki", "dros"]


def test_fig11_load_balance(benchmark):
    g = dataset(GRAPH)
    rows = []
    for qname in QUERIES:
        q = paper_query(qname)
        plan = bench_plan(qname)
        colors = coloring_for(GRAPH, qname)
        ps = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="ps", plan=plan)
        db = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan)
        assert ps.count == db.count
        norm_t = max(ps.makespan, db.makespan)
        norm_max = max(ps.max_load, db.max_load)
        norm_avg = max(ps.avg_load, db.avg_load)
        rows.append(
            {
                "query": qname,
                "time_PS": ps.makespan / norm_t,
                "time_DB": db.makespan / norm_t,
                "maxload_PS": ps.max_load / norm_max,
                "maxload_DB": db.max_load / norm_max,
                "avgload_PS": ps.avg_load / norm_avg,
                "avgload_DB": db.avg_load / norm_avg,
                "imb_PS": ps.imbalance,
                "imb_DB": db.imbalance,
            }
        )
    emit_table(
        "fig11",
        rows,
        title=f"Figure 11: normalized time / max load / avg load on {GRAPH} "
        f"({SIM_RANKS_HIGH} simulated ranks; paper: 512 ranks)",
        floatfmt=".2f",
    )

    # Paper shapes: DB has lower average load on most queries, and the
    # time winner matches the max-load winner.
    avg_wins = sum(1 for r in rows if r["avgload_DB"] <= r["avgload_PS"])
    assert avg_wins >= len(rows) - 1
    for r in rows:
        time_winner_db = r["time_DB"] <= r["time_PS"]
        load_winner_db = r["maxload_DB"] <= r["maxload_PS"]
        assert time_winner_db == load_winner_db, r["query"]

    # benchmark: a tracked DB run on the cheapest query
    q = paper_query("glet2")
    plan = bench_plan("glet2")
    colors = coloring_for(GRAPH, "glet2")
    benchmark(
        lambda: run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan).max_load
    )
