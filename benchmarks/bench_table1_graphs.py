"""Table 1 — data-graph inventory: paper statistics vs our stand-ins.

Regenerates the paper's Table 1 with the synthetic substitutes side by
side.  The property to check is the *skew ordering* (social networks
heavy-tailed, road network flat), which drives every later figure.
"""

import numpy as np

from repro.bench import PAPER_TABLE1, dataset, dataset_names
from repro.graph.degree import zipf_degree_sequence
from repro.graph.generators import chung_lu

from bench_common import emit_table


def test_table1_inventory(benchmark):
    rows = []
    for name in dataset_names():
        paper = PAPER_TABLE1[name]
        g = dataset(name)
        rows.append(
            {
                "graph": name,
                "domain": paper["domain"],
                "paper_nodes": paper["nodes"],
                "paper_edges": paper["edges"],
                "paper_avg": paper["avg_deg"],
                "paper_max": paper["max_deg"],
                "ours_nodes": g.n,
                "ours_edges": g.m,
                "ours_avg": round(g.avg_degree(), 1),
                "ours_max": g.max_degree(),
                "ours_skew": round(g.degree_skew(), 1),
            }
        )
    emit_table("table1", rows, title="Table 1: real graphs (paper) vs stand-ins (ours)")

    # shape check mirroring the paper: road net unskewed, socials skewed
    skew = {r["graph"]: r["ours_skew"] for r in rows}
    assert skew["roadnetca"] < 3
    assert skew["epinions"] > 10

    # benchmark: cost of generating one representative dataset
    rng_seed = 42

    def build():
        rng = np.random.default_rng(rng_seed)
        seq = zipf_degree_sequence(720, 2.0, 5.0, max_degree=115, rng=rng)
        return chung_lu(seq, rng)

    g = benchmark(build)
    assert g.n == 720
