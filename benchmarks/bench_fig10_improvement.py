"""Figure 10 — improvement factor of DB over PS at low and high rank counts.

The paper compares PS and DB over the 100-pair grid at 32 and 512 ranks:
DB wins on 84% of pairs at 32 ranks (IF up to 9.1x, avg 2.4x) and on 89%
at 512 ranks (up to 28.7x, avg 5.0x) — IF grows with rank count because DB
also balances load better.  Road networks are the exception (IF < 1).

Here: modeled makespan from one tracked 32-rank run per method, coarsened
to 2 ranks for the low-rank column.  Shapes to reproduce: DB wins on most
skewed pairs, IF grows with ranks, road network favours PS.
"""

import numpy as np

from repro.bench import SIM_RANKS_HIGH, SIM_RANKS_LOW, dataset, geometric_mean
from repro.counting import count_colorful_ps_vec
from repro.distributed import DEFAULT_KAPPA, run_distributed
from repro.query import paper_query

from bench_common import bench_plan, coloring_for, emit_bench_json, emit_table

GRAPHS = ["condmat", "enron", "epinions", "roadnetca"]
QUERIES = ["glet1", "glet2", "youtube", "wiki", "dros"]
SKIP = {("epinions", "dros")}  # PS path tables explode; paper has blanks too


def test_fig10_improvement_factor(benchmark):
    rows = []
    ifs_low, ifs_high = [], []
    for gname in GRAPHS:
        g = dataset(gname)
        for qname in QUERIES:
            if (gname, qname) in SKIP:
                continue
            q = paper_query(qname)
            plan = bench_plan(qname)
            colors = coloring_for(gname, qname)
            ps = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="ps", plan=plan)
            db = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan)
            assert ps.count == db.count
            # the vectorized backend must agree with both dict kernels
            assert count_colorful_ps_vec(g, q, colors, plan=plan) == ps.count
            factor = SIM_RANKS_HIGH // SIM_RANKS_LOW
            if_high = ps.makespan / db.makespan
            if_low = ps.stats.coarsen(factor).makespan(DEFAULT_KAPPA) / db.stats.coarsen(
                factor
            ).makespan(DEFAULT_KAPPA)
            ifs_low.append(if_low)
            ifs_high.append(if_high)
            rows.append(
                {
                    "graph": gname,
                    "query": qname,
                    f"IF@{SIM_RANKS_LOW}": if_low,
                    f"IF@{SIM_RANKS_HIGH}": if_high,
                    "db_wins_low": "Y" if if_low > 1 else "n",
                    "db_wins_high": "Y" if if_high > 1 else "n",
                }
            )
    emit_table(
        "fig10",
        rows,
        title=(
            f"Figure 10: improvement factor IF = T(PS)/T(DB) at "
            f"{SIM_RANKS_LOW} and {SIM_RANKS_HIGH} simulated ranks "
            "(paper: 32 / 512 MPI ranks)"
        ),
    )

    frac_low = np.mean([f > 1 for f in ifs_low])
    frac_high = np.mean([f > 1 for f in ifs_high])
    summary = [
        {
            "ranks": SIM_RANKS_LOW,
            "db_wins_%": 100 * frac_low,
            "max_IF": max(ifs_low),
            "geomean_IF": geometric_mean(ifs_low),
        },
        {
            "ranks": SIM_RANKS_HIGH,
            "db_wins_%": 100 * frac_high,
            "max_IF": max(ifs_high),
            "geomean_IF": geometric_mean(ifs_high),
        },
    ]
    emit_table(
        "fig10_summary",
        summary,
        title="Figure 10 summary (paper: 84%/89% wins, max 9.1x/28.7x, avg 2.4x/5.0x)",
    )
    emit_bench_json(
        "fig10_improvement",
        [
            {
                "key": f"fig10/{r['graph']}/{r['query']}",
                "if_low": float(r[f"IF@{SIM_RANKS_LOW}"]),
                "if_high": float(r[f"IF@{SIM_RANKS_HIGH}"]),
            }
            for r in rows
        ],
    )

    # Paper shapes: DB wins the majority of skewed pairs; road net disagrees.
    skewed_ifs = [
        r[f"IF@{SIM_RANKS_HIGH}"] for r in rows if r["graph"] != "roadnetca"
    ]
    assert np.mean([f > 1 for f in skewed_ifs]) >= 0.6
    road_ifs = [r[f"IF@{SIM_RANKS_HIGH}"] for r in rows if r["graph"] == "roadnetca"]
    assert min(road_ifs) < 1.0

    # benchmark: the PS/DB comparison kernel on one cheap combo
    g = dataset("condmat")
    q = paper_query("glet1")
    plan = bench_plan("glet1")
    colors = coloring_for("condmat", "glet1")
    benchmark(
        lambda: run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan).makespan
    )
