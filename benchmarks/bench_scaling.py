"""Strong scaling of the real ``ps-dist`` sharded executor.

Where ``bench_fig13_scaling.py`` derives the paper's Figure 13 curves
from *modeled* makespans (simulated rank accounting), this bench runs
the actual multiprocess executor at 1/2/4 shard workers and reports the
*measured* per-rank critical path — the same sweep CI's ``scaling-smoke``
job runs through ``python -m repro.bench --scaling``.

Paper reference: strong scaling of the distributed DP, speedup vs ranks
(avg 8.2x at 16x more ranks on Blue Gene/Q).  Here the span is 4x and
the metric is measured CPU seconds on the stand-in grid.
"""

from repro.bench import run_scaling_bench
from repro.engine import EngineConfig

from bench_common import emit_bench_json, emit_table

WORKERS = (1, 2, 4)
MIN_SPEEDUP_AT_MAX = 1.5


def test_scaling_strong_real(benchmark):
    doc = run_scaling_bench(workers=WORKERS, repeats=2, config=EngineConfig(seed=0))
    emit_table(
        "scaling_real",
        doc["speedups"],
        title=f"Real ps-dist strong scaling ({doc['cores']} cores; "
        "measured critical path vs 1 worker)",
        floatfmt=".2f",
    )
    emit_bench_json(
        "scaling", doc["records"],
        **{k: v for k, v in doc.items() if k != "records"},
    )

    wmax = WORKERS[-1]
    for row in doc["speedups"]:
        sps = [row[f"speedup@{w}"] for w in WORKERS[1:]]
        # real speedups: monotone-ish and meaningfully parallel at 4 workers
        assert all(b >= a * 0.8 for a, b in zip(sps, sps[1:])), row["key"]
        assert row[f"speedup@{wmax}"] > 1.0, row["key"]
    assert doc["speedup_at_max"] >= MIN_SPEEDUP_AT_MAX

    # pytest-benchmark number: one representative sharded trial
    from repro.bench import dataset
    from repro.distributed import ShardedExecutor

    from bench_common import bench_plan, coloring_for

    g = dataset("epinions")
    plan = bench_plan("wiki")
    colors = coloring_for("epinions", "wiki")
    with ShardedExecutor(g, workers=2) as executor:
        benchmark(lambda: executor.count(plan, colors).count)
