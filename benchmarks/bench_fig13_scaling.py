"""Figure 13 — strong scaling (enron) and weak scaling (R-MAT) of DB.

Paper strong scaling: speedup vs ranks 32..512 on enron, avg 8.2x / max
9.9x at 512 (ideal 16x).  Paper weak scaling: R-MAT with Graph500
parameters, 1K vertices per rank, execution time stays near-flat from 32
to 512 ranks.

Here: modeled makespans; ranks 2..32 (same 16x span), R-MAT with 128
vertices per simulated rank.
"""

import numpy as np

from repro.bench import SIM_RANKS_HIGH, SIM_RANKS_LOW, dataset
from repro.counting.estimator import random_coloring
from repro.distributed import DEFAULT_KAPPA, run_distributed
from repro.graph.generators import rmat
from repro.graph.properties import largest_component_subgraph
from repro.query import paper_query

from bench_common import bench_plan, coloring_for, emit_table

RANKS = [2, 4, 8, 16, 32]
STRONG_GRAPH = "enron"
STRONG_QUERIES = ["glet1", "glet2", "youtube", "wiki", "dros"]
WEAK_QUERIES = ["glet1", "youtube"]
VERTICES_PER_RANK = 128


def test_fig13_strong_scaling(benchmark):
    g = dataset(STRONG_GRAPH)
    rows = []
    for qname in STRONG_QUERIES:
        q = paper_query(qname)
        plan = bench_plan(qname)
        colors = coloring_for(STRONG_GRAPH, qname)
        run = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan)
        base = None
        row = {"query": qname}
        for r in RANKS:
            stats = run.stats.coarsen(SIM_RANKS_HIGH // r)
            t = stats.makespan(DEFAULT_KAPPA)
            if base is None:
                base = t
            row[f"speedup@{r}"] = base / t if t > 0 else 1.0
        rows.append(row)
    emit_table(
        "fig13_strong",
        rows,
        title=f"Figure 13a: strong scaling of DB on {STRONG_GRAPH} "
        f"(speedup vs {SIM_RANKS_LOW} ranks; paper: avg 8.2x at 16x more ranks)",
        floatfmt=".2f",
    )
    for row in rows:
        # speedups are monotone and real but sub-ideal
        sps = [row[f"speedup@{r}"] for r in RANKS]
        assert all(b >= a * 0.95 for a, b in zip(sps, sps[1:])), row["query"]
        assert 1.0 < sps[-1] <= 16.0 + 1e-9

    q = paper_query("glet1")
    plan = bench_plan("glet1")
    colors = coloring_for(STRONG_GRAPH, "glet1")
    benchmark(
        lambda: run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan).makespan
    )


def test_fig13_weak_scaling(benchmark):
    rows = []
    rng = np.random.default_rng(77)
    for qname in WEAK_QUERIES:
        q = paper_query(qname)
        plan = bench_plan(qname)
        row = {"query": qname}
        for r in RANKS:
            n_target = VERTICES_PER_RANK * r
            scale = int(np.ceil(np.log2(n_target)))
            g = largest_component_subgraph(
                rmat(scale, 8, np.random.default_rng(1000 + scale), name=f"rmat{scale}")
            )
            colors = random_coloring(g.n, q.k, rng)
            run = run_distributed(g, q, colors, r, method="db", plan=plan)
            # normalised time per unit of work-per-rank
            row[f"time@{r}"] = run.makespan
        rows.append(row)
    emit_table(
        "fig13_weak",
        rows,
        title="Figure 13b: weak scaling of DB on R-MAT "
        f"({VERTICES_PER_RANK} vertices/rank; paper: near-flat 32..512 ranks)",
        floatfmt=".3g",
    )
    # Weak scaling shape: time grows far slower than the 16x work growth
    # (R-MAT supralinearity makes perfectly flat unrealistic even on BG/Q).
    for row in rows:
        t_first = row[f"time@{RANKS[0]}"]
        t_last = row[f"time@{RANKS[-1]}"]
        assert t_last < t_first * len(RANKS) * 4

    benchmark(lambda: rmat(9, 8, np.random.default_rng(5)).m)
