"""Extension — variance reduction with larger color palettes.

The paper fixes the palette at ``k`` colors (the classic Alon et al.
setting).  The standard extension uses ``c > k`` colors: a fixed match is
colorful with probability ``(c)_k / c^k`` (higher than ``k!/k^k``), so
the per-trial estimate concentrates faster at the price of wider
signature tables (``2^c`` instead of ``2^k`` possible bitmasks).

This bench sweeps the palette size for two queries on two graphs and
reports relative std and per-trial wall time — the precision/cost
trade-off that Figure 15's protocol would show under the extension.
"""


from repro.bench import dataset
from repro.counting.estimator import normalization_factor
from repro.engine import CountingEngine, CountRequest
from repro.query import paper_query

from bench_common import emit_table

CASES = [("condmat", "glet1"), ("enron", "glet2")]
PALETTES = [0, 1, 2, 4]  # extra colors beyond k
TRIALS = 8


def test_extension_palette_sweep(benchmark):
    rows = []
    for gname, qname in CASES:
        g = dataset(gname)
        q = paper_query(qname)
        # one engine per graph: the plan is built once for the whole sweep
        engine = CountingEngine(g)
        results = engine.count_many(
            CountRequest(query=q, trials=TRIALS, seed=123, num_colors=q.k + extra)
            for extra in PALETTES
        )
        for result in results:
            rows.append(
                {
                    "graph": gname,
                    "query": qname,
                    "colors": result.num_colors,
                    "scale": normalization_factor(q.k, result.num_colors),
                    "estimate": result.estimate,
                    "rel_std": result.relative_std,
                    "s_per_trial": result.time_per_trial,
                }
            )
        assert engine.stats.plan_builds == 1  # cache shared across palettes
    emit_table(
        "extension_colors",
        rows,
        title="Extension: palette size vs estimator precision "
        "(num_colors = k .. k+4; scale = c^k/(c)_k)",
    )

    # Shape: precision improves (or holds) as the palette grows, for each case.
    for gname, qname in CASES:
        sub = [r for r in rows if r["graph"] == gname and r["query"] == qname]
        assert sub[-1]["rel_std"] <= sub[0]["rel_std"] * 1.1
        # estimates stay consistent across palettes (same ballpark)
        ests = [r["estimate"] for r in sub if r["estimate"] > 0]
        if len(ests) >= 2:
            assert max(ests) <= 5 * min(ests)

    g = dataset("condmat")
    q = paper_query("glet1")
    engine = CountingEngine(g)
    engine.plan_for(q)  # warm the plan cache; benchmark measures counting only
    benchmark(
        lambda: engine.count(q, trials=1, seed=3, num_colors=q.k + 2).estimate
    )
