"""Figure 12 — average DB speedup at high vs low rank counts.

The paper reports, per query (averaged over graphs) and per graph
(averaged over queries), the ratio of DB execution time at 32 ranks to
512 ranks — ideal 16x, observed 7.4x-15.8x.

Here: modeled makespan ratio between SIM_RANKS_LOW and SIM_RANKS_HIGH
(also a 16x rank growth), derived from one tracked run per pair via
rank coarsening.
"""

import numpy as np

from repro.bench import SIM_RANKS_HIGH, SIM_RANKS_LOW, dataset
from repro.distributed import DEFAULT_KAPPA, run_distributed
from repro.query import paper_query

from bench_common import bench_plan, coloring_for, emit_table

GRAPHS = ["condmat", "enron", "epinions", "brightkite", "roadnetca"]
QUERIES = ["glet1", "glet2", "youtube", "wiki"]
IDEAL = SIM_RANKS_HIGH // SIM_RANKS_LOW


def test_fig12_speedup(benchmark):
    speedups = {}
    for gname in GRAPHS:
        g = dataset(gname)
        for qname in QUERIES:
            q = paper_query(qname)
            plan = bench_plan(qname)
            colors = coloring_for(gname, qname)
            run = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan)
            t_high = run.makespan
            t_low = run.stats.coarsen(IDEAL).makespan(DEFAULT_KAPPA)
            speedups[(gname, qname)] = t_low / t_high if t_high > 0 else 1.0

    per_query = [
        {
            "query": qname,
            "avg_speedup": float(np.mean([speedups[(g, qname)] for g in GRAPHS])),
            "ideal": IDEAL,
        }
        for qname in QUERIES
    ]
    per_graph = [
        {
            "graph": gname,
            "avg_speedup": float(np.mean([speedups[(gname, q)] for q in QUERIES])),
            "ideal": IDEAL,
        }
        for gname in GRAPHS
    ]
    emit_table(
        "fig12_per_query",
        per_query,
        title=f"Figure 12a: avg DB speedup at {SIM_RANKS_HIGH} vs {SIM_RANKS_LOW} "
        f"ranks, per query (ideal {IDEAL}x; paper: 7.4-15.8x of ideal 16x)",
    )
    emit_table(
        "fig12_per_graph",
        per_graph,
        title=f"Figure 12b: avg DB speedup per graph (ideal {IDEAL}x)",
    )

    # Paper shape: real but sub-ideal speedups everywhere.
    for row in per_query + per_graph:
        assert 1.0 < row["avg_speedup"] <= IDEAL + 1e-9

    g = dataset("condmat")
    q = paper_query("glet1")
    plan = bench_plan("glet1")
    colors = coloring_for("condmat", "glet1")
    benchmark(
        lambda: run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan).speedup
    )
