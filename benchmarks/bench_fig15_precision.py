"""Figure 15 — precision of color coding across independent trials.

The paper repeats random colorings per graph-query pair and reports the
coefficient of variation (empirical variance over mean): 82% of pairs
reach CoV <= 0.1 with 3 trials, 91% with 10 trials.

Here: the same protocol on the stand-in grid.  We report the paper's
variance/mean statistic and the scale-free std/mean alongside; the
fraction-improves-with-trials shape is the target.
"""

import numpy as np

from repro.bench import dataset, run_query_grid
from repro.counting.estimator import EstimateResult
from repro.engine import CountingEngine
from repro.query import paper_query

from bench_common import emit_table

GRAPHS = ["condmat", "enron", "epinions", "roadnetca"]
QUERIES = ["glet1", "glet2", "youtube", "wiki"]
TRIALS = 10
THRESHOLD = 0.1


def _cov_at(result: EstimateResult, trials: int) -> float:
    sub = EstimateResult(
        result.query_name,
        result.graph_name,
        trials,
        result.colorful_counts[:trials],
        result.scale,
    )
    return sub.relative_std


def test_fig15_precision(benchmark):
    rows = []
    cov3, cov10 = [], []
    for gname in GRAPHS:
        g = dataset(gname)
        # one batched engine pass per graph: every query planned once
        results = run_query_grid(
            g, [paper_query(q) for q in QUERIES], trials=TRIALS, seed=99
        )
        for qname, result in zip(QUERIES, results):
            c3, c10 = _cov_at(result, 3), _cov_at(result, TRIALS)
            cov3.append(c3)
            cov10.append(c10)
            rows.append(
                {
                    "graph": gname,
                    "query": qname,
                    "estimate": result.estimate,
                    "cov_3_trials": c3,
                    "cov_10_trials": c10,
                    "var_over_mean": result.coefficient_of_variation,
                }
            )
    emit_table(
        "fig15",
        rows,
        title="Figure 15: color-coding precision (std/mean of colorful counts)",
    )
    bound = 0.3  # scale-free std/mean bound (graphs are ~100x smaller than
    # the paper's, so per-trial counts are smaller and noisier)
    frac3 = float(np.mean([c <= bound for c in cov3]))
    frac10 = float(np.mean([c <= bound for c in cov10]))
    emit_table(
        "fig15_summary",
        [
            {"trials": 3, f"frac_cov<={bound}": frac3},
            {"trials": TRIALS, f"frac_cov<={bound}": frac10},
        ],
        title="Figure 15 summary (paper: 82% @3 trials, 91% @10 trials for CoV<=0.1)",
    )
    # Paper shape: precision does not degrade with more trials, and the
    # estimator concentrates for most pairs.
    assert frac10 >= frac3 - 0.13
    assert frac10 >= 0.5

    g = dataset("condmat")
    q = paper_query("glet1")
    engine = CountingEngine(g)
    engine.plan_for(q)  # warm the plan cache; benchmark measures counting only
    benchmark(lambda: engine.count(q, trials=2, seed=1).estimate)
