"""Ablations called out in the paper's prose.

1. **Decomposition-tree spread** (Section 6): across all plans of one
   query on one graph the paper saw up to a 13x time difference — we
   measure the max/min modeled-time ratio over plans.
2. **Even-split PS** (Section 5.1): the paper implemented a PS variant
   that splits paths evenly and found performance "does not differ
   significantly" — we compare total operations of ``ps`` vs ``ps-even``.
3. **Partition strategies** (Section 7): the paper uses 1-D block
   distribution; we compare block/cyclic/hash partitions' load imbalance
   for the DB algorithm.
"""

import numpy as np

from repro.bench import SIM_RANKS_HIGH, dataset
from repro.decomposition import enumerate_plans, rank_plans
from repro.distributed import run_distributed
from repro.query import paper_query

from bench_common import bench_plan, coloring_for, emit_table


def test_ablation_plan_spread(benchmark):
    rows = []
    for gname, qname in [("enron", "wiki"), ("condmat", "ecoli1"), ("enron", "brain1")]:
        g = dataset(gname)
        q = paper_query(qname)
        plans = rank_plans(enumerate_plans(q))[:10]
        colors = coloring_for(gname, qname)
        times = [
            run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=p).makespan
            for p in plans
        ]
        rows.append(
            {
                "graph": gname,
                "query": qname,
                "plans": len(plans),
                "best_time": min(times),
                "worst_time": max(times),
                "spread_x": max(times) / min(times),
            }
        )
    emit_table(
        "ablation_plans",
        rows,
        title="Ablation: time spread across decomposition trees "
        "(paper: up to 13x between plans)",
    )
    assert max(r["spread_x"] for r in rows) > 1.2  # plan choice matters

    benchmark(lambda: len(enumerate_plans(paper_query("wiki"))))


def _uneven_query():
    """C7 with pendant leaves on *adjacent* cycle nodes.

    This is the paper's Section 5.1 discussion case: splitting at the
    boundary nodes gives maximally uneven paths (1 edge vs 6 edges), so
    plain PS and even-split PS genuinely differ.  (On most Figure 8
    queries the boundary nodes happen to sit diagonally, making the two
    variants coincide — itself a finding worth recording.)
    """
    from repro.query import QueryGraph

    edges = [(i, (i + 1) % 7) for i in range(7)] + [(0, 7), (1, 8)]
    return QueryGraph(edges, name="c7-uneven")


def test_ablation_even_split_ps(benchmark):
    from repro.decomposition import choose_plan
    from repro.counting.estimator import random_coloring
    import numpy as np

    rows = []
    uneven = _uneven_query()
    cases = [
        ("enron", paper_query("glet1"), bench_plan("glet1")),
        ("enron", uneven, choose_plan(uneven)),
        ("condmat", uneven, choose_plan(uneven)),
    ]
    for gname, q, plan in cases:
        g = dataset(gname)
        qname = q.name
        rng = np.random.default_rng(17)
        colors = random_coloring(g.n, q.k, rng)
        ps = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="ps", plan=plan)
        pe = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="ps-even", plan=plan)
        db = run_distributed(g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan)
        assert ps.count == pe.count == db.count
        rows.append(
            {
                "graph": gname,
                "query": qname,
                "ops_ps": ps.serial_time,
                "ops_ps_even": pe.serial_time,
                "ops_db": db.serial_time,
                "even_vs_ps": pe.serial_time / ps.serial_time,
                "db_vs_ps": db.serial_time / ps.serial_time,
            }
        )
    emit_table(
        "ablation_ps_even",
        rows,
        title="Ablation: even-split PS vs PS vs DB total operations "
        "(paper: even split alone does not close the gap — pruning does)",
    )
    # On Figure 8 queries the boundary nodes sit (near-)diagonally, so the
    # two PS variants coincide (ratio 1) — consistent with the paper's
    # "does not differ significantly".  On the adversarial uneven query
    # the even split avoids the exploding long path, yet DB still wins:
    # the pruning, not the split, is the durable improvement.
    for r in rows:
        assert r["even_vs_ps"] <= 1.05  # even split never loses
        assert r["ops_db"] <= r["ops_ps_even"] * 1.05  # DB at least matches it

    g = dataset("condmat")
    q = paper_query("glet1")
    plan = bench_plan("glet1")
    colors = coloring_for("condmat", "glet1")
    benchmark(
        lambda: run_distributed(g, q, colors, 4, method="ps-even", plan=plan).count
    )


def test_ablation_partition_strategy(benchmark):
    rows = []
    g = dataset("enron")
    q = paper_query("wiki")
    plan = bench_plan("wiki")
    colors = coloring_for("enron", "wiki")
    for strategy in ("block", "cyclic", "hash"):
        run = run_distributed(
            g, q, colors, SIM_RANKS_HIGH, method="db", plan=plan, strategy=strategy
        )
        rows.append(
            {
                "strategy": strategy,
                "makespan": run.makespan,
                "imbalance": run.imbalance,
                "msgs": run.stats.total_msgs(),
            }
        )
    emit_table(
        "ablation_partition",
        rows,
        title="Ablation: vertex partition strategy (paper uses 1-D block)",
    )
    counts = {r["strategy"]: r for r in rows}
    assert len(counts) == 3

    benchmark(
        lambda: run_distributed(g, q, colors, 4, method="db", plan=plan, strategy="hash").makespan
    )
