"""Tests for the color-coding estimator (Section 2 / Figure 15)."""

import math

import numpy as np
import pytest

from repro.counting import (
    count_colorful_matches,
    count_matches,
    estimate_matches,
    normalization_factor,
    random_coloring,
)
from repro.counting.estimator import EstimateResult
from repro.graph import Graph, erdos_renyi
from repro.query import cycle_query, paper_query


class TestNormalization:
    def test_factor_values(self):
        assert normalization_factor(1) == 1.0
        assert normalization_factor(2) == 2.0
        assert normalization_factor(3) == pytest.approx(27 / 6)
        assert normalization_factor(4) == pytest.approx(256 / 24)

    def test_factor_is_inverse_colorful_probability(self):
        # P[fixed k-set colorful] = k!/k^k
        for k in range(2, 7):
            assert normalization_factor(k) == pytest.approx(
                1.0 / (math.factorial(k) / k**k)
            )


class TestExactUnbiasedness:
    """On tiny inputs, enumerate ALL k^n colorings: the scaled expectation
    must equal the exact match count — the paper's Section 2 identity."""

    @pytest.mark.parametrize(
        "edges,qlen",
        [
            ([(0, 1), (1, 2), (0, 2)], 3),             # triangle in K3
            ([(0, 1), (1, 2), (2, 3), (3, 0)], 4),     # C4 in C4 (k=4, 4^4=256)
            ([(0, 1), (1, 2), (2, 0), (2, 3)], 3),     # triangle in tailed K3
        ],
    )
    def test_expectation_identity(self, edges, qlen):
        n = max(max(e) for e in edges) + 1
        g = Graph(n, edges)
        q = cycle_query(qlen)
        k = q.k
        total_colorful = 0
        num_colorings = k**n
        for code in range(num_colorings):
            colors = np.array(
                [(code // k**i) % k for i in range(n)], dtype=np.int64
            )
            total_colorful += count_colorful_matches(g, q, colors)
        expectation = total_colorful / num_colorings
        estimate = normalization_factor(k) * expectation
        assert estimate == pytest.approx(count_matches(g, q), rel=1e-9)


class TestEstimator:
    def test_estimate_converges(self, rng):
        g = erdos_renyi(25, 0.3, rng, name="er25")
        q = cycle_query(4)
        exact = count_matches(g, q)
        result = estimate_matches(g, q, trials=60, seed=3)
        assert result.estimate == pytest.approx(exact, rel=0.35)

    def test_deterministic_given_seed(self, rng):
        g = erdos_renyi(15, 0.3, rng)
        q = paper_query("glet1")
        a = estimate_matches(g, q, trials=4, seed=11)
        b = estimate_matches(g, q, trials=4, seed=11)
        assert a.colorful_counts == b.colorful_counts

    def test_methods_agree_in_distribution(self, rng):
        g = erdos_renyi(15, 0.35, rng)
        q = paper_query("glet2")
        ps = estimate_matches(g, q, trials=5, seed=7, method="ps")
        db = estimate_matches(g, q, trials=5, seed=7, method="db")
        # identical seeds -> identical colorings -> identical counts
        assert ps.colorful_counts == db.colorful_counts

    def test_requires_positive_trials(self, triangle_graph):
        with pytest.raises(ValueError):
            estimate_matches(triangle_graph, cycle_query(3), trials=0)

    def test_result_statistics(self):
        r = EstimateResult("q", "g", 4, [10, 20, 10, 20], scale=2.0)
        assert r.colorful_mean == 15.0
        assert r.estimate == 30.0
        assert r.colorful_variance == pytest.approx(np.var([10, 20, 10, 20], ddof=1))
        assert r.coefficient_of_variation == pytest.approx(r.colorful_variance / 15.0)
        assert r.relative_std == pytest.approx(math.sqrt(r.colorful_variance) / 15.0)

    def test_zero_counts_cov(self):
        r = EstimateResult("q", "g", 3, [0, 0, 0], scale=2.0)
        assert r.coefficient_of_variation == 0.0
        assert r.estimate == 0.0


class TestRandomColoring:
    def test_range(self, rng):
        c = random_coloring(1000, 7, rng)
        assert c.min() >= 0 and c.max() < 7

    def test_roughly_uniform(self, rng):
        c = random_coloring(7000, 7, rng)
        counts = np.bincount(c, minlength=7)
        assert abs(counts - 1000).max() < 200
