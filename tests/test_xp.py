"""The array-namespace seam: resolution, strictness, fallbacks, parity.

Four layers of guarantees:

* ``resolve_namespace`` maps spec strings to handles with the documented
  fallback order — explicit GPU specs fail loudly when the package or
  device is missing, ``auto`` degrades cleanly to NumPy;
* ``StrictNamespace`` admits exactly the audited primitive set and
  rejects everything else (the enforcement half of the seam contract);
* the portable fallbacks (``lexsort_fallback``, ``add_reduceat_fallback``)
  are bit-identical to the NumPy originals they stand in for on
  namespaces without the native op;
* the vectorized solver produces bit-identical counts under NumPy and
  StrictNamespace (hypothesis-fuzzed), and the namespace knob threads
  through engine, fingerprint, wire format, service and CLI.
"""

import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.xp import (
    AUDITED_PRIMITIVES,
    BackendUnavailable,
    KNOWN_NAMESPACES,
    NAMESPACE_ENV_VAR,
    NumpyNamespace,
    StrictNamespace,
    add_reduceat_fallback,
    as_namespace,
    cpu_namespace,
    default_namespace,
    gpu_namespace,
    lexsort_fallback,
    resolve_namespace,
)
from repro.counting.vectorized import solve_plan_vectorized
from repro.decomposition.planner import heuristic_plan
from repro.engine import CountingEngine, CountRequest, EngineConfig, RunResult
from repro.engine.backends import DEFAULT_REGISTRY, GPU_METHOD, GpuBackend
from repro.engine.fingerprint import request_fingerprint
from repro.graph.generators import erdos_renyi
from repro.query.library import paper_query
from repro.query.query import QueryGraph

import repro.counting.xp as xp_mod


class _FakeCuda:
    """Stands in for a resolved CUDA handle in ``_GPU_CACHE``."""

    name = "cupy"
    device = "cuda"


@pytest.fixture
def no_gpu(monkeypatch):
    """Guarantee the no-GPU environment the CI runner actually has."""
    monkeypatch.setattr(xp_mod, "_GPU_CACHE", {})
    monkeypatch.delenv(NAMESPACE_ENV_VAR, raising=False)


@pytest.fixture
def fake_gpu(monkeypatch):
    """Pretend cupy resolved (the cache is checked before the import)."""
    handle = _FakeCuda()
    monkeypatch.setattr(xp_mod, "_GPU_CACHE", {"cupy": handle})
    monkeypatch.delenv(NAMESPACE_ENV_VAR, raising=False)
    return handle


class TestResolution:
    def test_numpy_and_strict_always_resolve(self, no_gpu):
        assert resolve_namespace("numpy").name == "numpy"
        assert resolve_namespace("strict").name == "strict"
        # singletons: repeated resolution shares usage tallies / caches
        assert resolve_namespace("strict") is resolve_namespace("strict")

    def test_explicit_gpu_spec_fails_loudly(self, no_gpu):
        # cupy/torch are not installed in CI: an explicit request must
        # raise BackendUnavailable, never silently run on NumPy
        with pytest.raises(BackendUnavailable, match="cupy"):
            resolve_namespace("cupy")
        with pytest.raises(BackendUnavailable, match="torch"):
            resolve_namespace("torch")

    def test_auto_degrades_to_numpy(self, no_gpu):
        assert resolve_namespace("auto").name == "numpy"

    def test_auto_prefers_gpu_when_present(self, fake_gpu):
        assert resolve_namespace("auto") is fake_gpu
        assert gpu_namespace(None) is fake_gpu

    def test_unknown_spec_raises_value_error(self, no_gpu):
        with pytest.raises(ValueError, match="unknown array namespace"):
            resolve_namespace("numpyy")

    def test_spec_is_case_insensitive(self, no_gpu):
        assert resolve_namespace("NumPy").name == "numpy"

    def test_default_namespace_reads_env(self, no_gpu, monkeypatch):
        assert default_namespace().name == "numpy"
        monkeypatch.setenv(NAMESPACE_ENV_VAR, "strict")
        assert default_namespace().name == "strict"
        # env "auto" means opportunistic GPU with a clean CPU fallback
        monkeypatch.setenv(NAMESPACE_ENV_VAR, "auto")
        assert default_namespace().name == "numpy"
        # a typo'd env var raises instead of silently counting on NumPy
        monkeypatch.setenv(NAMESPACE_ENV_VAR, "cuda!!")
        with pytest.raises(ValueError, match="unknown array namespace"):
            default_namespace()

    def test_cpu_namespace_coerces_cuda_default(self, fake_gpu, monkeypatch):
        monkeypatch.setenv(NAMESPACE_ENV_VAR, "cupy")
        assert default_namespace() is fake_gpu
        # ps-dist shard workers are shared-memory host code: CUDA
        # defaults coerce to NumPy, strict passes through
        assert cpu_namespace().name == "numpy"
        monkeypatch.setenv(NAMESPACE_ENV_VAR, "strict")
        assert cpu_namespace().name == "strict"

    def test_gpu_namespace_rejects_cpu_spec(self, no_gpu):
        with pytest.raises(ValueError, match="CPU-bound"):
            gpu_namespace("numpy")
        with pytest.raises(BackendUnavailable):
            gpu_namespace(None)

    def test_as_namespace_duck_types(self, no_gpu):
        assert as_namespace(None).name == "numpy"
        assert as_namespace("strict").name == "strict"
        handle = NumpyNamespace()
        assert as_namespace(handle) is handle


class TestStrictNamespace:
    def test_rejects_unaudited_attributes(self):
        strict = StrictNamespace()
        # np.median is a perfectly good NumPy call — just not audited
        with pytest.raises(AttributeError, match="audited primitive set"):
            strict.median
        with pytest.raises(AttributeError, match="median"):
            strict.median

    def test_audited_primitives_all_work(self):
        strict = StrictNamespace()
        for name in AUDITED_PRIMITIVES:
            assert callable(getattr(strict, name)), name

    def test_usage_tally(self):
        strict = StrictNamespace()
        strict.reset_usage()
        a = strict.asarray([3, 1, 2], dtype=strict.int64)
        strict.cumsum(a)
        strict.cumsum(a)
        assert strict.usage["asarray"] == 1
        assert strict.usage["cumsum"] == 2
        strict.reset_usage()
        assert strict.usage == {}

    def test_known_namespaces_cover_cli_choices(self):
        assert set(KNOWN_NAMESPACES) == {"numpy", "strict", "cupy", "torch", "auto"}


class TestFallbackKernels:
    """The portable stand-ins must match NumPy's native ops bit for bit."""

    @given(st.integers(0, 2**31), st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_lexsort_fallback_matches_numpy(self, seed, n):
        rng = np.random.default_rng(seed)
        keys = [rng.integers(0, 5, size=n) for _ in range(3)]
        got = lexsort_fallback(keys, lambda a: np.argsort(a, kind="stable"))
        np.testing.assert_array_equal(got, np.lexsort(tuple(keys)))

    @given(st.integers(0, 2**31), st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_add_reduceat_fallback_matches_numpy(self, seed, n):
        rng = np.random.default_rng(seed)
        a = rng.integers(-100, 100, size=n)
        # the seam contract: sorted group starts, starts[0] == 0
        nseg = int(rng.integers(1, n + 1))
        starts = np.unique(
            np.concatenate([[0], rng.integers(0, n, size=nseg - 1)])
        )
        got = add_reduceat_fallback(a, starts, np.cumsum)
        np.testing.assert_array_equal(got, np.add.reduceat(a, starts))


class TestSolverParity:
    """ps-vec under NumPy and StrictNamespace: bit-identical counts."""

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_numpy_strict_parity_fuzz(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(40, 0.15, rng, name="fuzz40")
        q = paper_query("glet1")
        colors = rng.integers(0, q.k, size=g.n)
        plan = heuristic_plan(q)
        a = solve_plan_vectorized(plan, g, colors, xp="numpy")
        b = solve_plan_vectorized(plan, g, colors, xp="strict")
        assert a == b

    def test_strict_tally_stays_inside_audit(self):
        rng = np.random.default_rng(7)
        g = erdos_renyi(120, 0.05, rng, name="audit120")
        q = paper_query("youtube")
        colors = rng.integers(0, q.k, size=g.n)
        strict = StrictNamespace()
        strict.reset_usage()
        solve_plan_vectorized(heuristic_plan(q), g, colors, xp=strict)
        assert strict.usage, "the sweep should exercise the seam"
        assert set(strict.usage) <= set(AUDITED_PRIMITIVES)


class TestGpuBackend:
    def test_registered_but_unsupported_without_device(self, no_gpu):
        backend = DEFAULT_REGISTRY.get(GPU_METHOD)
        assert isinstance(backend, GpuBackend)
        assert backend.uses_namespace
        assert not backend.supports(paper_query("glet1"))

    def test_supports_with_device(self, fake_gpu):
        assert DEFAULT_REGISTRY.get(GPU_METHOD).supports(paper_query("glet1"))

    def test_auto_never_picks_ps_gpu(self, fake_gpu, rng=None):
        # even with a CUDA namespace resolvable, method="auto" must not
        # silently move counting onto the device
        rng = np.random.default_rng(3)
        g = erdos_renyi(30, 0.2, rng, name="auto30")
        r = CountingEngine(g).count(paper_query("glet1"), trials=1, method="auto")
        assert r.method != GPU_METHOD

    def test_explicit_ps_gpu_fails_cleanly(self, no_gpu):
        rng = np.random.default_rng(3)
        g = erdos_renyi(30, 0.2, rng, name="nogpu30")
        with pytest.raises(ValueError, match="CUDA"):
            CountingEngine(g).count(paper_query("glet1"), trials=1, method=GPU_METHOD)

    def test_namespace_handle_rejects_cpu(self, no_gpu):
        backend = GpuBackend()
        with pytest.raises((ValueError, BackendUnavailable)):
            backend.namespace_handle("numpy")
        with pytest.raises(ValueError, match="CUDA"):
            backend.namespace_handle(NumpyNamespace())


class TestEngineThreading:
    """The namespace knob rides request → engine → provenance → wire."""

    @pytest.fixture
    def graph(self):
        return erdos_renyi(60, 0.1, np.random.default_rng(11), name="thread60")

    def test_run_result_records_resolved_namespace(self, no_gpu, graph):
        engine = CountingEngine(graph)
        q = paper_query("glet1")
        r = engine.count(q, trials=2, method="ps-vec", namespace="strict")
        assert r.namespace == "strict"
        default = engine.count(q, trials=2, method="ps-vec")
        assert default.namespace == "numpy"
        # non-seam backends record no namespace
        assert engine.count(q, trials=1, method="ps").namespace is None

    def test_counts_identical_across_namespaces(self, no_gpu, graph):
        engine = CountingEngine(graph)
        q = paper_query("glet2")
        a = engine.count(q, trials=3, seed=5, method="ps-vec", namespace="numpy")
        b = engine.count(q, trials=3, seed=5, method="ps-vec", namespace="strict")
        assert a.colorful_counts == b.colorful_counts

    def test_engine_config_inheritance(self, no_gpu, graph):
        engine = CountingEngine(graph, EngineConfig(method="ps-vec", namespace="strict"))
        r = engine.count(paper_query("glet1"), trials=1)
        assert r.namespace == "strict"

    def test_parallel_trials_thread_namespace(self, no_gpu, graph):
        engine = CountingEngine(graph)
        q = paper_query("glet1")
        seq = engine.count(q, trials=4, seed=2, method="ps-vec", namespace="strict")
        par = engine.count(
            q, trials=4, seed=2, method="ps-vec", namespace="strict", workers=2
        )
        assert par.colorful_counts == seq.colorful_counts
        assert par.namespace == "strict"

    def test_fingerprint_depends_on_namespace(self, no_gpu):
        q = QueryGraph([(0, 1), (1, 2), (2, 0)], name="tri")
        base = CountRequest(query=q, method="ps-vec")
        fp_default = request_fingerprint("d", base)
        fp_strict = request_fingerprint("d", base.replace(namespace="strict"))
        assert fp_default != fp_strict
        # stating the config default is the same as inheriting it
        cfg = EngineConfig(namespace="strict")
        assert request_fingerprint("d", base, cfg) == request_fingerprint(
            "d", base.replace(namespace="strict"), cfg
        )

    def test_run_result_wire_roundtrip(self):
        r = RunResult(
            query_name="q", graph_name="g", trials=1, colorful_counts=[4],
            scale=1.0, method="ps-vec", namespace="strict",
        )
        doc = r.to_dict()
        assert doc["namespace"] == "strict"
        back = RunResult.from_dict(doc)
        assert back.namespace == "strict"
        assert back.to_dict() == doc
        # absent/None namespace survives the round trip too
        r2 = RunResult(
            query_name="q", graph_name="g", trials=1, colorful_counts=[4],
            scale=1.0, method="ps",
        )
        assert RunResult.from_dict(r2.to_dict()).namespace is None


class TestServiceAndCli:
    def test_service_accepts_and_validates_namespace(self, no_gpu):
        from repro.service.service import BadRequestError, CountingService

        rng = np.random.default_rng(1)
        service = CountingService()
        service.registry.add("tiny", erdos_renyi(40, 0.1, rng, name="tiny"))
        try:
            q = service.resolve_query("glet1")
            req = service.build_request(
                q, {"method": "ps-vec", "namespace": "strict", "trials": 2}
            )
            assert req.namespace == "strict"
            with pytest.raises(BadRequestError, match="unknown array namespace"):
                service.build_request(q, {"namespace": "nope"})
            # explicit GPU namespace without a device: eager 400, not a
            # queued job that can only die with a 500
            with pytest.raises(BadRequestError, match="cupy"):
                service.build_request(q, {"namespace": "cupy"})
        finally:
            service.close()

    def test_cli_namespace_flag(self, no_gpu, tmp_path):
        from repro.cli import main

        rng = np.random.default_rng(0)
        g = erdos_renyi(50, 0.1, rng, name="cli50")
        path = tmp_path / "g.txt"
        path.write_text("\n".join(f"{u} {v}" for u, v in g.edges()) + "\n")
        rc = main([
            "count", "--graph", str(path), "--query", "glet1",
            "--method", "ps-vec", "--namespace", "strict", "--trials", "1",
        ])
        assert rc == 0

    def test_audit_cli_emits_json(self, no_gpu):
        # the backend-matrix CI lane uploads exactly this output
        proc = subprocess.run(
            [sys.executable, "-m", "repro.counting.xp"],
            capture_output=True, text=True, check=True,
        )
        doc = json.loads(proc.stdout)
        assert doc["schema"] == "repro-xp-audit/1"
        assert doc["namespaces"]["numpy"]["available"] is True
        demo = doc["strict_demo"]
        assert demo["matches_numpy"] is True
        assert set(demo["primitive_calls"]) <= set(AUDITED_PRIMITIVES)
