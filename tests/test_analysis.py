"""Tests for the ``repro.analysis`` static-analysis suite.

Each rule gets a bad fixture (must trigger), a good fixture (must pass)
and, where behaviour is subtle, targeted unit checks.  Fixtures are
scratch trees under ``tmp_path`` — the rules read all project knowledge
from :class:`AnalysisConfig`, whose scope fragments match the scratch
layouts the same way they match the real tree.  The suite ends with the
self-check the CI gate relies on: ``python -m repro.analysis src
benchmarks`` must be clean on this very repository.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_rules, main, run_analysis
from repro.analysis.core import AnalysisConfig, WireContract, parse_suppressions
from repro.analysis.layering import module_parts

REPO_ROOT = Path(__file__).resolve().parents[1]


def write(root: Path, rel: str, body: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def rules_hit(report) -> set:
    return {f.rule for f in report.findings}


# ----------------------------------------------------------------------
# registry / plumbing
# ----------------------------------------------------------------------

class TestPlumbing:
    def test_all_rules_ids(self):
        assert [r.id for r in all_rules()] == [
            "RP001", "RP002", "RP003", "RP004", "RP005", "RP006",
        ]

    def test_parse_suppressions(self):
        src = "x = 1  # repro: allow[RP001, RP002]\ny = 2\n"
        assert parse_suppressions(src) == {1: {"RP001", "RP002"}}

    def test_finding_render_shape(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            x = np.zeros(3)
            """)
        report = run_analysis([tmp_path])
        (finding,) = report.findings
        rendered = finding.render()
        assert rendered.endswith(finding.message)
        path, line, col = rendered.split(": ")[0].rsplit(":", 2)
        assert path.endswith("counting/vectorized.py")
        assert int(line) == 2 and int(col) == 4

    def test_parse_error_is_rp000(self, tmp_path):
        write(tmp_path, "broken.py", "def nope(:\n")
        report = run_analysis([tmp_path])
        assert rules_hit(report) == {"RP000"}
        assert not report.ok


# ----------------------------------------------------------------------
# RP001 — determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_bad_rng_and_clock_calls(self, tmp_path):
        write(tmp_path, "counting/mod.py", """\
            import random
            import time
            import numpy as np

            def draw(n):
                np.random.shuffle(n)
                a = np.random.rand(3)
                b = random.random()
                t = time.time()
                return a, b, t
            """)
        report = run_analysis([tmp_path])
        assert [f.rule for f in report.findings] == ["RP001"] * 4

    def test_seeded_api_and_timing_measurement_pass(self, tmp_path):
        write(tmp_path, "counting/mod.py", """\
            import random
            import time
            import numpy as np

            def draw(n, seed):
                rng = np.random.default_rng(seed)
                r = random.Random(seed)
                t0 = time.perf_counter()
                cpu = time.process_time()
                return rng.integers(0, n), r.randint(0, n), t0, cpu
            """)
        assert run_analysis([tmp_path]).ok

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        write(tmp_path, "service/helper.py", """\
            import numpy as np
            x = np.random.rand(3)
            """)
        assert run_analysis([tmp_path]).ok

    def test_obs_scope_perf_counter_legal_wall_clock_banned(self, tmp_path):
        """``repro.obs`` is RP001-governed: spans time on the monotonic
        ``perf_counter``; a ``time.time()`` span attribute is a finding."""
        write(tmp_path, "obs/tracing_fixture.py", """\
            import time
            import uuid

            def record_span(trace):
                t0 = time.perf_counter()
                trace.append({"id": uuid.uuid4().hex[:16], "t0": t0})
                return time.perf_counter() - t0
            """)
        assert run_analysis([tmp_path]).ok

        write(tmp_path, "obs/tracing_fixture.py", """\
            import time

            def record_span(trace):
                trace.append({"wall": time.time()})
            """)
        report = run_analysis([tmp_path])
        assert rules_hit(report) == {"RP001"}


# ----------------------------------------------------------------------
# RP002 — dtype discipline
# ----------------------------------------------------------------------

class TestDtype:
    def test_missing_dtype_flags(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            a = np.zeros(5)
            b = np.asarray([1, 2])
            c = np.arange(7)
            """)
        report = run_analysis([tmp_path])
        assert [f.rule for f in report.findings] == ["RP002"] * 3

    def test_explicit_dtype_passes(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            a = np.zeros(5, dtype=np.int64)
            b = np.asarray([1, 2], dtype=np.int64)
            c = np.arange(0, 7, 1, np.int64)
            d = np.zeros_like(a)
            e = np.concatenate([a, a])
            kw = {"dtype": np.int64}
            f = np.empty(3, **kw)
            """)
        assert run_analysis([tmp_path]).ok

    def test_non_kernel_module_is_ignored(self, tmp_path):
        write(tmp_path, "counting/helpers.py", """\
            import numpy as np
            a = np.zeros(5)
            """)
        assert run_analysis([tmp_path]).ok


# ----------------------------------------------------------------------
# RP003 — lock discipline
# ----------------------------------------------------------------------

class TestLockDiscipline:
    def test_unlocked_touch_flags(self, tmp_path):
        write(tmp_path, "svc.py", """\
            import threading

            class CountingService:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False

                def poke(self):
                    return self._closed
            """)
        report = run_analysis([tmp_path])
        (finding,) = report.findings
        assert finding.rule == "RP003"
        assert "CountingService.poke" in finding.message
        assert "_closed" in finding.message

    def test_locked_touch_and_exemptions_pass(self, tmp_path):
        write(tmp_path, "svc.py", """\
            import threading

            class CountingService:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False  # __init__ is exempt

                def close(self):
                    with self._lock:
                        self._closed = True

                def _sweep_locked(self):
                    return self._closed  # caller-holds-lock convention
            """)
        assert run_analysis([tmp_path]).ok

    def test_closure_does_not_inherit_the_lock(self, tmp_path):
        # a deferred body runs after the with-block exits
        write(tmp_path, "svc.py", """\
            import threading

            class CountingService:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._closed = False

                def snapshot(self):
                    with self._lock:
                        return lambda: self._closed
            """)
        report = run_analysis([tmp_path])
        assert rules_hit(report) == {"RP003"}


# ----------------------------------------------------------------------
# RP004 — layering contract
# ----------------------------------------------------------------------

class TestLayering:
    def test_module_parts(self):
        assert module_parts("src/repro/counting/verify.py", "repro") == [
            "counting", "verify",
        ]
        assert module_parts("src/repro/graph/__init__.py", "repro") == ["graph"]
        assert module_parts("src/repro/__init__.py", "repro") == []
        assert module_parts("tests/test_graph.py", "repro") is None

    def test_upward_import_flags(self, tmp_path):
        write(tmp_path, "repro/counting/bad.py", """\
            from repro.service import service
            from ..engine.engine import CountingEngine
            """)
        report = run_analysis([tmp_path])
        assert [f.rule for f in report.findings] == ["RP004"] * 2
        messages = " ".join(f.message for f in report.findings)
        assert "repro.service" in messages and "repro.engine" in messages

    def test_lazy_and_type_checking_imports_pass(self, tmp_path):
        write(tmp_path, "repro/counting/ok.py", """\
            from typing import TYPE_CHECKING

            from ..graph.graph import Graph

            if TYPE_CHECKING:
                from ..engine.engine import CountingEngine

            def facade():
                # the sanctioned lazy escape hatch
                from ..engine.engine import CountingEngine
                return CountingEngine
            """)
        assert run_analysis([tmp_path]).ok

    def test_downward_and_intra_package_imports_pass(self, tmp_path):
        write(tmp_path, "repro/engine/ok.py", """\
            from typing import Optional

            from ..counting.solver import solve_plan
            from ..graph.graph import Graph
            from .config import EngineConfig
            """)
        report = run_analysis([tmp_path])
        assert "RP004" not in rules_hit(report)


# ----------------------------------------------------------------------
# RP005 — wire-format drift
# ----------------------------------------------------------------------

PACKET_CONFIG = AnalysisConfig(
    rp005_contracts=(
        WireContract(
            cls="Packet",
            path_suffix="net/packet.py",
            renames={"payload_digest": "payload"},
            non_wire=("scratch",),
        ),
    ),
)


class TestWireFormat:
    def test_dropped_field_flags(self, tmp_path):
        write(tmp_path, "net/packet.py", """\
            class Packet:
                def __init__(self, seq, payload_digest, scratch):
                    self.seq = seq
                    self.payload_digest = payload_digest
                    self.scratch = scratch

                def to_dict(self):
                    return {"seq": self.seq}

                @classmethod
                def from_dict(cls, doc):
                    return cls(doc["seq"], doc["payload"], None)
            """)
        report = run_analysis([tmp_path], config=PACKET_CONFIG)
        (finding,) = report.findings
        assert finding.rule == "RP005"
        assert "to_dict drops Packet.payload_digest" in finding.message
        assert "'payload'" in finding.message

    def test_complete_round_trip_passes_via_module_constant(self, tmp_path):
        # the loop-over-fields serializer style counts: keys reached
        # through a module-level tuple are followed
        write(tmp_path, "net/packet.py", """\
            _WIRE_KEYS = ("seq", "payload")

            class Packet:
                def __init__(self, seq, payload_digest, scratch):
                    self.seq = seq
                    self.payload_digest = payload_digest
                    self.scratch = scratch

                def to_dict(self):
                    return {k: getattr(self, k, None) for k in _WIRE_KEYS}

                @classmethod
                def from_dict(cls, doc):
                    return cls(doc["seq"], doc["payload"], None)
            """)
        assert run_analysis([tmp_path], config=PACKET_CONFIG).ok

    def test_missing_contract_method_flags(self, tmp_path):
        write(tmp_path, "net/packet.py", """\
            class Packet:
                def __init__(self, seq):
                    self.seq = seq
            """)
        report = run_analysis([tmp_path], config=PACKET_CONFIG)
        messages = [f.message for f in report.findings]
        assert any("missing contract method to_dict" in m for m in messages)
        assert any("missing contract method from_dict" in m for m in messages)

    def test_unscanned_contract_is_skipped(self, tmp_path):
        write(tmp_path, "other.py", "x = 1\n")
        assert run_analysis([tmp_path], config=PACKET_CONFIG).ok


# ----------------------------------------------------------------------
# RP006 — typed seams
# ----------------------------------------------------------------------

class TestTypedSeams:
    def test_missing_annotations_flag(self, tmp_path):
        write(tmp_path, "repro/engine/util.py", """\
            def f(x, *args, **kwargs):
                return x

            class C:
                def method(self, y):
                    return y
            """)
        report = run_analysis([tmp_path])
        assert [f.rule for f in report.findings] == ["RP006"] * 2
        first, second = (f.message for f in report.findings)
        assert "x" in first and "*args" in first and "**kwargs" in first
        assert "return" in first
        assert "y" in second and "self" not in second

    def test_fully_annotated_passes(self, tmp_path):
        write(tmp_path, "repro/engine/util.py", """\
            def f(x: int, *args: object, **kwargs: object) -> int:
                return x

            class C:
                def method(self, y: str) -> str:
                    # nested defs are checked too (disallow_untyped_defs does)
                    def helper(z: str) -> str:
                        return z
                    return helper(y)
            """)
        assert run_analysis([tmp_path]).ok

    def test_out_of_scope_module_is_ignored(self, tmp_path):
        write(tmp_path, "repro/motifs/util.py", "def f(x):\n    return x\n")
        assert run_analysis([tmp_path]).ok


# ----------------------------------------------------------------------
# suppressions and the budget
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_inline_allow_suppresses_the_finding(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            x = np.zeros(4)  # repro: allow[RP002]
            """)
        report = run_analysis([tmp_path])
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["RP002"]
        assert report.suppression_comments == 1

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            x = np.zeros(4)  # repro: allow[RP001]
            """)
        report = run_analysis([tmp_path])
        assert rules_hit(report) == {"RP002"}

    def test_budget_overrun_is_fatal(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            x = np.zeros(4)  # repro: allow[RP002]
            y = np.zeros(4)  # repro: allow[RP002]
            """)
        report = run_analysis([tmp_path], max_suppressions=1)
        assert rules_hit(report) == {"RP000"}
        assert "suppression budget exceeded" in report.findings[0].message

    def test_filtered_runs_do_not_enforce_the_budget(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            x = np.zeros(4)  # repro: allow[RP002]
            y = np.zeros(4)  # repro: allow[RP002]
            """)
        report = run_analysis([tmp_path], rules=["RP002"], max_suppressions=1)
        assert report.ok  # developer loop, not the committed gate


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "counting/clean.py", "x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            x = np.zeros(4)
            """)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RP002" in out and "1 finding(s)" in out

    def test_json_report_schema(self, tmp_path, capsys):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            x = np.zeros(4)
            y = np.zeros(4)  # repro: allow[RP002]
            """)
        assert main(["--format", "json", str(tmp_path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["ok"] is False
        assert doc["files_scanned"] == 1
        assert doc["counts_by_rule"] == {"RP002": 1}
        assert doc["suppressions"] == {"comments": 1, "budget": 5}
        (row,) = doc["findings"]
        assert set(row) == {"rule", "path", "line", "col", "message"}
        assert row["rule"] == "RP002" and row["line"] == 2
        (sup,) = doc["suppressed"]
        assert sup["line"] == 3

    def test_rules_filter(self, tmp_path):
        write(tmp_path, "counting/vectorized.py", """\
            import numpy as np
            import time
            x = np.zeros(4)
            t = time.time()
            """)
        assert main(["--rules", "RP001", str(tmp_path)]) == 1
        assert main(["--rules", "RP003", str(tmp_path)]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RP001", "RP002", "RP003", "RP004", "RP005", "RP006"):
            assert rule_id in out

    def test_unknown_rule_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--rules", "RP999", str(tmp_path)])
        assert exc.value.code == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "nope")])
        assert exc.value.code == 2


# ----------------------------------------------------------------------
# the acceptance matrix: a deliberate violation of each rule makes the
# CLI exit nonzero on a scratch tree
# ----------------------------------------------------------------------

VIOLATIONS = {
    "RP001": ("counting/mod.py", """\
        import numpy as np
        x = np.random.rand(3)
        """),
    "RP002": ("counting/vectorized.py", """\
        import numpy as np
        x = np.zeros(3)
        """),
    "RP003": ("svc.py", """\
        import threading

        class CountingService:
            def __init__(self):
                self._lock = threading.Lock()
                self._closed = False

            def poke(self):
                return self._closed
        """),
    "RP004": ("repro/counting/bad.py", """\
        from repro.service import service
        """),
    "RP005": ("engine/result.py", """\
        class RunResult:
            def __init__(self, count):
                self.count = count

            def to_dict(self):
                return {"count": self.count}

            @classmethod
            def from_dict(cls, doc):
                return cls(doc["count"])
        """),
    "RP006": ("repro/engine/util.py", """\
        def f(x):
            return x
        """),
}


@pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
def test_deliberate_violation_fails_the_cli(rule_id, tmp_path, capsys):
    rel, body = VIOLATIONS[rule_id]
    write(tmp_path, rel, body)
    assert main([str(tmp_path)]) == 1
    assert rule_id in capsys.readouterr().out


# ----------------------------------------------------------------------
# the repo itself
# ----------------------------------------------------------------------

class TestRepositoryGate:
    def test_repo_is_clean(self, capsys):
        """The CI gate: this very repository passes its own analysis."""
        code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "clean" in out

    def test_repo_suppressions_stay_within_budget(self):
        report = run_analysis([REPO_ROOT / "src", REPO_ROOT / "benchmarks"])
        assert report.ok
        assert report.suppression_comments <= report.max_suppressions

    @pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
    def test_mypy_gate(self):
        """The semantic half of the typed-API gate (runs where mypy exists)."""
        proc = subprocess.run(
            [
                sys.executable, "-m", "mypy",
                "--config-file", str(REPO_ROOT / "mypy.ini"),
                str(REPO_ROOT / "src" / "repro"),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
