"""Tests for the real sharded multiprocess executor (``ps-dist``)."""

import numpy as np
import pytest

from repro.bench import dataset
from repro.counting.colorings import uniform_coloring
from repro.counting.vectorized import count_colorful_ps_vec
from repro.decomposition import heuristic_plan
from repro.distributed import (
    ShardedExecutor,
    WallStats,
    count_colorful_ps_dist,
    run_sharded,
)
from repro.engine import CountingEngine, DIST_AUTO_MIN_SIZE, get_backend
from repro.graph import Graph
from repro.query import cycle_query, paper_queries, paper_query


@pytest.fixture(scope="module")
def data_graph():
    return dataset("condmat")


@pytest.fixture(scope="module")
def executor(data_graph):
    with ShardedExecutor(data_graph, workers=2) as ex:
        yield ex


class TestShardedParity:
    def test_bit_identical_across_query_library(self, data_graph, executor):
        """ps-dist == ps-vec on every paper query (the core invariant)."""
        for name, q in paper_queries().items():
            plan = heuristic_plan(q)
            colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(q.k))
            ref = count_colorful_ps_vec(data_graph, q, colors, plan=plan)
            got = executor.count(plan, colors)
            assert got.count == ref, name

    def test_parity_across_partition_strategies(self, data_graph):
        q = paper_query("wiki")
        plan = heuristic_plan(q)
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(3))
        ref = count_colorful_ps_vec(data_graph, q, colors, plan=plan)
        for strategy in ("block", "cyclic", "hash"):
            with ShardedExecutor(data_graph, workers=3, strategy=strategy) as ex:
                assert ex.count(plan, colors).count == ref, strategy

    def test_more_ranks_than_vertices(self):
        g = Graph(3, [(0, 1), (1, 2)], name="tiny")
        q = paper_query("glet1")
        plan = heuristic_plan(q)
        colors = uniform_coloring(g.n, q.k, np.random.default_rng(0))
        ref = count_colorful_ps_vec(g, q, colors, plan=plan)
        with ShardedExecutor(g, workers=8) as ex:
            assert ex.count(plan, colors).count == ref

    def test_edgeless_graph(self):
        g = Graph(5, [], name="edgeless")
        q = paper_query("glet1")
        plan = heuristic_plan(q)
        colors = uniform_coloring(g.n, q.k, np.random.default_rng(1))
        ref = count_colorful_ps_vec(g, q, colors, plan=plan)
        with ShardedExecutor(g, workers=2) as ex:
            assert ex.count(plan, colors).count == ref

    def test_extended_palette(self, data_graph, executor):
        q = paper_query("youtube")
        plan = heuristic_plan(q)
        kc = q.k + 2
        colors = uniform_coloring(data_graph.n, kc, np.random.default_rng(4))
        ref = count_colorful_ps_vec(data_graph, q, colors, plan=plan, num_colors=kc)
        assert executor.count(plan, colors, num_colors=kc).count == ref

    def test_convenience_function_transient_pool(self, data_graph):
        q = paper_query("glet2")
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(5))
        ref = count_colorful_ps_vec(data_graph, q, colors)
        assert count_colorful_ps_dist(data_graph, q, colors, workers=2) == ref

    def test_convenience_function_rejects_foreign_executor(self, data_graph, executor):
        other = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="C4")
        q = paper_query("glet1")
        colors = uniform_coloring(other.n, q.k, np.random.default_rng(12))
        with pytest.raises(ValueError, match="different data graph"):
            count_colorful_ps_dist(other, q, colors, executor=executor)


class TestExecutorLifecycle:
    def test_invalid_colors_raise_and_pool_survives(self, data_graph, executor):
        q = paper_query("glet1")
        plan = heuristic_plan(q)
        with pytest.raises(ValueError, match="colors must lie"):
            executor.count(plan, np.full(data_graph.n, 99))
        with pytest.raises(ValueError, match="every data vertex"):
            executor.count(plan, np.zeros(3, dtype=np.int64))
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(6))
        ref = count_colorful_ps_vec(data_graph, q, colors, plan=plan)
        assert executor.count(plan, colors).count == ref

    def test_palette_validation(self, data_graph, executor):
        q = paper_query("wiki")
        plan = heuristic_plan(q)
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(7))
        with pytest.raises(ValueError, match="at least k"):
            executor.count(plan, colors, num_colors=q.k - 1)
        with pytest.raises(ValueError, match="int64"):
            executor.count(plan, colors, num_colors=100)

    def test_closed_executor_rejects_counts(self, data_graph):
        q = paper_query("glet1")
        plan = heuristic_plan(q)
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(8))
        ex = ShardedExecutor(data_graph, workers=2)
        assert not ex.closed
        ex.close()
        assert ex.closed
        with pytest.raises(RuntimeError, match="closed"):
            ex.count(plan, colors)
        ex.close()  # idempotent

    def test_zero_workers_rejected(self, data_graph):
        with pytest.raises(ValueError, match="at least one worker"):
            ShardedExecutor(data_graph, workers=0)

    def test_unknown_strategy_rejected_eagerly(self, data_graph):
        with pytest.raises(ValueError, match="unknown partition"):
            ShardedExecutor(data_graph, workers=2, strategy="zigzag")


class TestMeasuredStats:
    def test_wall_stats_recorded(self, data_graph, executor):
        q = paper_query("wiki")
        plan = heuristic_plan(q)
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(9))
        _, stats = executor.count(plan, colors)
        assert stats.nranks == 2
        # one superstep per solved block (a singleton root is not solved)
        blocks = plan.blocks()
        solved = len(blocks) - (1 if blocks[-1].kind == "singleton" else 0)
        assert len(stats.stages) == solved
        assert stats.wall_seconds > 0
        assert stats.critical_seconds() > 0
        assert stats.total_cpu() >= 0
        assert stats.imbalance() >= 1.0
        assert stats.exchanged_rows() > 0  # leaf tables cross the boundary

    def test_wall_stats_arithmetic(self):
        stats = WallStats(2)
        s1 = stats.new_stage("a")
        s1.cpu[:] = [3.0, 1.0]
        s2 = stats.new_stage("b")
        s2.cpu[:] = [1.0, 2.0]
        s2.rows[:] = [5, 7]
        assert stats.critical_seconds() == 5.0
        assert stats.total_cpu() == 7.0
        assert stats.exchanged_rows() == 12
        assert stats.imbalance() == pytest.approx(4.0 / 3.5)
        base = WallStats(1)
        base.new_stage("a").cpu[:] = [10.0]
        assert stats.speedup_over(base) == pytest.approx(2.0)

    def test_run_sharded_predicted_and_measured(self, data_graph):
        q = paper_query("youtube")
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(10))
        ref = count_colorful_ps_vec(data_graph, q, colors)
        run = run_sharded(data_graph, q, colors, workers=2, predict=True)
        assert run.count == ref
        assert run.nranks == 2
        assert run.critical_seconds > 0 and run.wall_seconds > 0
        assert run.imbalance >= 1.0
        # predicted side: the simulated LoadStats cost model
        assert run.predicted is not None
        assert run.predicted.nranks == 2
        assert run.predicted_makespan > 0
        assert run.predicted_imbalance >= 1.0

    def test_run_sharded_without_prediction(self, data_graph):
        q = paper_query("glet1")
        colors = uniform_coloring(data_graph.n, q.k, np.random.default_rng(11))
        run = run_sharded(data_graph, q, colors, workers=2)
        assert run.predicted is None
        assert run.predicted_makespan == 0.0


class TestEngineIntegration:
    def test_backend_registered(self):
        backend = get_backend("ps-dist")
        assert backend.needs_plan and not backend.tracks_load
        assert backend.distributed

    def test_engine_ps_dist_matches_ps_vec(self, data_graph):
        q = paper_query("wiki")
        with CountingEngine(data_graph, workers=2) as engine:
            dist = engine.count(q, trials=3, seed=2, method="ps-dist")
            vec = engine.count(q, trials=3, seed=2, method="ps-vec")
        assert dist.colorful_counts == vec.colorful_counts
        assert dist.estimate == vec.estimate
        assert dist.method == "ps-dist"
        assert dist.workers == 2  # shard ranks, reported as workers

    def test_engine_pools_executor_across_requests(self, data_graph):
        with CountingEngine(data_graph, workers=2) as engine:
            first = engine.executor_for(2)
            engine.count(paper_query("glet1"), trials=2, seed=0, method="ps-dist")
            assert engine.executor_for(2) is first
            assert not first.closed
        assert first.closed  # engine exit stops the pool

    def test_engine_replaces_dead_pool(self, data_graph):
        with CountingEngine(data_graph, workers=2) as engine:
            first = engine.executor_for(2)
            first.close()
            second = engine.executor_for(2)
            assert second is not first and not second.closed

    def test_worker_crash_closes_pool_and_engine_recovers(self, data_graph):
        q = paper_query("glet1")
        with CountingEngine(data_graph, workers=2) as engine:
            ref = engine.count(q, trials=1, seed=0, method="ps-dist")
            crashed = engine.executor_for(2)
            crashed._procs[0].terminate()
            crashed._procs[0].join()
            with pytest.raises(RuntimeError, match="died"):
                engine.count(q, trials=1, seed=0, method="ps-dist")
            assert crashed.closed  # send/recv failure shuts the pool down
            again = engine.count(q, trials=1, seed=0, method="ps-dist")
            assert engine.executor_for(2) is not crashed
            assert again.colorful_counts == ref.colorful_counts

    def test_ps_dist_rejects_load_tracking(self, data_graph):
        engine = CountingEngine(data_graph, nranks=2)
        with pytest.raises(ValueError, match="simulated ranks"):
            engine.count(paper_query("glet1"), trials=1, method="ps-dist")

    @pytest.fixture(scope="class")
    def large_graph(self):
        from repro.graph.generators import grid_road_network

        return grid_road_network(40, 40, np.random.default_rng(5))

    def test_auto_escalates_to_ps_dist_on_huge_inputs(self, large_graph, monkeypatch):
        import repro.engine.backends as backends_mod

        monkeypatch.setattr(backends_mod, "DIST_AUTO_MIN_SIZE", 100)
        with CountingEngine(large_graph, workers=2) as engine:
            result = engine.count(cycle_query(4), trials=1, method="auto")
        assert result.method == "ps-dist"

    def test_auto_keeps_ps_vec_without_workers(self, large_graph, monkeypatch):
        import repro.engine.backends as backends_mod

        monkeypatch.setattr(backends_mod, "DIST_AUTO_MIN_SIZE", 100)
        result = CountingEngine(large_graph).count(cycle_query(4), trials=1, method="auto")
        assert result.method == "ps-vec"

    def test_auto_threshold_keeps_ps_vec_below_escalation_size(self, large_graph):
        # well above the ps-vec threshold, far below the ps-dist one
        assert large_graph.n + large_graph.m < DIST_AUTO_MIN_SIZE
        result = CountingEngine(large_graph, workers=2).count(
            cycle_query(4), trials=1, method="auto"
        )
        assert result.method == "ps-vec"


class TestCLI:
    def test_count_ps_dist(self, capsys):
        from repro.cli import main

        assert main([
            "count", "--graph", "condmat", "--query", "glet1",
            "--method", "ps-dist", "--workers", "2", "--trials", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "method         : ps-dist" in out
        assert "workers=2" in out

    def test_count_partition_knob(self, capsys):
        from repro.cli import main

        assert main([
            "count", "--graph", "condmat", "--query", "glet1",
            "--method", "ps-dist", "--workers", "2", "--trials", "1",
            "--partition", "hash",
        ]) == 0
