"""Tests for the removed free-function API and its engine replacements.

``repro.counting.count`` / ``count_colorful`` / ``count_exact`` /
``make_context`` / ``estimate_matches_parallel`` spent one deprecation
cycle as delegating shims and are now hard stubs: importable, but
raising :class:`DeprecationWarning` with a migration hint when called.
The second half of this module re-asserts the old shim behaviours
through their documented replacements on :class:`CountingEngine`.
"""

import pytest

from repro import count, count_colorful, count_exact, make_context
from repro.counting import count_colorful_matches, estimate_matches_parallel
from repro.engine import CountingEngine
from repro.graph import erdos_renyi
from repro.query import cycle_query, paper_query


class TestRemovedShimsRaise:
    @pytest.mark.parametrize(
        "fn, hint",
        [
            (count, "CountingEngine.count"),
            (count_colorful, "CountingEngine.count_colorful"),
            (count_exact, "CountingEngine.count_exact"),
            (make_context, "CountingEngine.make_context"),
            (estimate_matches_parallel, "workers=N"),
        ],
    )
    def test_call_raises_with_migration_hint(self, fn, hint, triangle_graph):
        with pytest.raises(DeprecationWarning, match="removed") as excinfo:
            fn(triangle_graph, cycle_query(3))
        assert hint in str(excinfo.value)
        assert "docs/API.md" in str(excinfo.value)

    def test_stubs_raise_before_touching_arguments(self):
        # old code fails at the call with the hint, never with a
        # TypeError about changed signatures
        with pytest.raises(DeprecationWarning):
            count()
        with pytest.raises(DeprecationWarning):
            make_context(None, nranks=4, strategy="cyclic", track=False)

    def test_names_still_importable_from_package_root(self):
        import repro

        for name in ("count", "count_colorful", "count_exact", "make_context"):
            assert callable(getattr(repro, name))


class TestCountColorfulDispatch:
    def test_all_methods(self, rng):
        g = erdos_renyi(12, 0.4, rng)
        q = paper_query("glet2")
        colors = rng.integers(0, q.k, size=g.n)
        expected = count_colorful_matches(g, q, colors)
        engine = CountingEngine(g)
        for method in ("ps", "db", "ps-even"):
            assert engine.count_colorful(q, colors, method=method) == expected

    def test_unknown_method(self, triangle_graph):
        with pytest.raises(ValueError, match="unknown method"):
            CountingEngine(triangle_graph).count_colorful(
                cycle_query(3), [0, 1, 2], method="qq"
            )


class TestCountEstimate:
    def test_count_returns_result(self, rng):
        g = erdos_renyi(15, 0.3, rng, name="api")
        result = CountingEngine(g).count(paper_query("glet1"), trials=3, seed=1)
        assert result.trials == 3
        assert len(result.colorful_counts) == 3

    def test_count_exact_delegates(self, triangle_graph):
        assert CountingEngine(triangle_graph).count_exact(cycle_query(3)) == 6


class TestMakeContext:
    def test_rank_count(self, rng):
        g = erdos_renyi(20, 0.3, rng)
        ctx = CountingEngine(g).make_context(nranks=4)
        assert ctx.nranks == 4
        assert ctx.track

    def test_strategy_forwarded(self, rng):
        g = erdos_renyi(20, 0.3, rng)
        ctx = CountingEngine(g, partition_strategy="cyclic").make_context(nranks=2)
        assert list(ctx.partition.owners[:4]) == [0, 1, 0, 1]

    def test_context_used_by_engine(self, rng):
        g = erdos_renyi(20, 0.3, rng)
        q = cycle_query(3)
        engine = CountingEngine(g)
        ctx = engine.make_context(nranks=2)
        colors = rng.integers(0, 3, size=g.n)
        engine.count_colorful(q, colors, ctx=ctx)
        assert ctx.stats.total_ops() > 0
