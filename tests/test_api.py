"""Tests for the high-level counting API."""

import pytest

from repro import count, count_colorful, count_exact, make_context
from repro.counting import count_colorful_matches
from repro.graph import erdos_renyi
from repro.query import cycle_query, paper_query

# this module deliberately exercises the deprecated pre-engine shim API
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")



class TestCountColorfulDispatch:
    def test_all_methods(self, rng):
        g = erdos_renyi(12, 0.4, rng)
        q = paper_query("glet2")
        colors = rng.integers(0, q.k, size=g.n)
        expected = count_colorful_matches(g, q, colors)
        for method in ("ps", "db", "ps-even"):
            assert count_colorful(g, q, colors, method=method) == expected

    def test_unknown_method(self, triangle_graph):
        with pytest.raises(ValueError, match="unknown method"):
            count_colorful(triangle_graph, cycle_query(3), [0, 1, 2], method="qq")


class TestCountEstimate:
    def test_count_returns_result(self, rng):
        g = erdos_renyi(15, 0.3, rng, name="api")
        result = count(g, paper_query("glet1"), trials=3, seed=1)
        assert result.trials == 3
        assert len(result.colorful_counts) == 3

    def test_count_exact_delegates(self, triangle_graph):
        assert count_exact(triangle_graph, cycle_query(3)) == 6


class TestMakeContext:
    def test_rank_count(self, rng):
        g = erdos_renyi(20, 0.3, rng)
        ctx = make_context(g, nranks=4)
        assert ctx.nranks == 4
        assert ctx.track

    def test_strategy_forwarded(self, rng):
        g = erdos_renyi(20, 0.3, rng)
        ctx = make_context(g, nranks=2, strategy="cyclic")
        assert list(ctx.partition.owners[:4]) == [0, 1, 0, 1]

    def test_context_used_by_api(self, rng):
        g = erdos_renyi(20, 0.3, rng)
        q = cycle_query(3)
        ctx = make_context(g, nranks=2)
        colors = rng.integers(0, 3, size=g.n)
        count_colorful(g, q, colors, ctx=ctx)
        assert ctx.stats.total_ops() > 0
