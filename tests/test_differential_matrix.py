"""Cross-backend differential test matrix — the parity source of truth.

One parametrized suite asserts **bit-identical** colorful counts across
every production backend — ``bruteforce`` (the oracle), ``ps``, ``db``,
``ps-even``, ``ps-vec`` and the sharded multiprocess ``ps-dist`` — on
random ``(graph, query, seed)`` triples, both unlabeled and
vertex-labeled.  This replaces the scattered per-suite parity asserts as
the single place where "all backends agree" is checked exhaustively; the
per-module suites keep only their own unit concerns.

The matrix axes:

* **graphs** — two seeded Erdős–Rényi graphs (different densities), each
  carrying a 2-class vertex-label array;
* **queries** — fixed library shapes (cycles, diamond, paths, small
  paper queries) plus seeded random treewidth-2 queries;
* **label modes** — unlabeled, and labeled via deterministic
  :func:`~repro.query.library.with_random_labels`;
* **coloring seeds** — two per cell.

``ps-dist`` runs through one pooled 2-worker executor per graph (module
scope) so the matrix stays fast; a hypothesis sweep underneath fuzzes
the same invariant over free-form triples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.counting.bruteforce import count_colorful_matches
from repro.counting.solver import METHODS, solve_plan
from repro.counting.vectorized import solve_plan_vectorized
from repro.decomposition.planner import heuristic_plan
from repro.distributed.executor import ShardedExecutor
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.query.generators import random_tw2_query
from repro.query.library import (
    cycle_query,
    diamond,
    labeled_queries,
    paper_query,
    path_query,
    with_random_labels,
)

#: the data-graph grid: (name, n, edge probability, label seed)
GRAPH_SPECS = (
    ("er24-sparse", 24, 0.14, 101),
    ("er18-dense", 18, 0.30, 202),
)

#: the query grid: fixed shapes plus seeded random treewidth-2 samples
def _query_grid():
    queries = [
        cycle_query(3),
        cycle_query(5),
        diamond(),
        path_query(4),
        paper_query("glet1"),
        paper_query("youtube"),
    ]
    for seed in (7, 8, 9):
        rng = np.random.default_rng(seed)
        queries.append(random_tw2_query(rng, max_k=6, name=f"rand{seed}"))
    return queries


QUERIES = _query_grid()
COLORING_SEEDS = (0, 1)
LABEL_MODES = ("unlabeled", "labeled")


def _make_graph(spec) -> Graph:
    name, n, p, label_seed = spec
    g = erdos_renyi(n, p, np.random.default_rng(label_seed), name=name)
    labels = np.random.default_rng(label_seed + 1).integers(0, 2, size=n)
    return g.with_labels(labels)


@pytest.fixture(scope="module", params=GRAPH_SPECS, ids=[s[0] for s in GRAPH_SPECS])
def graph_and_executor(request):
    """One labeled data graph plus a pooled 2-worker ps-dist executor."""
    g = _make_graph(request.param)
    with ShardedExecutor(g, workers=2) as executor:
        yield g, executor


def _labeled_variant(query, graph_name: str):
    """Deterministic 2-class labeling keyed on (query, graph) identity."""
    return with_random_labels(query, 2, seed=hashable_seed(query.name, graph_name))


def hashable_seed(*parts: str) -> int:
    """Small deterministic seed from string parts (stable across runs)."""
    out = 0
    for part in parts:
        for ch in str(part):
            out = (out * 131 + ord(ch)) % 100003
    return out


@pytest.mark.parametrize("query", QUERIES, ids=[q.name for q in QUERIES])
@pytest.mark.parametrize("mode", LABEL_MODES)
def test_all_backends_bit_identical(graph_and_executor, query, mode):
    """bruteforce == ps == db == ps-even == ps-vec(@strict) == ps-dist."""
    g, executor = graph_and_executor
    if mode == "labeled":
        query = _labeled_variant(query, g.name)
    plan = heuristic_plan(query)
    for seed in COLORING_SEEDS:
        colors = np.random.default_rng(seed).integers(0, query.k, size=g.n)
        oracle = count_colorful_matches(g, query, colors)
        got = {
            method: solve_plan(plan, g, colors, method=method)
            for method in METHODS  # ps, db, ps-even
        }
        got["ps-vec"] = solve_plan_vectorized(plan, g, colors)
        # same sweep through the audited-primitive stub: the matrix now
        # also proves the array-namespace seam changes nothing
        got["ps-vec@strict"] = solve_plan_vectorized(plan, g, colors, xp="strict")
        got["ps-dist"] = executor.count(plan, colors).count
        mismatches = {m: c for m, c in got.items() if c != oracle}
        assert not mismatches, (
            f"{g.name} x {query.name} (mode={mode}, seed={seed}): "
            f"oracle={oracle}, mismatches={mismatches}"
        )


def test_labeled_library_matches_oracle(graph_and_executor):
    """Every labeled library template agrees with the oracle everywhere."""
    g, executor = graph_and_executor
    for name, query in labeled_queries().items():
        plan = heuristic_plan(query)
        colors = np.random.default_rng(5).integers(0, query.k, size=g.n)
        oracle = count_colorful_matches(g, query, colors)
        assert solve_plan(plan, g, colors, method="ps") == oracle, name
        assert solve_plan_vectorized(plan, g, colors) == oracle, name
        assert executor.count(plan, colors).count == oracle, name


def test_labeled_is_a_filter_of_unlabeled(graph_and_executor):
    """A labeled count can never exceed its unlabeled twin's count."""
    g, _ = graph_and_executor
    for query in QUERIES[:4]:
        labeled = _labeled_variant(query, g.name)
        colors = np.random.default_rng(2).integers(0, query.k, size=g.n)
        plan_u = heuristic_plan(query)
        plan_l = heuristic_plan(labeled)
        assert solve_plan_vectorized(plan_l, g, colors) <= solve_plan_vectorized(
            plan_u, g, colors
        )


def test_num_colors_extension_stays_bit_identical(graph_and_executor):
    """The wider-palette extension keeps cross-backend parity (labeled too)."""
    g, executor = graph_and_executor
    query = _labeled_variant(cycle_query(4), g.name)
    plan = heuristic_plan(query)
    kc = query.k + 2
    colors = np.random.default_rng(3).integers(0, kc, size=g.n)
    oracle = count_colorful_matches(g, query, colors)
    assert solve_plan(plan, g, colors, method="ps", num_colors=kc) == oracle
    assert solve_plan_vectorized(plan, g, colors, num_colors=kc) == oracle
    assert executor.count(plan, colors, num_colors=kc).count == oracle


# ----------------------------------------------------------------------
# precision parity: rel_error=None is inert on every backend
# ----------------------------------------------------------------------

PRECISION_BACKENDS = ("ps", "ps-vec", "ps-dist")


@pytest.mark.parametrize("method", PRECISION_BACKENDS)
def test_fixed_precision_is_bit_identical_to_bare_trials(graph_and_executor, method):
    """``precision=PrecisionSpec.fixed(N)`` == ``trials=N``, per backend.

    The acceptance bar for the adaptive-precision API: with
    ``rel_error=None`` the precision path must be invisible — same
    colorful counts, same estimate, same cache key as the historical
    fixed-trial spelling, on every backend including the sharded
    multiprocess one.
    """
    from repro.engine import CountingEngine, EngineConfig, PrecisionSpec
    from repro.engine.config import CountRequest
    from repro.engine.fingerprint import request_fingerprint

    g, _ = graph_and_executor
    query = paper_query("glet1")
    workers = 2 if method == "ps-dist" else 1
    with CountingEngine(g, EngineConfig(seed=0, workers=workers)) as engine:
        bare = engine.count(query, method=method, trials=5)
        spec = engine.count(query, method=method, precision=PrecisionSpec.fixed(5))
    assert bare.colorful_counts == spec.colorful_counts
    assert bare.estimate == spec.estimate
    assert not spec.stopped_early and spec.trials_used == 5
    cfg = EngineConfig(seed=0, workers=workers)
    assert request_fingerprint(
        g.name, CountRequest(query, method=method, trials=5), cfg
    ) == request_fingerprint(
        g.name, CountRequest(query, method=method, precision=PrecisionSpec.fixed(5)), cfg
    )


def test_adaptive_runs_agree_across_backends(graph_and_executor):
    """Adaptive scheduling is backend-invariant: every backend draws the
    same coloring stream, stops at the same trial, and reports the same
    counts — the parity matrix holds for the adaptive path too."""
    from repro.engine import CountingEngine, EngineConfig, PrecisionSpec

    g, _ = graph_and_executor
    query = paper_query("glet1")
    spec = PrecisionSpec(rel_error=0.4, min_trials=3, max_trials=40)
    runs = {}
    for method in PRECISION_BACKENDS:
        workers = 2 if method == "ps-dist" else 1
        with CountingEngine(g, EngineConfig(seed=0, workers=workers)) as engine:
            runs[method] = engine.count(query, method=method, precision=spec)
    reference = runs["ps"]
    assert reference.trials_used < spec.max_trials  # the rule actually fired
    for method, result in runs.items():
        assert result.trials_used == reference.trials_used, method
        assert result.stopped_early == reference.stopped_early, method
        assert result.colorful_counts == reference.colorful_counts, method
        assert result.estimate == reference.estimate, method


# ----------------------------------------------------------------------
# hypothesis sweep: free-form (graph, query, labels, coloring) triples
# ----------------------------------------------------------------------

@st.composite
def differential_cases(draw):
    n = draw(st.integers(min_value=4, max_value=14))
    graph_seed = draw(st.integers(min_value=0, max_value=2**20))
    p = draw(st.sampled_from([0.15, 0.25, 0.4]))
    query_seed = draw(st.integers(min_value=0, max_value=2**20))
    label_classes = draw(st.integers(min_value=1, max_value=3))
    labeled = draw(st.booleans())
    coloring_seed = draw(st.integers(min_value=0, max_value=2**20))
    return n, p, graph_seed, query_seed, label_classes, labeled, coloring_seed


@settings(max_examples=30, deadline=None)
@given(case=differential_cases())
def test_hypothesis_bruteforce_ps_psvec_agree(case):
    """Fuzzed triples: the in-process backends agree with the oracle."""
    n, p, graph_seed, query_seed, label_classes, labeled, coloring_seed = case
    rng = np.random.default_rng(graph_seed)
    g = erdos_renyi(n, p, rng)
    g = g.with_labels(rng.integers(0, label_classes, size=n))
    query = random_tw2_query(np.random.default_rng(query_seed), max_k=min(6, n))
    if labeled:
        query = with_random_labels(query, label_classes, seed=query_seed)
    colors = np.random.default_rng(coloring_seed).integers(0, query.k, size=n)
    plan = heuristic_plan(query)
    oracle = count_colorful_matches(g, query, colors)
    assert solve_plan(plan, g, colors, method="ps") == oracle
    assert solve_plan(plan, g, colors, method="db") == oracle
    assert solve_plan_vectorized(plan, g, colors) == oracle
