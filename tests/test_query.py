"""Tests for the QueryGraph class."""

import pytest

from repro.query import QueryGraph, cycle_query, path_query


class TestBasics:
    def test_node_and_edge_counts(self):
        q = QueryGraph([("a", "b"), ("b", "c")])
        assert q.k == 3
        assert q.num_edges() == 2

    def test_isolated_nodes_via_nodes_arg(self):
        q = QueryGraph([], nodes=["x", "y"])
        assert q.k == 2
        assert q.num_edges() == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph([("a", "a")])

    def test_degree_and_neighbors(self):
        q = QueryGraph([(0, 1), (0, 2)])
        assert q.degree(0) == 2
        assert q.neighbors(0) == {1, 2}

    def test_has_edge_symmetric(self):
        q = QueryGraph([(0, 1)])
        assert q.has_edge(0, 1) and q.has_edge(1, 0)
        assert not q.has_edge(0, 2)

    def test_duplicate_edges_collapse(self):
        q = QueryGraph([(0, 1), (1, 0)])
        assert q.num_edges() == 1


class TestConnectivity:
    def test_connected(self):
        assert cycle_query(5).is_connected()

    def test_disconnected(self):
        q = QueryGraph([(0, 1), (2, 3)])
        assert not q.is_connected()

    def test_single_node_connected(self):
        assert QueryGraph([], nodes=[0]).is_connected()


class TestTransforms:
    def test_relabel_to_ints(self):
        q = QueryGraph([("x", "y"), ("y", "z")])
        qi, mapping = q.relabel_to_ints()
        assert sorted(qi.nodes()) == [0, 1, 2]
        assert qi.num_edges() == 2
        assert set(mapping) == {"x", "y", "z"}

    def test_subgraph(self):
        q = cycle_query(5)
        sub = q.subgraph([0, 1, 2])
        assert sub.k == 3
        assert sub.num_edges() == 2

    def test_copy_independent(self):
        q = cycle_query(4)
        c = q.copy()
        assert q == c
        c.adj[0].discard(1)
        c.adj[1].discard(0)
        assert q != c


class TestDegeneracy:
    def test_tree_degeneracy(self):
        assert path_query(5).degeneracy() == 1

    def test_cycle_degeneracy(self):
        assert cycle_query(6).degeneracy() == 2

    def test_clique_degeneracy(self):
        k4 = QueryGraph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert k4.degeneracy() == 3


class TestEquality:
    def test_equality_ignores_edge_order(self):
        a = QueryGraph([(0, 1), (1, 2)])
        b = QueryGraph([(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert QueryGraph([(0, 1)]) != QueryGraph([(0, 2)])
