"""Golden-file regression fixtures for the whole Figure 8 query library.

``tests/golden/fig8_counts.json`` pins the exact per-trial colorful
counts of every Figure 8 query (and every labeled library template) on a
fixed builtin-dataset subset, under a fixed engine configuration.  The
engine draws colorings deterministically from the seed, so these numbers
are bit-stable across machines and Python/numpy versions — any kernel
refactor that silently changes results fails here first, before the
statistical tests could notice.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

and commit the diff (reviewers then see exactly which counts moved).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bench.datasets import dataset
from repro.engine import CountingEngine, EngineConfig
from repro.query.library import labeled_queries, paper_queries

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden", "fig8_counts.json")

#: builtin stand-ins where the whole library solves in a few seconds
GOLDEN_DATASETS = ("condmat", "roadnetca", "brain")

#: fixed engine configuration: the counts below are exact for this config
GOLDEN_CONFIG = EngineConfig(method="ps-vec", trials=2, seed=0)

#: deterministic 2-class vertex labels for the labeled section
GRAPH_LABEL_CLASSES = 2
GRAPH_LABEL_SEED = 12345


def _labeled_dataset(name: str):
    g = dataset(name)
    rng = np.random.default_rng(GRAPH_LABEL_SEED)
    return g.with_labels(rng.integers(0, GRAPH_LABEL_CLASSES, size=g.n))


def compute_golden() -> dict:
    """The current counts in the committed fixture's exact shape."""
    doc = {
        "schema": "repro-golden/1",
        "engine": {
            "method": GOLDEN_CONFIG.method,
            "trials": GOLDEN_CONFIG.trials,
            "seed": GOLDEN_CONFIG.seed,
        },
        "graph_labels": {"classes": GRAPH_LABEL_CLASSES, "seed": GRAPH_LABEL_SEED},
        "unlabeled": {},
        "labeled": {},
    }
    for gname in GOLDEN_DATASETS:
        with CountingEngine(dataset(gname), GOLDEN_CONFIG) as engine:
            doc["unlabeled"][gname] = {
                qname: engine.count(q).colorful_counts
                for qname, q in sorted(paper_queries().items())
            }
        with CountingEngine(_labeled_dataset(gname), GOLDEN_CONFIG) as engine:
            doc["labeled"][gname] = {
                qname: engine.count(q).colorful_counts
                for qname, q in sorted(labeled_queries().items())
            }
    return doc


def test_fig8_counts_match_golden(request):
    update = request.config.getoption("--update-golden")
    current = compute_golden()
    if update:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            "tests/golden/fig8_counts.json is missing; regenerate with "
            "`pytest tests/test_golden.py --update-golden` and commit it"
        )
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    assert current == golden, (
        "exact counts drifted from tests/golden/fig8_counts.json — if the "
        "change is intentional, regenerate with --update-golden and commit"
    )


def test_golden_counts_backend_independent():
    """The pinned numbers are not a ps-vec artifact: ps reproduces a slice.

    One (dataset, query) cell per section is cross-checked against the
    dict-kernel PS backend — the golden file then transitively pins every
    backend that the differential matrix proves bit-identical.
    """
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        golden = json.load(fh)
    with CountingEngine(dataset("condmat"), GOLDEN_CONFIG) as engine:
        r = engine.count(paper_queries()["glet1"], method="ps")
        assert r.colorful_counts == golden["unlabeled"]["condmat"]["glet1"]
        # ...and not an array-namespace artifact either: the strict
        # audited-primitive stub reproduces the same slice bit for bit
        s = engine.count(paper_queries()["glet1"], namespace="strict")
        assert s.namespace == "strict"
        assert s.colorful_counts == golden["unlabeled"]["condmat"]["glet1"]
    with CountingEngine(_labeled_dataset("condmat"), GOLDEN_CONFIG) as engine:
        r = engine.count(labeled_queries()["tri-001"], method="ps")
        assert r.colorful_counts == golden["labeled"]["condmat"]["tri-001"]
