"""Tests for plan enumeration and the Section 6 heuristic planner."""

import pytest

from repro.decomposition import (
    choose_plan,
    count_plans,
    enumerate_plans,
    heuristic_plan,
    rank_plans,
)
from repro.query import QueryGraph, cycle_query, paper_queries, paper_query, path_query, satellite


class TestEnumeration:
    def test_cycle_has_single_plan(self):
        assert count_plans(cycle_query(5)) == 1

    def test_brain1_two_plans(self):
        assert count_plans(paper_query("brain1")) == 2

    def test_path_plans_are_leaf_orderings(self):
        # P3 = a-b-c: contract either endpoint first (2 ways), then the
        # remaining edge in either direction (2 ways) -> 4 distinct chains
        assert count_plans(path_query(3)) == 4

    def test_all_plans_structurally_distinct(self):
        plans = enumerate_plans(paper_query("ecoli2"))
        sigs = [p.signature() for p in plans]
        assert len(sigs) == len(set(sigs))

    def test_enumeration_limit(self):
        from repro.query import star_query

        with pytest.raises(RuntimeError, match="expansions"):
            enumerate_plans(star_query(9), limit=10)

    def test_rejects_treewidth_3(self):
        k4 = QueryGraph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        from repro.decomposition import DecompositionError

        with pytest.raises(DecompositionError):
            enumerate_plans(k4)

    def test_every_paper_query_enumerable(self):
        for name, q in paper_queries().items():
            plans = enumerate_plans(q)
            assert len(plans) >= 1, name

    def test_satellite_multi_plan(self):
        assert count_plans(satellite()) >= 2


class TestPlanner:
    def test_choose_plan_minimizes_key(self):
        for name, q in paper_queries().items():
            best = choose_plan(q)
            plans = enumerate_plans(q)
            assert best.heuristic_key() == min(p.heuristic_key() for p in plans), name

    def test_rank_plans_sorted(self):
        plans = enumerate_plans(paper_query("ecoli1"))
        ranked = rank_plans(plans)
        keys = [p.heuristic_key() for p in ranked]
        assert keys == sorted(keys)

    def test_heuristic_plan_fallback(self):
        # a star large enough to trip the enumeration cap still gets a plan
        from repro.query import star_query

        plan = heuristic_plan(star_query(9), limit=10)
        assert plan.root is not None

    def test_heuristic_prefers_shorter_cycles(self):
        # theta graph: 3 plans with different longest cycles; heuristic
        # should avoid leaving the longest cycle for last when possible
        theta = QueryGraph([(0, 2), (2, 1), (0, 3), (3, 1), (0, 4), (4, 5), (5, 1)])
        best = choose_plan(theta)
        plans = enumerate_plans(theta)
        assert best.longest_cycle() == min(p.longest_cycle() for p in plans)
