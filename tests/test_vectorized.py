"""Parity and unit tests for the vectorized PS kernels (``ps-vec``).

The contract under test: ``ps-vec`` is **bit-identical** to the dict
kernel ``ps`` on the same plan and coloring — across the whole paper
query library, under enlarged palettes, and on random graph/query pairs.
"""

import numpy as np
import pytest

from repro.counting import count_colorful_ps, count_colorful_ps_vec, solve_plan
from repro.counting.vectorized import (
    MAX_COLORS_VEC,
    VecBinaryTable,
    _check_counts,
    _checked_total,
    _group_sum,
    _popcount,
    solve_plan_vectorized,
)
from repro.decomposition import choose_plan
from repro.engine import VEC_AUTO_MIN_SIZE, CountingEngine, get_backend
from repro.graph import Graph, erdos_renyi, grid_road_network
from repro.query import cycle_query, paper_queries, path_query, satellite, star_query


@pytest.fixture(scope="module")
def medium_graph():
    return erdos_renyi(40, 0.2, np.random.default_rng(7), name="parity")


# ----------------------------------------------------------------------
# parity with the reference ps kernel
# ----------------------------------------------------------------------

class TestLibraryParity:
    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_full_query_library(self, name, medium_graph):
        q = paper_queries()[name]
        rng = np.random.default_rng(hash(name) % 2**32)
        colors = rng.integers(0, q.k, size=medium_graph.n)
        assert count_colorful_ps_vec(medium_graph, q, colors) == count_colorful_ps(
            medium_graph, q, colors
        )

    def test_satellite_fixture(self, medium_graph):
        q = satellite()
        colors = np.random.default_rng(3).integers(0, q.k, size=medium_graph.n)
        assert count_colorful_ps_vec(medium_graph, q, colors) == count_colorful_ps(
            medium_graph, q, colors
        )

    @pytest.mark.parametrize("make_q", [
        lambda: cycle_query(3),
        lambda: cycle_query(6),
        lambda: path_query(1),
        lambda: path_query(5),
        lambda: star_query(3),
    ])
    def test_basic_shapes(self, make_q, medium_graph):
        q = make_q()
        colors = np.random.default_rng(11).integers(0, max(q.k, 1), size=medium_graph.n)
        assert count_colorful_ps_vec(medium_graph, q, colors) == count_colorful_ps(
            medium_graph, q, colors
        )

    def test_enlarged_palette(self, medium_graph):
        q = paper_queries()["wiki"]
        for kc in (q.k + 1, q.k + 3):
            colors = np.random.default_rng(kc).integers(0, kc, size=medium_graph.n)
            via_solver = solve_plan(
                choose_plan(q), medium_graph, colors, method="ps", num_colors=kc
            )
            assert (
                count_colorful_ps_vec(medium_graph, q, colors, num_colors=kc)
                == via_solver
            )

    def test_solve_plan_dispatches_ps_vec(self, medium_graph):
        q = paper_queries()["glet1"]
        colors = np.random.default_rng(0).integers(0, q.k, size=medium_graph.n)
        plan = choose_plan(q)
        assert solve_plan(plan, medium_graph, colors, method="ps-vec") == solve_plan(
            plan, medium_graph, colors, method="ps"
        )

    def test_empty_and_tiny_graphs(self):
        q = cycle_query(4)
        for g in (Graph(0, []), Graph(1, []), Graph(6, [])):
            colors = np.zeros(g.n, dtype=np.int64)
            if g.n:
                colors = np.arange(g.n) % q.k
            assert count_colorful_ps_vec(g, q, colors) == count_colorful_ps(g, q, colors)

    def test_single_node_query_counts_vertices(self):
        g = erdos_renyi(9, 0.3, np.random.default_rng(1))
        q = path_query(1)
        assert count_colorful_ps_vec(g, q, np.zeros(g.n, dtype=np.int64)) == g.n


class TestValidation:
    def test_rejects_small_palette(self, medium_graph):
        q = cycle_query(4)
        colors = np.zeros(medium_graph.n, dtype=np.int64)
        with pytest.raises(ValueError, match="at least k"):
            count_colorful_ps_vec(medium_graph, q, colors, num_colors=3)

    def test_rejects_oversized_palette(self, medium_graph):
        q = cycle_query(4)
        colors = np.zeros(medium_graph.n, dtype=np.int64)
        with pytest.raises(ValueError, match="int64"):
            count_colorful_ps_vec(
                medium_graph, q, colors, num_colors=MAX_COLORS_VEC + 1
            )

    def test_rejects_wrong_coloring_length(self, medium_graph):
        with pytest.raises(ValueError, match="every data vertex"):
            count_colorful_ps_vec(medium_graph, cycle_query(3), [0, 1, 2])

    def test_rejects_out_of_range_colors(self, medium_graph):
        colors = np.full(medium_graph.n, 5)
        with pytest.raises(ValueError, match="colors must lie"):
            count_colorful_ps_vec(medium_graph, cycle_query(3), colors)


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------

class TestPrimitives:
    def test_group_sum_aggregates_and_sorts(self):
        u = np.array([2, 1, 2, 1], dtype=np.int64)
        s = np.array([3, 1, 3, 1], dtype=np.int64)
        c = np.array([10, 1, 5, 2], dtype=np.int64)
        (gu, gs), gc = _group_sum((u, s), c)
        assert gu.tolist() == [1, 2]
        assert gs.tolist() == [1, 3]
        assert gc.tolist() == [3, 15]

    def test_group_sum_empty(self):
        e = np.empty(0, dtype=np.int64)
        (gu,), gc = _group_sum((e,), e)
        assert gu.size == 0 and gc.size == 0

    def test_group_sum_refuses_wrapping_totals(self):
        big = np.array([2**61, 2**61, 2**61], dtype=np.int64)
        keys = np.zeros(3, dtype=np.int64)
        with pytest.raises(OverflowError, match="'ps' backend"):
            _group_sum((keys,), big)

    def test_checked_total_refuses_wrapping_totals(self):
        assert _checked_total(np.array([3, 4], dtype=np.int64)) == 7
        with pytest.raises(OverflowError):
            _checked_total(np.array([2**61, 2**61, 2**61], dtype=np.int64))

    def test_check_counts_caps_product_inputs(self):
        _check_counts(np.array([2**30], dtype=np.int64))  # fine
        with pytest.raises(OverflowError):
            _check_counts(np.array([2**31], dtype=np.int64))

    def test_popcount_matches_python(self):
        vals = np.array([0, 1, 3, 0b1011, (1 << 62) - 1], dtype=np.int64)
        assert _popcount(vals).tolist() == [bin(int(v)).count("1") for v in vals]

    def test_transpose_swaps_and_sorts(self):
        t = VecBinaryTable(
            ("a", "b"),
            np.array([0, 5], dtype=np.int64),
            np.array([9, 2], dtype=np.int64),
            np.array([3, 3], dtype=np.int64),
            np.array([7, 4], dtype=np.int64),
        )
        tt = t.transpose()
        assert tt.boundary == ("b", "a")
        assert tt.u.tolist() == [2, 9]
        assert tt.v.tolist() == [5, 0]
        assert tt.cnt.tolist() == [4, 7]


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------

class TestEngineIntegration:
    def test_backend_registered(self):
        backend = get_backend("ps-vec")
        assert backend.needs_plan and not backend.tracks_load

    def test_auto_prefers_vec_on_large_cyclic(self):
        rng = np.random.default_rng(5)
        g = grid_road_network(40, 40, rng)  # n + m well above the threshold
        assert g.n + g.m >= VEC_AUTO_MIN_SIZE
        result = CountingEngine(g).count(cycle_query(4), trials=1, method="auto")
        assert result.method == "ps-vec"

    def test_auto_keeps_db_on_small_cyclic(self):
        g = erdos_renyi(20, 0.3, np.random.default_rng(2))
        result = CountingEngine(g).count(cycle_query(4), trials=1, method="auto")
        assert result.method == "db"

    def test_auto_still_prefers_treelet_on_trees(self):
        rng = np.random.default_rng(5)
        g = grid_road_network(40, 40, rng)
        result = CountingEngine(g).count(path_query(3), trials=1, method="auto")
        assert result.method == "treelet"

    def test_engine_counts_match_ps(self, medium_graph):
        engine = CountingEngine(medium_graph)
        q = paper_queries()["youtube"]
        a = engine.count(q, trials=3, seed=9, method="ps")
        b = engine.count(q, trials=3, seed=9, method="ps-vec")
        assert a.colorful_counts == b.colorful_counts

    def test_load_tracking_rejected(self, medium_graph):
        engine = CountingEngine(medium_graph, nranks=4)
        with pytest.raises(ValueError, match="cannot attribute load"):
            engine.count(cycle_query(4), trials=1, method="ps-vec")


# ----------------------------------------------------------------------
# property-based parity on random graphs/queries
# ----------------------------------------------------------------------

hyp = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def graph_query_coloring(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=len(possible)))
    g = Graph(n, edges)
    kind = draw(st.sampled_from(["cycle", "path", "star", "paper", "glued"]))
    if kind == "cycle":
        q = cycle_query(draw(st.integers(3, 6)))
    elif kind == "path":
        q = path_query(draw(st.integers(2, 5)))
    elif kind == "star":
        q = star_query(draw(st.integers(2, 4)))
    elif kind == "paper":
        q = paper_queries()[draw(st.sampled_from(["glet1", "glet2", "youtube", "wiki"]))]
    else:  # two cycles glued at a node
        l1, l2 = draw(st.integers(3, 4)), draw(st.integers(3, 4))
        edges_q = [(i, (i + 1) % l1) for i in range(l1)]
        ring2 = [0] + list(range(l1, l1 + l2 - 1))
        edges_q += [(ring2[i], ring2[(i + 1) % l2]) for i in range(l2)]
        from repro.query import QueryGraph

        q = QueryGraph(edges_q)
    extra = draw(st.integers(0, 2))
    kc = q.k + extra
    colors = np.array([draw(st.integers(0, kc - 1)) for _ in range(n)], dtype=np.int64)
    return g, q, colors, kc


class TestPropertyParity:
    @settings(max_examples=40, deadline=None)
    @given(inst=graph_query_coloring())
    def test_ps_vec_equals_ps(self, inst):
        g, q, colors, kc = inst
        plan = choose_plan(q)
        ref = solve_plan(plan, g, colors, method="ps", num_colors=kc)
        vec = solve_plan_vectorized(plan, g, colors, num_colors=kc)
        assert vec == ref
