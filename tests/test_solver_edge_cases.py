"""Edge cases and internal invariants of the plan solver."""

import numpy as np
import pytest

from repro.counting.solver import METHODS, solve_plan
from repro.counting import count_colorful_matches
from repro.decomposition import build_decomposition, enumerate_plans
from repro.graph import Graph, erdos_renyi
from repro.query import QueryGraph, cycle_query, diamond, paper_query


class TestMethodValidation:
    def test_unknown_method_rejected(self, triangle_graph):
        plan = build_decomposition(cycle_query(3))
        with pytest.raises(ValueError, match="method"):
            solve_plan(plan, triangle_graph, np.array([0, 1, 2]), method="magic")

    def test_all_methods_registered(self):
        assert set(METHODS) == {"ps", "db", "ps-even"}

    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods_agree(self, method, rng):
        g = erdos_renyi(10, 0.45, rng)
        q = paper_query("wiki")
        plan = build_decomposition(q)
        colors = rng.integers(0, q.k, size=g.n)
        expected = count_colorful_matches(g, q, colors)
        assert solve_plan(plan, g, colors, method=method) == expected


class TestDiamondAndChords:
    """The diamond exercises Case 2's annotated-edge-consuming subtlety:
    the triangle's contraction edge coincides with an original edge."""

    def test_diamond_in_k4(self, rng):
        k4 = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        q = diamond()
        colors = np.array([0, 1, 2, 3])
        expected = count_colorful_matches(k4, q, colors)
        for method in METHODS:
            plan = build_decomposition(q)
            assert solve_plan(plan, k4, colors, method=method) == expected

    def test_two_triangles_sharing_edge_query(self, rng):
        # same as diamond but built via shared-edge phrasing
        q = QueryGraph([("x", "y"), ("y", "z"), ("z", "x"), ("y", "w"), ("w", "z")])
        g = erdos_renyi(9, 0.55, rng)
        colors = rng.integers(0, 4, size=g.n)
        expected = count_colorful_matches(g, q, colors)
        for plan in enumerate_plans(q):
            assert solve_plan(plan, g, colors, method="db") == expected


class TestThetaGraphs:
    """Theta graphs (two hubs joined by three paths) stress the nested
    cycle handling: contracting one cycle creates an annotated edge that
    becomes part of the next cycle."""

    @pytest.mark.parametrize("lengths", [(2, 2, 2), (2, 2, 3), (2, 3, 3)])
    def test_theta(self, lengths, rng):
        edges = []
        nxt = 2
        for plen in lengths:  # path with plen edges between hubs 0 and 1
            prev = 0
            for _ in range(plen - 1):
                edges.append((prev, nxt))
                prev = nxt
                nxt += 1
            edges.append((prev, 1))
        q = QueryGraph(edges)
        g = erdos_renyi(10, 0.5, rng)
        colors = rng.integers(0, q.k, size=g.n)
        expected = count_colorful_matches(g, q, colors)
        for method in METHODS:
            assert solve_plan(build_decomposition(q), g, colors, method=method) == expected


class TestLongCycles:
    def test_c8_on_cycle_data_graph(self):
        # data graph = C8 itself; exactly 16 colorful matches under a
        # rainbow coloring (8 rotations x 2 directions)
        g = Graph(8, [(i, (i + 1) % 8) for i in range(8)])
        q = cycle_query(8)
        colors = np.arange(8)
        for method in METHODS:
            plan = build_decomposition(q)
            assert solve_plan(plan, g, colors, method=method) == 16

    def test_odd_cycle_split_asymmetry(self, rng):
        # odd cycles split into paths of different lengths; both methods
        # must still agree with brute force
        g = erdos_renyi(11, 0.45, rng)
        q = cycle_query(7)
        colors = rng.integers(0, 7, size=g.n)
        expected = count_colorful_matches(g, q, colors)
        for method in METHODS:
            assert solve_plan(build_decomposition(q), g, colors, method=method) == expected


class TestDegenerateColorings:
    def test_two_colors_only(self, rng):
        # only 2 of k colors used: no colorful match for k >= 3
        g = erdos_renyi(10, 0.5, rng)
        q = cycle_query(4)
        colors = rng.integers(0, 2, size=g.n)
        for method in METHODS:
            assert solve_plan(build_decomposition(q), g, colors, method=method) == 0

    def test_exact_color_classes(self):
        # bipartite-ish: C4 data graph colored 0,1,2,3 has the 8 matches
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        q = cycle_query(4)
        assert solve_plan(build_decomposition(q), g, np.array([0, 1, 2, 3]), method="db") == 8
        # collapsing two opposite vertices' colors kills every match
        assert solve_plan(build_decomposition(q), g, np.array([0, 1, 0, 3]), method="db") == 0
