"""Tests for the Table 1 dataset stand-ins."""

import pytest

from repro.bench import PAPER_TABLE1, all_datasets, dataset, dataset_names
from repro.graph.properties import is_connected


class TestDatasetRegistry:
    def test_ten_datasets(self):
        assert len(dataset_names()) == 10
        assert set(dataset_names()) == set(PAPER_TABLE1)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset("facebook")

    def test_datasets_cached(self):
        assert dataset("condmat") is dataset("condmat")

    def test_deterministic(self):
        # cache-independent determinism: clear and rebuild
        g1 = dataset("enron")
        dataset.cache_clear()
        g2 = dataset("enron")
        assert g1 == g2


class TestDatasetShapes:
    def test_all_connected(self):
        for name, g in all_datasets().items():
            assert is_connected(g), name

    def test_sizes_reasonable(self):
        for name, g in all_datasets().items():
            assert 300 <= g.n <= 1300, name
            assert g.m >= g.n * 0.9, name

    def test_skew_ordering_matches_paper(self):
        """The core property the substitution must preserve: social
        networks are skewed, the road network is not."""
        skew = {name: g.degree_skew() for name, g in all_datasets().items()}
        assert skew["roadnetca"] < 3
        for social in ("epinions", "enron", "slashdot", "orkut", "brightkite"):
            assert skew[social] > 10, social
        # epinions is the most skewed social network in the paper
        assert skew["epinions"] > skew["condmat"]
        assert skew["epinions"] > skew["astroph"]

    def test_road_network_low_max_degree(self):
        g = dataset("roadnetca")
        assert g.max_degree() <= 10  # paper: 14

    def test_paper_stats_attached(self):
        stats = PAPER_TABLE1["epinions"]
        assert stats["max_deg"] == 3558
        assert stats["nodes"] == 131_000
