"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_count_args(self):
        args = build_parser().parse_args(
            ["count", "--graph", "condmat", "--query", "glet1", "--trials", "2"]
        )
        assert args.graph == "condmat"
        assert args.trials == 2
        assert args.method == "db"


class TestCommands:
    def test_queries_command(self, capsys):
        assert main(["queries"]) == 0
        out = capsys.readouterr().out
        assert "brain3" in out and "tw=2" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "roadnetca" in out

    def test_plan_command(self, capsys):
        assert main(["plan", "--query", "brain1"]) == 0
        out = capsys.readouterr().out
        assert "plans=2" in out
        assert "cycle" in out

    def test_count_command(self, capsys):
        rc = main(
            ["count", "--graph", "condmat", "--query", "glet1", "--trials", "2", "--seed", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "match estimate" in out

    def test_count_ps_method(self, capsys):
        rc = main(
            ["count", "--graph", "condmat", "--query", "glet1",
             "--trials", "1", "--method", "ps"]
        )
        assert rc == 0

    def test_count_from_edge_list(self, tmp_path, capsys, petersen_graph):
        from repro.graph import write_edge_list

        path = str(tmp_path / "g.txt")
        write_edge_list(petersen_graph, path)
        rc = main(["count", "--graph", path, "--query", "glet1", "--trials", "1"])
        assert rc == 0
