"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0
        assert g.m == 0

    def test_isolated_vertices(self):
        g = Graph(5, [])
        assert g.n == 5
        assert g.m == 0
        assert all(g.degree(u) == 0 for u in range(5))

    def test_single_edge(self):
        g = Graph(2, [(0, 1)])
        assert g.m == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_edge_normalisation(self):
        g = Graph(3, [(2, 0)])
        assert list(g.edges()) == [(0, 2)]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self loop"):
            Graph(2, [(1, 1)])

    def test_rejects_duplicate_edge(self):
        with pytest.raises(ValueError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(2, [(0, 5)])

    def test_rejects_non_pair_edges(self):
        # e.g. a weighted (m, 3) edge list must not be silently re-paired
        with pytest.raises(ValueError, match="pairs"):
            Graph(6, [(0, 1, 2), (3, 4, 5)])
        with pytest.raises(ValueError, match="pairs"):
            Graph(4, np.array([0, 1, 2, 3]))

    def test_rejects_negative_n(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_from_edge_array(self):
        arr = np.array([[0, 1], [1, 2]])
        g = Graph.from_edge_array(3, arr)
        assert g.m == 2


class TestQueries:
    def test_neighbors_sorted(self, triangle_graph):
        assert list(triangle_graph.neighbors(0)) == [1, 2]

    def test_degrees(self, petersen_graph):
        assert all(petersen_graph.degree(u) == 3 for u in range(10))

    def test_has_edge_false(self, square_graph):
        assert not square_graph.has_edge(0, 2)

    def test_edges_each_once(self, triangle_graph):
        assert sorted(triangle_graph.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_array_shape(self, petersen_graph):
        arr = petersen_graph.edge_array()
        assert arr.shape == (15, 2)
        assert (arr[:, 0] < arr[:, 1]).all()

    def test_avg_degree(self, triangle_graph):
        assert triangle_graph.avg_degree() == pytest.approx(2.0)

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert g.degree_skew() == pytest.approx(3 / 1.5)


class TestDegreeOrdering:
    def test_rank_is_permutation(self, petersen_graph):
        rank = petersen_graph.degree_order_rank()
        assert sorted(rank) == list(range(10))

    def test_higher_degree_is_higher(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3), (1, 2)])
        # degrees: 0 -> 3, 1 -> 2, 2 -> 2, 3 -> 1
        assert g.is_higher(0, 1)
        assert g.is_higher(0, 3)
        assert g.is_higher(1, 3)

    def test_tie_broken_by_id(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])  # all degree 2
        assert g.is_higher(2, 1)
        assert g.is_higher(1, 0)
        assert not g.is_higher(0, 2)

    def test_total_order(self, small_random_graph):
        g = small_random_graph
        for u in range(g.n):
            for v in range(g.n):
                if u != v:
                    assert g.is_higher(u, v) != g.is_higher(v, u)

    def test_rank_cached(self, triangle_graph):
        r1 = triangle_graph.degree_order_rank()
        r2 = triangle_graph.degree_order_rank()
        assert r1 is r2


class TestEquality:
    def test_equal_graphs(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_graphs(self):
        a = Graph(3, [(0, 1)])
        b = Graph(3, [(0, 2)])
        assert a != b


class TestCSRRoundTrip:
    """``Graph ↔ CSR`` is lossless for every simple undirected graph."""

    def _round_trip(self, g):
        from repro.graph import CSR

        csr = g.to_csr()
        assert isinstance(csr, CSR)
        back = Graph.from_csr(csr.indptr, csr.indices, name=g.name)
        assert back == g
        assert back.n == g.n and back.m == g.m
        return back

    def test_empty_graph(self):
        self._round_trip(Graph(0, []))

    def test_single_node(self):
        g = self._round_trip(Graph(1, []))
        assert g.degrees.tolist() == [0]

    def test_self_loop_free_graph(self):
        self._round_trip(Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]))

    def test_disconnected_graph(self):
        g = self._round_trip(Graph(7, [(0, 1), (2, 3), (3, 4)]))  # 5, 6 isolated
        assert g.degree(5) == 0 and g.degree(6) == 0

    def test_csr_is_cached_storage(self):
        g = Graph(3, [(0, 1), (1, 2)])
        csr1, csr2 = g.to_csr(), g.to_csr()
        assert csr1.indptr is csr2.indptr and csr1.indices is csr2.indices
        assert csr1.indptr is g.indptr

    def test_unpacks_as_pair(self):
        indptr, indices = Graph(3, [(0, 2)]).to_csr()
        assert indptr.tolist() == [0, 1, 1, 2]
        assert indices.tolist() == [2, 0]

    def test_rejects_malformed_indptr(self):
        with pytest.raises(ValueError, match="malformed CSR"):
            Graph.from_csr(np.array([0, 2, 1]), np.array([1, 0]))
        with pytest.raises(ValueError, match="malformed CSR"):
            Graph.from_csr(np.array([0, 1]), np.array([0, 0]))

    def test_rejects_asymmetric_adjacency(self):
        # edge 0->1 present but 1->0 missing
        with pytest.raises(ValueError):
            Graph.from_csr(np.array([0, 1, 1]), np.array([1]))

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            Graph.from_csr(np.array([0, 1]), np.array([0]))

    def test_random_graphs_round_trip(self):
        from repro.graph import erdos_renyi

        rng = np.random.default_rng(4)
        for _ in range(5):
            self._round_trip(erdos_renyi(12, 0.3, rng))
