"""Tests for the benchmark harness utilities."""

import json

import pytest

from repro.bench import (
    DEFAULT_TOLERANCE,
    PERF_SMOKE_GRID,
    Timer,
    bench_record,
    bench_scale,
    calibration_seconds,
    compare_to_baseline,
    format_table,
    geometric_mean,
    grid_graph_names,
    grid_query_names,
    load_bench_json,
    write_bench_json,
)
from repro.bench.harness import main as harness_main


class TestFormatTable:
    def test_basic_render(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456}], floatfmt=".2f")
        assert "0.12" in text

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text


class TestScaleKnob:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_light_grids(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert len(grid_graph_names()) < 10
        assert len(grid_query_names()) < 10

    def test_full_grids(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")
        assert len(grid_graph_names()) == 10
        assert len(grid_query_names()) == 10


class TestTimerAndStats:
    def test_timer_measures(self):
        t = Timer()
        with t.measure():
            sum(range(10000))
        assert t.elapsed > 0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 2]) == pytest.approx(2.0)  # zeros skipped


class TestBenchRecords:
    def test_record_key_and_fields(self):
        rec = bench_record("fig9", "enron", "wiki", "ps-vec", 0.25, count=7, note="x")
        assert rec["key"] == "fig9/enron/wiki/ps-vec"
        assert rec["seconds"] == 0.25
        assert rec["count"] == 7
        assert rec["note"] == "x"

    def test_json_round_trip(self, tmp_path):
        records = [bench_record("b", "g", "q", "m", 1.5)]
        path = write_bench_json(str(tmp_path / "BENCH_t.json"), records, extra=3)
        doc = load_bench_json(path)
        assert doc["schema"] == "repro-bench/1"
        assert doc["extra"] == 3
        assert doc["records"] == records

    def test_json_is_valid_json_on_disk(self, tmp_path):
        path = write_bench_json(str(tmp_path / "BENCH_t.json"), [])
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["records"] == []


class TestBaselineGate:
    def _baseline(self, seconds):
        return {"records": [bench_record("b", "g", "q", "m", seconds)]}

    def test_no_regression_within_tolerance(self):
        current = [bench_record("b", "g", "q", "m", 1.9)]
        assert compare_to_baseline(current, self._baseline(1.0)) == []

    def test_regression_flagged_beyond_tolerance(self):
        current = [bench_record("b", "g", "q", "m", 2.5)]
        (reg,) = compare_to_baseline(current, self._baseline(1.0))
        assert reg["key"] == "b/g/q/m"
        assert reg["ratio"] == pytest.approx(2.5)

    def test_custom_tolerance(self):
        current = [bench_record("b", "g", "q", "m", 1.5)]
        assert compare_to_baseline(current, self._baseline(1.0), tolerance=1.2)

    def test_untracked_keys_never_fail(self):
        current = [bench_record("new", "g", "q", "m", 100.0)]
        assert compare_to_baseline(current, self._baseline(0.001)) == []

    def test_default_tolerance_is_2x(self):
        assert DEFAULT_TOLERANCE == 2.0

    def test_calibrated_metric_preferred_over_seconds(self):
        # raw seconds regressed 10x (slower machine) but the calibrated
        # figure is unchanged — the gate must not flag it
        base = {"records": [bench_record("b", "g", "q", "m", 0.1, calibrated=5.0)]}
        current = [bench_record("b", "g", "q", "m", 1.0, calibrated=5.0)]
        assert compare_to_baseline(current, base) == []
        # and a genuine calibrated regression is still caught
        worse = [bench_record("b", "g", "q", "m", 1.0, calibrated=15.0)]
        (reg,) = compare_to_baseline(worse, base)
        assert reg["metric"] == "calibrated"
        assert reg["ratio"] == pytest.approx(3.0)

    def test_calibration_probe_is_positive_and_fast(self):
        cal = calibration_seconds(repeats=1)
        assert 0 < cal < 5.0


class TestPerfSmokeCLI:
    """End-to-end runs of ``python -m repro.bench`` (in-process)."""

    def test_smoke_grid_pairs_ps_with_vec(self):
        # every ps cell has a ps-vec twin so regressions compare kernels
        pairs = {(g, q) for g, q, m in PERF_SMOKE_GRID if m == "ps"}
        vec = {(g, q) for g, q, m in PERF_SMOKE_GRID if m == "ps-vec"}
        assert pairs <= vec

    def test_emit_and_gate_round_trip(self, tmp_path, capsys):
        out = tmp_path / "BENCH_perf_smoke.json"
        base = tmp_path / "baseline.json"
        rc = harness_main(
            ["--repeats", "1", "--emit-json", str(out),
             "--baseline", str(base), "--update-baseline"]
        )
        assert rc == 0
        assert out.exists() and base.exists()
        doc = load_bench_json(str(out))
        keys = {r["key"] for r in doc["records"]}
        assert "perf_smoke/condmat/glet1/ps-vec" in keys
        # identical counts for ps and ps-vec inside the smoke grid
        by_key = {r["key"]: r for r in doc["records"]}
        assert (
            by_key["perf_smoke/condmat/glet1/ps"]["count"]
            == by_key["perf_smoke/condmat/glet1/ps-vec"]["count"]
        )
        # gate passes against the baseline we just wrote (huge tolerance
        # so machine noise can never flake this test)
        rc = harness_main(["--repeats", "1", "--baseline", str(base),
                           "--tolerance", "1e9"])
        assert rc == 0

    def test_update_baseline_requires_baseline_path(self, capsys):
        with pytest.raises(SystemExit):
            harness_main(["--update-baseline"])
        assert "requires --baseline" in capsys.readouterr().err

    def test_gate_fails_on_regression(self, tmp_path, capsys):
        base = tmp_path / "baseline.json"
        # a baseline claiming every tracked benchmark once took ~0 seconds
        write_bench_json(
            str(base),
            [bench_record("perf_smoke", g, q, m, 1e-12) for g, q, m in PERF_SMOKE_GRID],
        )
        rc = harness_main(["--repeats", "1", "--baseline", str(base)])
        assert rc == 1
        assert "REGRESSIONS" in capsys.readouterr().out


class TestScalingBench:
    """The ps-dist strong-scaling bench and its CLI entry point."""

    def test_run_scaling_bench_structure_and_parity(self):
        from repro.bench import SCALING_GRID, run_scaling_bench
        from repro.engine import EngineConfig

        doc = run_scaling_bench(workers=(1, 2), repeats=1,
                                config=EngineConfig(seed=0))
        assert doc["workers"] == [1, 2]
        assert doc["seed"] == 0
        assert len(doc["speedups"]) == len(SCALING_GRID)
        assert len(doc["records"]) == 2 * len(SCALING_GRID)
        for rec in doc["records"]:
            assert rec["critical_seconds"] > 0
            assert rec["calibrated"] > 0
            assert rec["count"] >= 0
        # counts are identical at every worker count (asserted inside the
        # bench; re-check through the records)
        by_cell = {}
        for rec in doc["records"]:
            by_cell.setdefault((rec["graph"], rec["query"]), set()).add(rec["count"])
        assert all(len(counts) == 1 for counts in by_cell.values())
        assert doc["speedup_at_max"] > 0

    def test_scaling_bench_is_deterministic_in_counts(self):
        from repro.bench import run_scaling_bench
        from repro.engine import EngineConfig

        a = run_scaling_bench(workers=(1,), repeats=1, config=EngineConfig(seed=3))
        b = run_scaling_bench(workers=(1,), repeats=1, config=EngineConfig(seed=3))
        assert [r["count"] for r in a["records"]] == [r["count"] for r in b["records"]]

    def test_scaling_cli_emits_json_and_gates(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scaling.json"
        rc = harness_main([
            "--scaling", "--workers", "1,2", "--repeats", "1",
            "--emit-json", str(out), "--assert-speedup", "0.01",
        ])
        assert rc == 0
        doc = load_bench_json(str(out))
        assert doc["workers"] == [1, 2]
        assert "speedup_at_max" in doc and "speedups" in doc
        assert {r["workers"] for r in doc["records"]} == {1, 2}
        out_text = capsys.readouterr().out
        assert "strong scaling" in out_text

    def test_scaling_cli_gate_fails_on_impossible_speedup(self, capsys):
        rc = harness_main([
            "--scaling", "--workers", "1,2", "--repeats", "1",
            "--assert-speedup", "1e9",
        ])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_invalid_worker_counts_rejected(self):
        from repro.bench import run_scaling_bench

        with pytest.raises(ValueError, match="worker counts"):
            run_scaling_bench(workers=(0, 2), repeats=1)


class TestServeBench:
    """The counting-service throughput bench and its CLI entry point."""

    def test_run_serve_smoke_structure_and_parity(self):
        from repro.bench import SERVE_GRID, run_serve_smoke
        from repro.engine import EngineConfig

        doc = run_serve_smoke(duration=0.1, config=EngineConfig(seed=0))
        assert doc["cached_qps"] > 0
        assert doc["cache"]["misses"] == len(SERVE_GRID)
        assert doc["cache"]["evictions"] == 0
        # three records per grid cell: cold, cached-http, cached-local
        assert len(doc["records"]) == 3 * len(SERVE_GRID)
        by_cell = {}
        for rec in doc["records"]:
            by_cell.setdefault((rec["graph"], rec["query"]), set()).add(rec["count"])
        # cold/cached paths agree on the counts (parity asserted inside too)
        assert all(len(counts) == 1 for counts in by_cell.values())
        for rec in doc["records"]:
            if rec["method"] != "cold-http":
                assert rec["qps"] > 0 and rec["requests"] >= 1

    def test_serve_cli_emits_json_and_gates(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve.json"
        rc = harness_main([
            "--serve-smoke", "--duration", "0.1",
            "--emit-json", str(out), "--assert-qps", "0.01",
        ])
        assert rc == 0
        doc = load_bench_json(str(out))
        assert doc["cached_qps"] > 0
        assert any(r["method"] == "cached-http" for r in doc["records"])
        # an impossible throughput floor fails the gate
        rc = harness_main(["--serve-smoke", "--duration", "0.05",
                           "--assert-qps", "1e12"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out
