"""Tests for the benchmark harness utilities."""

import os

import pytest

from repro.bench import (
    Timer,
    bench_scale,
    format_table,
    geometric_mean,
    grid_graph_names,
    grid_query_names,
)


class TestFormatTable:
    def test_basic_render(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "b" in lines[1]
        assert "22" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456}], floatfmt=".2f")
        assert "0.12" in text

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text


class TestScaleKnob:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_light_grids(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert len(grid_graph_names()) < 10
        assert len(grid_query_names()) < 10

    def test_full_grids(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1.0")
        assert len(grid_graph_names()) == 10
        assert len(grid_query_names()) == 10


class TestTimerAndStats:
    def test_timer_measures(self):
        t = Timer()
        with t.measure():
            sum(range(10000))
        assert t.elapsed > 0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0, 2]) == pytest.approx(2.0)  # zeros skipped
