"""Tests for edge-list I/O."""

import pytest

from repro.graph import Graph, read_edge_list, write_edge_list


class TestRoundTrip:
    def test_roundtrip(self, tmp_path, petersen_graph):
        path = str(tmp_path / "g.txt")
        write_edge_list(petersen_graph, path)
        g2 = read_edge_list(path)
        assert g2 == petersen_graph

    def test_roundtrip_with_isolated(self, tmp_path):
        g = Graph(5, [(0, 1)])
        path = str(tmp_path / "iso.txt")
        write_edge_list(g, path)
        g2 = read_edge_list(path)
        assert g2.n == 5  # header preserves isolated vertices
        assert g2.m == 1


class TestRawSnapFormat:
    def test_reads_duplicates_and_comments(self, tmp_path):
        path = tmp_path / "raw.txt"
        path.write_text("# comment\n0 1\n1 0\n1 2\n2 2\n")
        g = read_edge_list(str(path))
        assert g.n == 3
        assert g.m == 2  # duplicate and self loop dropped

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            read_edge_list("/nonexistent/file.txt")
