"""Tests for the motif-analysis layer (census, null model, significance)."""

import numpy as np
import pytest

from repro.counting import count_matches
from repro.graph import Graph, erdos_renyi, ring_of_cliques
from repro.motifs import (
    MotifSignificance,
    all_tw2_motifs,
    double_edge_swap,
    motif_census,
    motif_significance,
    null_ensemble,
    significance_profile,
)
from repro.query import are_isomorphic, cycle_query, path_query

# this module deliberately exercises the deprecated pre-engine shim API
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")



class TestMotifEnumeration:
    def test_k3_motifs(self):
        motifs = all_tw2_motifs(3)
        assert len(motifs) == 2  # P3 and triangle
        assert any(are_isomorphic(m, path_query(3)) for m in motifs)
        assert any(are_isomorphic(m, cycle_query(3)) for m in motifs)

    def test_k4_motifs_exclude_k4(self):
        motifs = all_tw2_motifs(4)
        # 6 connected graphs on 4 nodes; K4 has treewidth 3
        assert len(motifs) == 5
        k4 = Graph  # placeholder to silence linters
        from repro.query import QueryGraph

        k4q = QueryGraph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert not any(are_isomorphic(m, k4q) for m in motifs)

    def test_k5_motif_count(self):
        # 21 connected graphs on 5 nodes; 15 have treewidth <= 2
        assert len(all_tw2_motifs(5)) == 15

    def test_all_connected_and_tw2(self):
        from repro.query import is_treewidth_at_most_2

        for k in (3, 4, 5):
            for m in all_tw2_motifs(k):
                assert m.is_connected()
                assert is_treewidth_at_most_2(m)

    def test_unsupported_size(self):
        with pytest.raises(ValueError):
            all_tw2_motifs(6)

    def test_pairwise_non_isomorphic(self):
        motifs = all_tw2_motifs(4)
        for i, a in enumerate(motifs):
            for b in motifs[i + 1 :]:
                assert not are_isomorphic(a, b)


class TestCensus:
    def test_census_entries(self, rng):
        g = erdos_renyi(25, 0.25, rng, name="er25")
        census = motif_census(g, k=3, trials=6, seed=1)
        assert len(census) == 2
        for entry in census:
            assert entry.subgraph_estimate >= 0

    def test_census_tracks_exact_counts(self, rng):
        g = erdos_renyi(20, 0.3, rng)
        census = motif_census(g, k=3, trials=40, seed=2)
        for entry in census:
            exact = count_matches(g, entry.motif)
            if exact > 50:  # only well-populated motifs concentrate
                assert entry.match_estimate == pytest.approx(exact, rel=0.5)

    def test_custom_motif_set(self, rng):
        g = erdos_renyi(15, 0.3, rng)
        census = motif_census(g, motifs=[cycle_query(4)], trials=3)
        assert len(census) == 1


class TestNullModel:
    def test_degrees_preserved(self, rng):
        g = erdos_renyi(40, 0.15, rng)
        nl = double_edge_swap(g, rng)
        assert sorted(nl.degrees) == sorted(g.degrees)
        assert nl.m == g.m

    def test_graph_actually_changes(self, rng):
        g = ring_of_cliques(5, 4)
        nl = double_edge_swap(g, rng)
        assert nl != g  # overwhelmingly likely after 4m swaps

    def test_tiny_graph_passthrough(self, rng):
        g = Graph(2, [(0, 1)])
        assert double_edge_swap(g, rng).m == 1

    def test_star_graceful(self, rng):
        # stars admit no valid swap; must terminate and keep degrees
        g = Graph(6, [(0, i) for i in range(1, 6)])
        nl = double_edge_swap(g, rng, nswaps=10)
        assert sorted(nl.degrees) == sorted(g.degrees)

    def test_ensemble_size(self, rng):
        g = erdos_renyi(20, 0.2, rng)
        assert len(null_ensemble(g, 4, rng)) == 4


class TestSignificance:
    def test_zscore_math(self):
        s = MotifSignificance("m", observed=120.0, null_mean=100.0, null_std=10.0)
        assert s.z_score == pytest.approx(2.0)
        assert s.abundance == pytest.approx(20 / 220)

    def test_zero_std_cases(self):
        assert MotifSignificance("m", 5.0, 5.0, 0.0).z_score == 0.0
        assert MotifSignificance("m", 9.0, 5.0, 0.0).z_score == float("inf")

    def test_profile_normalised(self):
        results = [
            MotifSignificance("a", 10, 5, 1),
            MotifSignificance("b", 3, 5, 1),
        ]
        profile = significance_profile(results)
        assert np.linalg.norm(profile) == pytest.approx(1.0)

    def test_triangle_enriched_in_clique_ring(self, rng):
        """Triangles in a ring of cliques are far above the degree-null."""
        g = ring_of_cliques(6, 4)
        results = motif_significance(
            g, [cycle_query(3)], null_samples=4, trials=6, seed=3
        )
        assert results[0].observed > results[0].null_mean
