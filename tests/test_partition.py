"""Tests for vertex partition strategies."""

import numpy as np
import pytest

from repro.distributed import (
    block_partition,
    cyclic_partition,
    hash_partition,
    make_partition,
)


class TestBlockPartition:
    def test_contiguous(self):
        p = block_partition(10, 2)
        assert list(p.owners) == [0] * 5 + [1] * 5

    def test_balanced_sizes(self):
        p = block_partition(100, 7)
        sizes = p.rank_sizes()
        assert sizes.sum() == 100
        assert sizes.max() - sizes.min() <= 1

    def test_uneven_division(self):
        p = block_partition(10, 3)
        assert p.rank_sizes().sum() == 10
        assert p.owners.max() == 2

    def test_single_rank(self):
        p = block_partition(5, 1)
        assert (p.owners == 0).all()


class TestCyclicPartition:
    def test_round_robin(self):
        p = cyclic_partition(6, 3)
        assert list(p.owners) == [0, 1, 2, 0, 1, 2]


class TestHashPartition:
    def test_deterministic(self):
        a = hash_partition(50, 4)
        b = hash_partition(50, 4)
        assert np.array_equal(a.owners, b.owners)

    def test_roughly_balanced(self):
        p = hash_partition(4000, 4)
        sizes = p.rank_sizes()
        assert sizes.min() > 700


class TestEdgeCases:
    """Degenerate shapes the real sharded executor must survive."""

    @pytest.mark.parametrize("strategy", ["block", "cyclic", "hash"])
    def test_empty_graph(self, strategy):
        p = make_partition(0, 3, strategy)
        assert p.nranks == 3
        assert len(p.owners) == 0
        assert p.rank_sizes().sum() == 0

    @pytest.mark.parametrize("strategy", ["block", "cyclic", "hash"])
    def test_single_vertex(self, strategy):
        p = make_partition(1, 4, strategy)
        assert len(p.owners) == 1
        assert 0 <= p.owner(0) < 4
        assert p.rank_sizes().sum() == 1

    @pytest.mark.parametrize("strategy", ["block", "cyclic", "hash"])
    def test_more_ranks_than_vertices(self, strategy):
        p = make_partition(3, 8, strategy)
        assert len(p.owners) == 3
        assert p.rank_sizes().sum() == 3
        # some ranks necessarily own nothing; none own out-of-range ids
        assert (p.owners >= 0).all() and (p.owners < 8).all()

    @pytest.mark.parametrize("strategy", ["block", "cyclic", "hash"])
    @pytest.mark.parametrize("n,nranks", [(0, 1), (1, 1), (7, 3), (100, 7), (5, 9)])
    def test_round_trip_every_vertex_owned_exactly_once(self, strategy, n, nranks):
        """Shard masks tile the vertex set: a partition of the vertices."""
        p = make_partition(n, nranks, strategy)
        masks = [p.owners == r for r in range(nranks)]
        coverage = np.sum(masks, axis=0) if n else np.zeros(0)
        assert (coverage == 1).all()  # exactly one owner per vertex
        assert sum(int(m.sum()) for m in masks) == n
        assert p.rank_sizes().tolist() == [int(m.sum()) for m in masks]

    def test_block_partition_is_contiguous_and_monotone(self):
        p = block_partition(11, 4)
        diffs = np.diff(p.owners)
        assert ((diffs == 0) | (diffs == 1)).all()


class TestFactory:
    def test_strategies(self):
        for s in ("block", "cyclic", "hash"):
            p = make_partition(20, 4, s)
            assert p.nranks == 4

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown partition"):
            make_partition(10, 2, "zigzag")

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            make_partition(10, 0, "block")
