"""Tests for vertex partition strategies."""

import numpy as np
import pytest

from repro.distributed import (
    block_partition,
    cyclic_partition,
    hash_partition,
    make_partition,
)


class TestBlockPartition:
    def test_contiguous(self):
        p = block_partition(10, 2)
        assert list(p.owners) == [0] * 5 + [1] * 5

    def test_balanced_sizes(self):
        p = block_partition(100, 7)
        sizes = p.rank_sizes()
        assert sizes.sum() == 100
        assert sizes.max() - sizes.min() <= 1

    def test_uneven_division(self):
        p = block_partition(10, 3)
        assert p.rank_sizes().sum() == 10
        assert p.owners.max() == 2

    def test_single_rank(self):
        p = block_partition(5, 1)
        assert (p.owners == 0).all()


class TestCyclicPartition:
    def test_round_robin(self):
        p = cyclic_partition(6, 3)
        assert list(p.owners) == [0, 1, 2, 0, 1, 2]


class TestHashPartition:
    def test_deterministic(self):
        a = hash_partition(50, 4)
        b = hash_partition(50, 4)
        assert np.array_equal(a.owners, b.owners)

    def test_roughly_balanced(self):
        p = hash_partition(4000, 4)
        sizes = p.rank_sizes()
        assert sizes.min() > 700


class TestFactory:
    def test_strategies(self):
        for s in ("block", "cyclic", "hash"):
            p = make_partition(20, 4, s)
            assert p.nranks == 4

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown partition"):
            make_partition(10, 2, "zigzag")

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            make_partition(10, 0, "block")
