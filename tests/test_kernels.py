"""Unit tests for the join kernels (path building, node joins, merges)."""

import numpy as np
import pytest

from repro.counting.kernels import (
    build_path_table,
    merge_cycle_paths,
    node_join_unary,
    oriented_binary,
)
from repro.distributed import sequential_context
from repro.graph import Graph
from repro.tables import BinaryTable, PathTable, UnaryTable


@pytest.fixture
def path_graph():
    """0-1-2-3 path with distinct colors 0..3."""
    return Graph(4, [(0, 1), (1, 2), (2, 3)]), np.array([0, 1, 2, 3])


class TestOrientedBinary:
    def test_identity_orientation(self):
        t = BinaryTable(("a", "b"))
        cache = {}
        assert oriented_binary(t, "a", "b", cache) is t
        assert not cache

    def test_transposed_orientation_cached(self):
        t = BinaryTable(("a", "b"))
        t.add(1, 2, 0b11, 7)
        cache = {}
        tt = oriented_binary(t, "b", "a", cache)
        assert tt.data[(2, 1, 0b11)] == 7
        assert oriented_binary(t, "b", "a", cache) is tt  # cached

    def test_mismatched_boundary_raises(self):
        t = BinaryTable(("a", "b"))
        with pytest.raises(ValueError):
            oriented_binary(t, "a", "c", {})


class TestBuildPathTable:
    def test_two_node_path_is_edge_table(self, path_graph):
        g, colors = path_graph
        ctx = sequential_context(g)
        t = build_path_table(g, colors, ("x", "y"), {}, {}, ctx)
        # every directed edge with distinct endpoint colors: 3 edges x 2
        assert t.total() == 6

    def test_three_node_path(self, path_graph):
        g, colors = path_graph
        ctx = sequential_context(g)
        t = build_path_table(g, colors, ("x", "y", "z"), {}, {}, ctx)
        # directed 3-vertex simple paths: 0-1-2, 1-2-3 and reverses -> 4
        assert t.total() == 4

    def test_high_constraint_prunes(self, path_graph):
        g, colors = path_graph
        ctx = sequential_context(g)
        t = build_path_table(g, colors, ("x", "y"), {}, {}, ctx, high=True)
        # only edges whose start is higher: one direction each -> 3
        assert t.total() == 3

    def test_record_set_populates_extras(self, path_graph):
        g, colors = path_graph
        ctx = sequential_context(g)
        t = build_path_table(
            g, colors, ("x", "y", "z"), {}, {}, ctx, record_set={"y"}
        )
        assert t.record_labels == ("y",)
        for (u, v, extras, _sig), _cnt in t.items():
            assert len(extras) == 1
            assert g.has_edge(u, extras[0]) and g.has_edge(extras[0], v)

    def test_monochromatic_edges_excluded(self):
        g = Graph(2, [(0, 1)])
        colors = np.array([0, 0])
        ctx = sequential_context(g)
        t = build_path_table(g, colors, ("x", "y"), {}, {}, ctx)
        assert t.total() == 0

    def test_rejects_single_label(self, path_graph):
        g, colors = path_graph
        with pytest.raises(ValueError):
            build_path_table(g, colors, ("x",), {}, {}, sequential_context(g))

    def test_edge_table_substitution(self, path_graph):
        """An annotated edge replaces graph edges with a child table."""
        g, colors = path_graph
        ctx = sequential_context(g)
        child = BinaryTable(("x", "y"))
        child.add(0, 1, 0b011, 5)  # pretend the child matched 5 ways
        t = build_path_table(g, colors, ("x", "y"), {}, {0: child}, ctx)
        assert t.total() == 5


class TestNodeJoin:
    def test_join_on_end(self, path_graph):
        g, colors = path_graph
        ctx = sequential_context(g)
        base = build_path_table(g, colors, ("x", "y"), {}, {}, ctx)
        child = UnaryTable("y")
        # annotation matched at vertex 1 using color {3} (+ its own color 1)
        child.add(1, 0b1010, 2)
        joined = node_join_unary(base, child, colors, on_start=False, ctx=ctx)
        # base entries ending at 1: (0,1,{0,1}) and (2,1,{2,1});
        # join requires sig overlap == {color(1)} = {1}: both qualify
        assert joined.total() == 4

    def test_join_on_start(self, path_graph):
        g, colors = path_graph
        ctx = sequential_context(g)
        base = build_path_table(g, colors, ("x", "y"), {}, {}, ctx)
        child = UnaryTable("x")
        child.add(0, 0b1001, 3)  # colors {0, 3}
        joined = node_join_unary(base, child, colors, on_start=True, ctx=ctx)
        # base entries starting at 0: only (0,1,{0,1}); overlap {0} ok
        assert joined.total() == 3

    def test_join_color_conflict_blocks(self, path_graph):
        g, colors = path_graph
        ctx = sequential_context(g)
        base = build_path_table(g, colors, ("x", "y"), {}, {}, ctx)
        child = UnaryTable("y")
        child.add(1, 0b0011, 1)  # includes color 0 = color of vertex 0
        joined = node_join_unary(base, child, colors, on_start=False, ctx=ctx)
        # entry (0,1) blocked (color 0 reused); entry (2,1) fine
        assert joined.total() == 1


class TestMergeCyclePaths:
    def test_triangle_merge(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        colors = np.array([0, 1, 2])
        ctx = sequential_context(g)
        tplus = build_path_table(g, colors, ("a", "b"), {}, {}, ctx)
        tminus = build_path_table(g, colors, ("a", "c", "b"), {}, {}, ctx)
        out = []
        merge_cycle_paths(
            tplus, tminus, colors, lambda img, sig, cnt: out.append(cnt),
            boundary_labels=(), s_label="a", e_label="b", ctx=ctx,
        )
        assert sum(out) == 6  # directed triangle traversals from each start

    def test_merge_boundary_resolution(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        colors = np.array([0, 1, 2, 3])
        ctx = sequential_context(g)
        tplus = build_path_table(g, colors, ("a", "p", "c"), {}, {}, ctx, record_set={"p"})
        tminus = build_path_table(g, colors, ("a", "q", "c"), {}, {}, ctx, record_set={"q"})
        seen = []
        merge_cycle_paths(
            tplus, tminus, colors,
            lambda img, sig, cnt: seen.append(img),
            boundary_labels=("p", "q"), s_label="a", e_label="c", ctx=ctx,
        )
        assert seen  # C4 exists in the data square
        for p_img, q_img in seen:
            assert p_img != q_img  # opposite corners

    def test_unlocatable_boundary_raises(self):
        tp, tm = PathTable(), PathTable()
        tp.add(0, 1, (), 0b11, 1)
        tm.add(0, 1, (), 0b11, 1)
        g = Graph(2, [(0, 1)])
        with pytest.raises(AssertionError):
            merge_cycle_paths(
                tp, tm, np.array([0, 1]), lambda *a: None,
                boundary_labels=("ghost",), s_label="a", e_label="b",
                ctx=sequential_context(g),
            )
