"""The correctness spine: brute force == PS == DB on randomized inputs.

Every fixture query (the ten Figure 8 queries, the Satellite query of
Figure 2, cycles, trees) is counted on random graphs under random
colorings by the brute-force reference, the PS baseline and the DB
algorithm — all three must agree exactly, for every decomposition plan.
"""

import numpy as np
import pytest

from repro.counting import (
    count_colorful_db,
    count_colorful_matches,
    count_colorful_ps,
)
from repro.decomposition import enumerate_plans
from repro.graph import Graph, erdos_renyi, ring_of_cliques
from repro.query import all_fixture_queries, cycle_query, paper_queries, satellite

FIXTURES = {q.name: q for q in all_fixture_queries()}


def _check(g, q, colors, plans=None):
    expected = count_colorful_matches(g, q, colors)
    plans = plans or [None]
    for plan in plans:
        assert count_colorful_ps(g, q, colors, plan=plan) == expected
        assert count_colorful_db(g, q, colors, plan=plan) == expected
    return expected


class TestPaperQueriesAgainstBruteForce:
    @pytest.mark.parametrize("name", sorted(paper_queries()))
    def test_on_random_graphs(self, name, rng):
        q = paper_queries()[name]
        nonzero_seen = False
        for _trial in range(4):
            g = erdos_renyi(10, 0.45, rng)
            colors = rng.integers(0, q.k, size=g.n)
            if _check(g, q, colors) > 0:
                nonzero_seen = True
        # at least the small queries should find matches somewhere
        if q.k <= 6:
            assert nonzero_seen, f"{name}: never matched; test too weak"


class TestSatellite:
    def test_satellite_all_plans(self, rng):
        q = satellite()
        g = erdos_renyi(9, 0.55, rng)
        colors = rng.integers(0, q.k, size=g.n)
        plans = enumerate_plans(q)
        assert len(plans) >= 2
        _check(g, q, colors, plans=plans)


class TestCycles:
    @pytest.mark.parametrize("length", [3, 4, 5, 6, 7])
    def test_cycle_queries(self, length, rng):
        q = cycle_query(length)
        g = erdos_renyi(11, 0.4, rng)
        colors = rng.integers(0, length, size=g.n)
        _check(g, q, colors)

    def test_cycle_on_structured_graph(self, rng):
        g = ring_of_cliques(4, 4)
        for length in (3, 4, 5):
            q = cycle_query(length)
            colors = rng.integers(0, length, size=g.n)
            _check(g, q, colors)

    def test_c4_exact_on_square(self, square_graph):
        q = cycle_query(4)
        colors = np.array([0, 1, 2, 3])
        assert count_colorful_ps(square_graph, q, colors) == 8
        assert count_colorful_db(square_graph, q, colors) == 8


class TestTreesViaBlocks:
    @pytest.mark.parametrize("name", ["P4", "S3", "cbt2"])
    def test_tree_queries(self, name, rng):
        q = FIXTURES[name]
        g = erdos_renyi(11, 0.35, rng)
        colors = rng.integers(0, q.k, size=g.n)
        _check(g, q, colors)


class TestEdgeCases:
    def test_single_node_query(self, petersen_graph):
        from repro.query import QueryGraph

        q = QueryGraph([], nodes=["z"])
        colors = np.zeros(10, dtype=np.int64)
        assert count_colorful_ps(petersen_graph, q, colors) == 10
        assert count_colorful_db(petersen_graph, q, colors) == 10

    def test_single_edge_query(self, triangle_graph):
        from repro.query import QueryGraph

        q = QueryGraph([("a", "b")])
        colors = np.array([0, 1, 1])
        # ordered adjacent pairs with distinct colors: (0,1),(1,0),(0,2),(2,0)
        assert count_colorful_ps(triangle_graph, q, colors) == 4
        assert count_colorful_db(triangle_graph, q, colors) == 4

    def test_empty_data_graph(self):
        g = Graph(5, [])
        q = cycle_query(3)
        colors = np.zeros(5, dtype=np.int64)
        assert count_colorful_db(g, q, colors) == 0

    def test_query_larger_than_graph(self, triangle_graph):
        q = cycle_query(5)
        colors = np.array([0, 1, 2])
        assert count_colorful_db(triangle_graph, q, colors) == 0

    def test_monochromatic_coloring_zero(self, petersen_graph):
        q = cycle_query(5)
        colors = np.zeros(10, dtype=np.int64)
        assert count_colorful_db(petersen_graph, q, colors) == 0
        assert count_colorful_ps(petersen_graph, q, colors) == 0

    def test_invalid_colors_rejected(self, triangle_graph):
        q = cycle_query(3)
        with pytest.raises(ValueError, match="colors"):
            count_colorful_db(triangle_graph, q, np.array([0, 1, 5]))

    def test_coloring_wrong_length(self, triangle_graph):
        q = cycle_query(3)
        with pytest.raises(ValueError):
            count_colorful_db(triangle_graph, q, np.array([0, 1]))


class TestAllPlansAgree:
    """Different decomposition trees of the same query count identically."""

    @pytest.mark.parametrize("name", ["wiki", "ecoli1", "ecoli2", "brain1", "youtube"])
    def test_plan_independence(self, name, rng):
        q = paper_queries()[name]
        g = erdos_renyi(10, 0.5, rng)
        colors = rng.integers(0, q.k, size=g.n)
        plans = enumerate_plans(q)
        counts = set()
        for plan in plans:
            counts.add(count_colorful_ps(g, q, colors, plan=plan))
            counts.add(count_colorful_db(g, q, colors, plan=plan))
        assert len(counts) == 1
