"""Tests for the brute-force reference counters (vs hand counts & networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.counting import count_colorful_matches, count_matches
from repro.graph import Graph, erdos_renyi
from repro.query import QueryGraph, cycle_query, path_query


def to_nx(g: Graph) -> nx.Graph:
    ng = nx.Graph()
    ng.add_nodes_from(range(g.n))
    ng.add_edges_from(g.edges())
    return ng


def query_to_nx(q: QueryGraph) -> nx.Graph:
    ng = nx.Graph()
    ng.add_nodes_from(q.nodes())
    ng.add_edges_from(q.edges())
    return ng


def nx_match_count(g: Graph, q: QueryGraph) -> int:
    """Count monomorphisms (non-induced subgraph matches) with networkx."""
    gm = nx.algorithms.isomorphism.GraphMatcher(to_nx(g), query_to_nx(q))
    return sum(1 for _ in gm.subgraph_monomorphisms_iter())


class TestHandCounts:
    def test_triangle_in_triangle(self, triangle_graph):
        assert count_matches(triangle_graph, cycle_query(3)) == 6

    def test_edge_in_triangle(self, triangle_graph):
        assert count_matches(triangle_graph, path_query(2)) == 6  # 3 edges x 2 dirs

    def test_c4_in_square(self, square_graph):
        assert count_matches(square_graph, cycle_query(4)) == 8  # 4 rotations x 2

    def test_triangle_in_square(self, square_graph):
        assert count_matches(square_graph, cycle_query(3)) == 0

    def test_p3_in_square(self, square_graph):
        assert count_matches(square_graph, path_query(3)) == 8

    def test_c5_in_petersen(self, petersen_graph):
        # Petersen has 12 pentagons; each counted aut(C5)=10 times as a match
        assert count_matches(petersen_graph, cycle_query(5)) == 120

    def test_single_node_query(self, petersen_graph):
        q = QueryGraph([], nodes=[0])
        assert count_matches(petersen_graph, q) == 10


class TestAgainstNetworkx:
    @pytest.mark.parametrize("qbuilder", [
        lambda: cycle_query(3),
        lambda: cycle_query(4),
        lambda: path_query(4),
        lambda: QueryGraph([(0, 1), (1, 2), (2, 0), (2, 3)]),  # tailed triangle
    ])
    def test_random_graphs(self, qbuilder, rng):
        q = qbuilder()
        for _ in range(3):
            g = erdos_renyi(9, 0.4, rng)
            assert count_matches(g, q) == nx_match_count(g, q)


class TestColorful:
    def test_all_same_color_gives_zero(self, triangle_graph):
        colors = np.zeros(3, dtype=np.int64)
        assert count_colorful_matches(triangle_graph, cycle_query(3), colors) == 0

    def test_rainbow_coloring_counts_all(self, triangle_graph):
        colors = np.array([0, 1, 2])
        assert count_colorful_matches(triangle_graph, cycle_query(3), colors) == 6

    def test_colorful_at_most_total(self, rng):
        g = erdos_renyi(10, 0.4, rng)
        q = cycle_query(4)
        colors = rng.integers(0, 4, size=g.n)
        assert count_colorful_matches(g, q, colors) <= count_matches(g, q)

    def test_coloring_length_mismatch(self, triangle_graph):
        with pytest.raises(ValueError):
            count_colorful_matches(triangle_graph, cycle_query(3), [0, 1])
