"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graph import Graph, erdos_renyi


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the tests/golden/ fixtures instead of asserting them",
    )


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01) -> bool:
    """Poll ``predicate`` until it is truthy or ``timeout`` elapses.

    The deflake primitive for timing-sensitive service tests: a fixed
    ``time.sleep`` picks one magic duration for every machine, while this
    helper returns as soon as the condition holds and only gives up after
    a generous deadline (returns False — asserts stay at the call site).
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def triangle_graph():
    """K3."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)], name="K3")


@pytest.fixture
def square_graph():
    """C4 as a data graph."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="C4-data")


@pytest.fixture
def petersen_graph():
    """The Petersen graph — vertex transitive, girth 5, many cycles."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(10, outer + inner + spokes, name="petersen")


@pytest.fixture
def small_random_graph(rng):
    return erdos_renyi(12, 0.3, rng, name="er12")


def random_coloring_for(g: Graph, k: int, rng: np.random.Generator) -> np.ndarray:
    return rng.integers(0, k, size=g.n, dtype=np.int64)
