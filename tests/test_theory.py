"""Tests for the Section 9-10 theory toolkit."""

import numpy as np
import pytest

from repro.graph.degree import lambda_balance, moment, truncated_power_law_sequence
from repro.theory import (
    balance_report,
    claim_10_1_prediction,
    count_simple_paths,
    count_x_paths,
    count_y_paths,
    power_law_exponents,
    power_law_graph,
    predicted_gap_exponent,
    sample_chung_lu,
    validate_degree_sequence,
    x_upper_bound,
    y_lower_bound,
)
from repro.graph import Graph


class TestChungLuModel:
    def test_validation_rejects_small_degrees(self):
        with pytest.raises(ValueError, match="d_u >= 1"):
            validate_degree_sequence(np.array([0.5, 1.0, 2.0]))

    def test_validation_rejects_large_degrees(self):
        seq = np.ones(16)
        seq[0] = 10  # sqrt(16) = 4
        with pytest.raises(ValueError, match="sqrt"):
            validate_degree_sequence(seq)

    def test_sampling_realises_expected_degrees(self, rng):
        n = 900
        seq = np.full(n, 8.0)
        g = sample_chung_lu(seq, rng)
        assert abs(g.avg_degree() - 8.0) < 1.2

    def test_power_law_graph_returns_sequence(self, rng):
        g, seq = power_law_graph(256, 1.5, rng)
        assert g.n == 256
        assert len(seq) == 256


class TestPathCounters:
    def test_simple_paths_on_triangle(self, triangle_graph):
        # q=2: ordered adjacent pairs = 6; q=3: 3! = 6 labelled paths
        assert count_simple_paths(triangle_graph, 2) == 6
        assert count_simple_paths(triangle_graph, 3) == 6

    def test_q1_is_vertex_count(self, petersen_graph):
        assert count_simple_paths(petersen_graph, 1) == 10

    def test_y_paths_partition_by_start(self, triangle_graph):
        # exactly one endpoint of each path has the max id
        assert count_y_paths(triangle_graph, 2) == 3
        assert count_y_paths(triangle_graph, 3) == 2

    def test_x_equals_y_on_regular_graph_with_id_order(self, petersen_graph):
        # all degrees equal -> degree order reduces to id order
        for q in (2, 3):
            assert count_x_paths(petersen_graph, q) == count_y_paths(petersen_graph, q)

    def test_x_less_than_y_on_star(self):
        # star: high-starting paths must start at the hub
        g = Graph(6, [(0, i) for i in range(1, 6)])
        # X(3): paths of 3 vertices starting above both others: only from
        # hub? hub-leaf-? has no continuation; leaf-hub-leaf starts at a
        # leaf which is lower than the hub -> 0
        assert count_x_paths(g, 3) == 0
        assert count_y_paths(g, 3) > 0

    def test_domination_counts_bounded(self, rng):
        from repro.graph import erdos_renyi

        g = erdos_renyi(15, 0.3, rng)
        for q in (2, 3, 4):
            total = count_simple_paths(g, q)
            assert count_x_paths(g, q) <= total
            assert count_y_paths(g, q) <= total

    def test_y_with_random_ids_still_partitions(self, rng):
        from repro.graph import erdos_renyi

        g = erdos_renyi(12, 0.4, rng)
        ids = rng.permutation(g.n)
        # each undirected path has exactly one dominating endpoint ->
        # Y(q) with any id assignment equals half the directed paths...
        # only exactly true for q=2:
        assert count_y_paths(g, 2, ids=ids) == count_simple_paths(g, 2) // 2


class TestBounds:
    def test_y_lower_bound_formula(self):
        d = np.full(100, 4.0)
        # (1/q)(2m)^{3-q} (sum d^2)^{q-2} with 2m=400, sum d^2=1600
        assert y_lower_bound(d, 3) == pytest.approx((1 / 3) * 1600)

    def test_x_upper_bound_formula(self):
        d = np.full(100, 4.0)
        s = 2 - 1 / 2
        expected = (400.0) ** (-1) * moment(d, s) ** 2
        assert x_upper_bound(d, 3) == pytest.approx(expected)

    def test_bounds_reject_small_q(self):
        d = np.ones(10)
        with pytest.raises(ValueError):
            y_lower_bound(d, 2)
        with pytest.raises(ValueError):
            x_upper_bound(d, 2)

    def test_x_bound_never_exceeds_y_bound_asymptotics(self, rng):
        """Lemma 9.7: E[X(q)] = O(E[Y(q)]) — on balanced sequences the
        X bound is within a constant of the Y bound."""
        for alpha in (1.3, 1.5, 1.7):
            seq = truncated_power_law_sequence(4096, alpha, rng=rng)
            for q in (3, 4):
                # X upper bound <= C * Y lower bound * q (Lemma 9.7's chain)
                assert x_upper_bound(seq, q) <= 3 * q * y_lower_bound(seq, q)

    def test_power_law_exponents_regimes(self):
        exps = power_law_exponents(1.4, 4)
        assert not exps["x_is_nlogn"]
        exps2 = power_law_exponents(1.9, 4)  # 1.9 > 2 - 1/3
        assert exps2["x_is_nlogn"]

    def test_gap_exponent_positive(self):
        # Corollary 9.9: DB is polynomially better for alpha in (1, 2)
        for alpha in (1.2, 1.5, 1.8):
            for q in (3, 4, 5):
                assert predicted_gap_exponent(alpha, q) > 0

    def test_exponent_validation(self):
        with pytest.raises(ValueError):
            power_law_exponents(2.5, 3)


class TestBalance:
    def test_uniform_sequence_is_well_balanced(self):
        d = np.full(1000, 4.0)
        lam = lambda_balance(d)
        assert lam == pytest.approx(1 / 1000)

    def test_power_law_balance_matches_claim(self, rng):
        """Claim 10.1: lambda = O(n^{alpha/2 - 1})."""
        alpha = 1.5
        for n in (1024, 4096):
            seq = truncated_power_law_sequence(n, alpha, rng=rng)
            report = balance_report(seq, alpha)
            # empirical lambda within a constant factor of the prediction
            assert report["ratio"] < 10.0

    def test_prediction_shrinks_with_n(self):
        assert claim_10_1_prediction(10000, 1.5) < claim_10_1_prediction(100, 1.5)

    def test_balance_requires_degrees_at_least_one(self):
        with pytest.raises(ValueError):
            lambda_balance(np.array([0.5, 2.0]))
