"""Tests for treewidth recognition and exact computation."""

import pytest

from repro.query import (
    QueryGraph,
    complete_binary_tree,
    cycle_query,
    diamond,
    is_tree,
    is_treewidth_at_most_2,
    paper_queries,
    path_query,
    satellite,
    star_query,
    treewidth,
)


def clique(k):
    return QueryGraph([(i, j) for i in range(k) for j in range(i + 1, k)])


class TestIsTree:
    def test_path_is_tree(self):
        assert is_tree(path_query(5))

    def test_cycle_not_tree(self):
        assert not is_tree(cycle_query(4))

    def test_disconnected_not_tree(self):
        assert not is_tree(QueryGraph([(0, 1), (2, 3)]))


class TestTw2Recognition:
    def test_trees_pass(self):
        assert is_treewidth_at_most_2(complete_binary_tree(3))
        assert is_treewidth_at_most_2(star_query(6))

    def test_cycles_pass(self):
        for length in range(3, 9):
            assert is_treewidth_at_most_2(cycle_query(length))

    def test_diamond_passes(self):
        assert is_treewidth_at_most_2(diamond())

    def test_series_parallel_passes(self):
        # theta graph: two nodes joined by three internally disjoint paths
        theta = QueryGraph(
            [(0, 2), (2, 1), (0, 3), (3, 1), (0, 4), (4, 5), (5, 1)]
        )
        assert is_treewidth_at_most_2(theta)

    def test_k4_fails(self):
        assert not is_treewidth_at_most_2(clique(4))

    def test_k4_plus_pendant_fails(self):
        q = clique(4)
        q2 = QueryGraph(q.edges() + [(0, 9)])
        assert not is_treewidth_at_most_2(q2)

    def test_all_paper_queries_pass(self):
        for q in paper_queries().values():
            assert is_treewidth_at_most_2(q), q.name

    def test_satellite_passes(self):
        assert is_treewidth_at_most_2(satellite())

    def test_disconnected_handled(self):
        q = QueryGraph([(0, 1), (2, 3), (3, 4), (4, 2)])
        assert is_treewidth_at_most_2(q)


class TestExactTreewidth:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: path_query(4), 1),
            (lambda: star_query(5), 1),
            (lambda: cycle_query(5), 2),
            (lambda: diamond(), 2),
            (lambda: clique(4), 3),
            (lambda: clique(5), 4),
            (lambda: satellite(), 2),
        ],
    )
    def test_known_values(self, builder, expected):
        assert treewidth(builder()) == expected

    def test_single_node(self):
        assert treewidth(QueryGraph([], nodes=[0])) == 0

    def test_single_edge(self):
        assert treewidth(QueryGraph([(0, 1)])) == 1

    def test_agrees_with_recognizer(self, rng):
        # random small graphs: tw<=2 recognizer must agree with exact tw
        import numpy as np

        for seed in range(20):
            r = np.random.default_rng(seed)
            n = int(r.integers(3, 8))
            edges = []
            for i in range(n):
                for j in range(i + 1, n):
                    if r.random() < 0.45:
                        edges.append((i, j))
            q = QueryGraph(edges, nodes=range(n))
            assert is_treewidth_at_most_2(q) == (treewidth(q) <= 2)

    def test_paper_queries_exact_tw2(self):
        for name, q in paper_queries().items():
            assert treewidth(q) == 2, name
