"""Tests for the benchmark report aggregator and new CLI subcommands."""



from repro.bench import collect_results, render_report
from repro.cli import main


class TestReportAggregation:
    def test_empty_dir(self, tmp_path):
        text = render_report(str(tmp_path))
        assert "No benchmark results" in text

    def test_collect_and_render(self, tmp_path):
        (tmp_path / "table1.txt").write_text("== Table 1 ==\nrow\n")
        (tmp_path / "custom_extra.txt").write_text("extra table\n")
        results = collect_results(str(tmp_path))
        assert set(results) == {"table1", "custom_extra"}
        report = render_report(str(tmp_path))
        assert "Table 1 — data graphs" in report
        assert "custom_extra" in report  # unlisted files appended

    def test_paper_ordering(self, tmp_path):
        (tmp_path / "fig10.txt").write_text("IF table\n")
        (tmp_path / "table1.txt").write_text("graphs\n")
        report = render_report(str(tmp_path))
        assert report.index("Table 1") < report.index("Figure 10")


class TestNewCliCommands:
    def test_compare_command(self, capsys):
        rc = main(["compare", "--graph", "condmat", "--query", "glet1", "--ranks", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement factor" in out

    def test_verify_command(self, capsys):
        rc = main(["verify", "--graph", "condmat", "--query", "glet1"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        rc = main(
            ["trace", "--graph", "condmat", "--query", "glet1", "--ranks", "4", "--top", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-rank load" in out

    def test_report_command(self, tmp_path, capsys):
        (tmp_path / "fig8.txt").write_text("queries\n")
        rc = main(["report", "--results-dir", str(tmp_path)])
        assert rc == 0
        assert "Figure 8" in capsys.readouterr().out
