"""Tests for the open-addressing hash table (Section 7 engine storage)."""

from hypothesis import given, settings, strategies as st

from repro.tables.oahash import OpenAddressingTable


class TestBasics:
    def test_empty(self):
        t = OpenAddressingTable()
        assert len(t) == 0
        assert t.get((1, 2)) == 0
        assert (1, 2) not in t

    def test_add_and_get(self):
        t = OpenAddressingTable()
        t.add((1, 2, 0b11), 5)
        assert t.get((1, 2, 0b11)) == 5
        assert (1, 2, 0b11) in t

    def test_accumulation(self):
        t = OpenAddressingTable()
        t.add((0,), 3)
        t.add((0,), 4)
        assert t.get((0,)) == 7
        assert len(t) == 1

    def test_items_and_total(self):
        t = OpenAddressingTable()
        t.add((1,), 2)
        t.add((2,), 3)
        assert dict(t.items()) == {(1,): 2, (2,): 3}
        assert t.total() == 5

    def test_default_get(self):
        t = OpenAddressingTable()
        assert t.get((9, 9), default=-1) == -1


class TestResize:
    def test_grows_past_initial_capacity(self):
        t = OpenAddressingTable(capacity=8)
        for i in range(100):
            t.add((i, i + 1), 1)
        assert len(t) == 100
        assert t.capacity >= 128
        assert t.load_factor <= OpenAddressingTable.MAX_LOAD + 1e-9
        for i in range(100):
            assert t.get((i, i + 1)) == 1

    def test_capacity_power_of_two(self):
        t = OpenAddressingTable(capacity=100)
        assert t.capacity == 128

    def test_probe_counter_advances_under_collisions(self):
        t = OpenAddressingTable(capacity=8)
        for i in range(200):
            t.add((i,), 1)
        assert t.probe_count >= 0  # monotone diagnostic; existence checked


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.tuples(st.integers(0, 50), st.integers(0, 50)),
            st.integers(1, 10),
        ),
        max_size=200,
    )
)
def test_matches_dict_semantics(ops):
    """Property: the table behaves exactly like a counting dict."""
    t = OpenAddressingTable()
    reference: dict = {}
    for key, cnt in ops:
        t.add(key, cnt)
        reference[key] = reference.get(key, 0) + cnt
    assert t.to_dict() == reference
    assert len(t) == len(reference)
    for key in reference:
        assert t.get(key) == reference[key]
