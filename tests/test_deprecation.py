"""The legacy counting shims warn exactly once per call site."""

import warnings

import numpy as np
import pytest

from repro.counting import count, count_colorful, estimate_matches_parallel
from repro.counting._deprecation import reset_warning_sites, warn_once_per_site
from repro.graph import erdos_renyi
from repro.query import cycle_query


@pytest.fixture(autouse=True)
def fresh_sites():
    reset_warning_sites()
    yield
    reset_warning_sites()


@pytest.fixture
def instance():
    rng = np.random.default_rng(0)
    g = erdos_renyi(10, 0.4, rng)
    q = cycle_query(3)
    colors = rng.integers(0, 3, size=g.n)
    return g, q, colors


def _call_count_colorful(g, q, colors):
    # one fixed call site shared by the repetition tests
    return count_colorful(g, q, colors, method="ps")


class TestOncePerCallSite:
    def test_emitted_on_first_call(self, instance):
        g, q, colors = instance
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _call_count_colorful(g, q, colors)
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)
        assert "repro.counting.count_colorful is deprecated" in str(caught[0].message)

    def test_not_repeated_from_same_site(self, instance):
        g, q, colors = instance
        with warnings.catch_warnings(record=True) as caught:
            # "always" would re-emit on every call if the shim did not
            # de-duplicate per site itself
            warnings.simplefilter("always")
            for _ in range(5):
                _call_count_colorful(g, q, colors)
        assert len(caught) == 1

    def test_distinct_sites_each_warn(self, instance):
        g, q, colors = instance
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            count_colorful(g, q, colors, method="ps")  # site A
            count_colorful(g, q, colors, method="ps")  # site B
            _call_count_colorful(g, q, colors)  # site C
        assert len(caught) == 3

    def test_count_shim_warns(self, instance):
        g, q, _colors = instance
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            count(g, q, trials=2, seed=0)
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_parallel_shim_warns_once(self, instance):
        g, q, _colors = instance
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                estimate_matches_parallel(g, q, trials=2, seed=0, workers=1)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "estimate_matches_parallel" in str(dep[0].message)

    def test_warning_points_at_caller(self, instance):
        g, q, colors = instance
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            count_colorful(g, q, colors, method="ps")
        assert caught[0].filename == __file__


class TestHelper:
    def test_helper_deduplicates_by_line(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(4):
                warn_once_per_site("gone", stacklevel=1)
        assert len(caught) == 1

    def test_reset_reopens_sites(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_once_per_site("gone", stacklevel=1)
            reset_warning_sites()
            warn_once_per_site("gone", stacklevel=1)
        assert len(caught) == 2
