"""The removed counting shims raise :class:`DeprecationWarning` when called.

The free functions in ``repro.counting.api`` / ``repro.counting.parallel``
spent one release as warn-and-delegate shims; they are now hard stubs
that *raise* the warning class as an exception.  These tests pin the
stub contract: importable names, an exception (never a mere warning),
and a message carrying the exact replacement plus a docs pointer.  The
``warn_once_per_site`` helper stays tested for future deprecations.
"""

import warnings

import pytest

from repro.counting import (
    count,
    count_colorful,
    count_exact,
    estimate_matches_parallel,
    make_context,
)
from repro.counting._deprecation import reset_warning_sites, warn_once_per_site

STUBS = [
    (count, "repro.engine.CountingEngine.count"),
    (count_colorful, "repro.engine.CountingEngine.count_colorful"),
    (count_exact, "repro.engine.CountingEngine.count_exact"),
    (make_context, "repro.engine.CountingEngine.make_context"),
    (estimate_matches_parallel, "repro.engine.CountingEngine.count"),
]


class TestHardStubs:
    @pytest.mark.parametrize("fn, replacement", STUBS, ids=[f[0].__name__ for f in STUBS])
    def test_raises_with_replacement(self, fn, replacement):
        with pytest.raises(DeprecationWarning, match="has been removed") as excinfo:
            fn()
        message = str(excinfo.value)
        assert replacement in message
        assert "docs/API.md" in message

    @pytest.mark.parametrize("fn, _", STUBS, ids=[f[0].__name__ for f in STUBS])
    def test_raises_not_warns(self, fn, _):
        # an exception, never a suppressible warning: old call sites must
        # fail loudly even under `-W ignore`
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("ignore")
            with pytest.raises(DeprecationWarning):
                fn()
        assert caught == []

    @pytest.mark.parametrize("fn, _", STUBS, ids=[f[0].__name__ for f in STUBS])
    def test_ignores_legacy_signatures(self, fn, _):
        # every historical calling convention hits the stub message, not
        # a confusing TypeError about changed parameters
        with pytest.raises(DeprecationWarning):
            fn(None, None, trials=3, seed=0, workers=2, method="ps")


class TestHelper:
    """``warn_once_per_site`` remains for future soft deprecations."""

    @pytest.fixture(autouse=True)
    def fresh_sites(self):
        reset_warning_sites()
        yield
        reset_warning_sites()

    def test_helper_deduplicates_by_line(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(4):
                warn_once_per_site("gone", stacklevel=1)
        assert len(caught) == 1

    def test_distinct_sites_each_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_once_per_site("gone", stacklevel=1)  # site A
            warn_once_per_site("gone", stacklevel=1)  # site B
        assert len(caught) == 2

    def test_reset_reopens_sites(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warn_once_per_site("gone", stacklevel=1)
            reset_warning_sites()
            warn_once_per_site("gone", stacklevel=1)
        assert len(caught) == 2
