"""Vertex-label plumbing: Graph/Query label arrays, IO, masks, engine, wire.

The differential matrix (tests/test_differential_matrix.py) owns the
cross-backend parity story; this file owns the unit surface — label
validation and round trips, the mask helper, request-level labels, the
fingerprint discipline, and the CLI/service spellings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.counting.bruteforce import count_colorful_matches, count_matches
from repro.counting.labels import label_masks, label_masks_from_arrays
from repro.engine import CountingEngine, CountRequest
from repro.engine.fingerprint import canonical_query, request_fingerprint
from repro.graph.generators import erdos_renyi
from repro.graph.graph import Graph
from repro.graph.io import (
    load_graph_file,
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)
from repro.query.library import (
    cycle_query,
    labeled_queries,
    labeled_query,
    path_query,
    with_random_labels,
)
from repro.query.query import QueryGraph


def labeled_graph(n=20, p=0.25, classes=2, seed=5, name="lg"):
    rng = np.random.default_rng(seed)
    return erdos_renyi(n, p, rng, name=name).with_labels(rng.integers(0, classes, n))


# ----------------------------------------------------------------------
# Graph labels
# ----------------------------------------------------------------------
class TestGraphLabels:
    def test_construct_and_round_trip_csr(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)], labels=[0, 1, 1, 0])
        assert g.labeled and g.num_labels() == 2
        assert g.labels.dtype == np.int64
        indptr, indices = g.to_csr()
        back = Graph.from_csr(indptr, indices, labels=g.labels)
        assert back == g and np.array_equal(back.labels, g.labels)

    def test_unlabeled_default(self):
        g = Graph(3, [(0, 1)])
        assert g.labels is None and not g.labeled and g.num_labels() == 0

    def test_with_labels_shares_csr_and_clears(self):
        g = Graph(3, [(0, 1), (1, 2)])
        lg = g.with_labels([2, 0, 1])
        assert lg.indices is g.indices and lg.indptr is g.indptr
        assert lg.num_labels() == 3
        assert lg.with_labels(None).labels is None

    def test_label_validation(self):
        with pytest.raises(ValueError, match="one integer per vertex"):
            Graph(3, [(0, 1)], labels=[0, 1])
        with pytest.raises(ValueError, match="non-negative"):
            Graph(2, [(0, 1)], labels=[0, -1])
        with pytest.raises(ValueError, match="integers"):
            Graph(2, [(0, 1)], labels=[0.5, 1.0])

    def test_eq_and_hash_distinguish_labels(self):
        g = Graph(3, [(0, 1), (1, 2)])
        a = g.with_labels([0, 1, 0])
        b = g.with_labels([0, 1, 1])
        assert a != g and a != b
        assert a == g.with_labels([0, 1, 0])
        assert hash(a) == hash(g.with_labels([0, 1, 0]))

    def test_float_integral_labels_accepted(self):
        g = Graph(2, [(0, 1)], labels=np.array([1.0, 2.0]))
        assert list(g.labels) == [1, 2]


# ----------------------------------------------------------------------
# IO round trips
# ----------------------------------------------------------------------
class TestLabeledIO:
    def test_edge_list_round_trip(self, tmp_path):
        g = labeled_graph(name="io-edges")
        path = str(tmp_path / "g.edges")
        write_edge_list(g, path)
        back = read_edge_list(path, name="io-edges")
        assert back == g and np.array_equal(back.labels, g.labels)

    def test_edge_list_unlabeled_has_no_labels_line(self, tmp_path):
        g = erdos_renyi(10, 0.3, np.random.default_rng(0))
        path = str(tmp_path / "g.edges")
        write_edge_list(g, path)
        with open(path) as fh:
            assert "labels" not in fh.read()
        assert read_edge_list(path).labels is None

    def test_json_round_trip(self, tmp_path):
        g = labeled_graph(name="io-json")
        path = str(tmp_path / "g.json")
        write_json_graph(g, path)
        back = read_json_graph(path)
        assert back == g and np.array_equal(back.labels, g.labels)
        assert load_graph_file(path).labels is not None


# ----------------------------------------------------------------------
# QueryGraph labels
# ----------------------------------------------------------------------
class TestQueryLabels:
    def test_labels_must_cover_every_node(self):
        with pytest.raises(ValueError, match="cover every query node"):
            QueryGraph([(0, 1), (1, 2)], labels={0: 0, 1: 1})
        with pytest.raises(ValueError, match="unknown query node"):
            QueryGraph([(0, 1)], labels={0: 0, 1: 1, 9: 0})
        with pytest.raises(ValueError, match="non-negative"):
            QueryGraph([(0, 1)], labels={0: 0, 1: -2})

    def test_with_labels_relabel_subgraph_copy_carry_labels(self):
        q = QueryGraph([("a", "b"), ("b", "c")], labels={"a": 1, "b": 0, "c": 1})
        ints, mapping = q.relabel_to_ints()
        assert ints.labels == {mapping[v]: lab for v, lab in q.labels.items()}
        sub = q.subgraph(["a", "b"])
        assert sub.labels == {"a": 1, "b": 0}
        assert q.copy().labels == q.labels
        assert q.with_labels(None).labels is None

    def test_eq_hash_distinguish_labels(self):
        base = cycle_query(3)
        a = base.with_labels({0: 0, 1: 0, 2: 1})
        b = base.with_labels({0: 0, 1: 1, 2: 0})
        assert a != base and a != b
        assert a == base.with_labels({0: 0, 1: 0, 2: 1})
        assert hash(a) == hash(base.with_labels({0: 0, 1: 0, 2: 1}))

    def test_labeled_library(self):
        lib = labeled_queries()
        assert lib, "labeled library must not be empty"
        for name, q in lib.items():
            assert q.labeled and q.name == name
            assert set(q.labels) == set(q.nodes())
        with pytest.raises(KeyError):
            labeled_query("nope")

    def test_with_random_labels_deterministic(self):
        q = cycle_query(5)
        a = with_random_labels(q, 3, seed=9)
        b = with_random_labels(q, 3, seed=9)
        assert a.labels == b.labels
        assert set(a.labels.values()) <= {0, 1, 2}
        with pytest.raises(ValueError):
            with_random_labels(q, 0)


# ----------------------------------------------------------------------
# masks
# ----------------------------------------------------------------------
class TestLabelMasks:
    def test_masks_shape_and_sharing(self):
        g = labeled_graph()
        q = cycle_query(3).with_labels({0: 0, 1: 0, 2: 1})
        masks = label_masks(g, q)
        assert set(masks) == {0, 1, 2}
        assert masks[0] is masks[1], "equal labels share one mask array"
        assert np.array_equal(masks[0], g.labels == 0)
        assert np.array_equal(masks[2], g.labels == 1)

    def test_unlabeled_query_no_masks(self):
        assert label_masks(labeled_graph(), cycle_query(3)) is None
        assert label_masks_from_arrays(None, None) is None

    def test_labeled_query_unlabeled_graph_raises(self):
        g = erdos_renyi(10, 0.3, np.random.default_rng(0))
        q = cycle_query(3).with_labels({0: 0, 1: 0, 2: 1})
        with pytest.raises(ValueError, match="labeled data graph"):
            label_masks(g, q)


# ----------------------------------------------------------------------
# bruteforce oracle + exact counting
# ----------------------------------------------------------------------
class TestLabeledBruteforce:
    def test_count_matches_respects_labels(self):
        # path graph 0-1-2 labeled 0,1,0; query edge labeled (0,1)
        g = Graph(3, [(0, 1), (1, 2)], labels=[0, 1, 0])
        q = QueryGraph([(0, 1)], labels={0: 0, 1: 1})
        # matches: 0->0,1->1 and 0->2,1->1
        assert count_matches(g, q) == 2
        assert count_matches(g, q.with_labels(None)) == 4  # both orientations

    def test_colorful_labeled_subset(self):
        g = labeled_graph()
        q = cycle_query(3)
        lq = with_random_labels(q, 2, seed=1)
        colors = np.random.default_rng(0).integers(0, 3, g.n)
        assert count_colorful_matches(g, lq, colors) <= count_colorful_matches(g, q, colors)

    def test_labeled_query_unlabeled_graph_raises(self):
        g = erdos_renyi(8, 0.4, np.random.default_rng(0))
        q = cycle_query(3).with_labels({0: 0, 1: 0, 2: 1})
        with pytest.raises(ValueError, match="labeled data graph"):
            count_matches(g, q)


# ----------------------------------------------------------------------
# engine + fingerprint
# ----------------------------------------------------------------------
class TestEngineLabels:
    def test_request_labels_normalised_and_applied(self):
        g = labeled_graph()
        with CountingEngine(g, method="ps", trials=2) as engine:
            base = cycle_query(3)
            via_request = engine.count(CountRequest(query=base, labels={0: 0, 1: 0, 2: 1}))
            via_query = engine.count(base.with_labels({0: 0, 1: 0, 2: 1}))
            assert via_request.colorful_counts == via_query.colorful_counts

    def test_request_labels_hashable(self):
        r = CountRequest(query=cycle_query(3), labels={0: 0, 1: 1, 2: 0})
        assert isinstance(hash(r), int)
        assert r.labels == ((0, 0), (1, 1), (2, 0))
        assert r.effective_query().labels == {0: 0, 1: 1, 2: 0}

    def test_request_labels_list_spelling(self):
        """The per-node list spelling the CLI/service accept works on the
        direct engine API too, and normalises to the same request."""
        as_list = CountRequest(query=cycle_query(3), labels=[0, 1, 0])
        as_dict = CountRequest(query=cycle_query(3), labels={0: 0, 1: 1, 2: 0})
        assert as_list.labels == as_dict.labels and hash(as_list) == hash(as_dict)
        with pytest.raises(ValueError, match="one label per query node"):
            CountRequest(query=cycle_query(3), labels=[0, 1])
        with pytest.raises(ValueError, match="labels must be"):
            CountRequest(query=cycle_query(3), labels="010")

    def test_single_node_labeled_query(self):
        g = labeled_graph()
        q = QueryGraph([], nodes=[0], labels={0: 1})
        with CountingEngine(g, trials=1) as engine:
            expected = int((g.labels == 1).sum())
            for method in ("ps", "ps-vec"):
                assert engine.count(q, method=method).colorful_counts == [expected]

    def test_auto_dispatch_skips_treelet_for_labeled_trees(self):
        g = labeled_graph()
        with CountingEngine(g, method="auto", trials=1) as engine:
            assert engine.count(path_query(3)).method == "treelet"
            labeled = with_random_labels(path_query(3), 2, seed=0)
            assert engine.count(labeled).method != "treelet"

    def test_fingerprint_distinguishes_labels(self):
        base = cycle_query(3)
        fp_unlabeled = request_fingerprint("d", CountRequest(query=base))
        fp_a = request_fingerprint(
            "d", CountRequest(query=base, labels={0: 0, 1: 0, 2: 1})
        )
        fp_b = request_fingerprint(
            "d", CountRequest(query=base, labels={0: 1, 1: 0, 2: 0})
        )
        fp_query_carried = request_fingerprint(
            "d", CountRequest(query=base.with_labels({0: 0, 1: 0, 2: 1}))
        )
        assert len({fp_unlabeled, fp_a, fp_b}) == 3
        assert fp_a == fp_query_carried, "labels via request == labels via query"

    def test_canonical_query_renders_labels_in_node_order(self):
        q = QueryGraph([("a", "b")], labels={"a": 3, "b": 1})
        doc = canonical_query(q)
        assert doc["labels"] == [3, 1]
        assert canonical_query(q.with_labels(None))["labels"] is None

    def test_labeled_on_unlabeled_graph_raises(self):
        g = erdos_renyi(10, 0.3, np.random.default_rng(0), name="ug")
        with CountingEngine(g, trials=1) as engine:
            for method in ("ps", "ps-vec", "bruteforce"):
                with pytest.raises(ValueError, match="labeled data graph"):
                    engine.count(labeled_query("tri-001"), method=method)

    def test_explicit_unlabeled_plan_is_rerooted_on_labeled_request(self):
        """Regression: request labels must not be dropped by a caller plan.

        The solvers read label masks off ``plan.query``, so a plan built
        for the unlabeled twin has to be re-rooted on the effective
        labeled query — silently returning unlabeled counts under a
        labeled fingerprint would poison the service cache.
        """
        from repro.decomposition.planner import heuristic_plan

        g = labeled_graph()
        base = cycle_query(3)
        labels = {0: 0, 1: 0, 2: 1}
        unlabeled_plan = heuristic_plan(base)
        with CountingEngine(g, method="ps", trials=2) as engine:
            via_plan = engine.count(
                CountRequest(query=base, labels=labels, plan=unlabeled_plan)
            )
            expected = engine.count(base.with_labels(labels))
            unlabeled = engine.count(base)
            assert via_plan.colorful_counts == expected.colorful_counts
            assert via_plan.colorful_counts != unlabeled.colorful_counts
            # the legacy count_colorful surface has the same contract
            colors = np.random.default_rng(0).integers(0, 3, g.n)
            assert engine.count_colorful(
                base.with_labels(labels), colors, method="ps", plan=unlabeled_plan
            ) == count_colorful_matches(g, base.with_labels(labels), colors)

    def test_rerooted_plans_are_cached_per_labels(self):
        """Repeated labeled requests on one caller plan reuse one Plan
        object (pooled executors key their registries on plan identity)."""
        from repro.decomposition.planner import heuristic_plan

        g = labeled_graph()
        base = cycle_query(3)
        plan = heuristic_plan(base)
        with CountingEngine(g, method="ps", trials=1) as engine:
            labels = {0: 0, 1: 0, 2: 1}
            first = engine._effective_plan(plan, base.with_labels(labels))
            again = engine._effective_plan(plan, base.with_labels(labels))
            assert first is again and first is not plan
            assert engine._effective_plan(plan, base) is plan  # same labels: no-op

    def test_treelet_rejects_labeled_queries_directly(self):
        """Regression: the public treelet entry must refuse labeled queries
        rather than silently returning the unlabeled count."""
        from repro.counting.treelet import count_colorful_treelet

        g = labeled_graph()
        q = with_random_labels(path_query(3), 2, seed=0)
        colors = np.random.default_rng(0).integers(0, 3, g.n)
        with pytest.raises(ValueError, match="does not support labeled"):
            count_colorful_treelet(g, q, colors)

    def test_plan_with_query_rejects_structural_mismatch(self):
        from repro.decomposition.planner import heuristic_plan

        plan = heuristic_plan(cycle_query(3))
        with pytest.raises(ValueError, match="structurally different"):
            plan.with_query(cycle_query(4))

    def test_automorphism_count_is_label_preserving(self):
        from repro.query.automorphisms import automorphism_count

        tri = cycle_query(3)
        assert automorphism_count(tri) == 6
        # labels (0, 0, 1): only the identity and the swap of the two
        # 0-labeled nodes survive
        assert automorphism_count(tri.with_labels({0: 0, 1: 0, 2: 1})) == 2
        assert automorphism_count(tri.with_labels({0: 0, 1: 1, 2: 2})) == 1
        p = path_query(3)  # aut = 2 (reflection)
        assert automorphism_count(p) == 2
        # asymmetric endpoint labels break the reflection
        assert automorphism_count(p.with_labels({0: 0, 1: 1, 2: 2})) == 1

    def test_resolve_query_name_combined_error(self):
        from repro.query.library import resolve_query_name

        assert resolve_query_name("glet1").name == "glet1"
        assert resolve_query_name("tri-001").labeled
        with pytest.raises(KeyError) as err:
            resolve_query_name("glet9")
        assert "Figure 8" in str(err.value) and "labeled template" in str(err.value)

    def test_plan_cache_keys_labeled_variants_separately(self):
        g = labeled_graph()
        with CountingEngine(g, method="ps", trials=1) as engine:
            base = cycle_query(4)
            engine.count(base)
            engine.count(with_random_labels(base, 2, seed=0))
            assert engine.stats.plan_builds == 2
            engine.count(base)  # hits
            assert engine.stats.plan_builds == 2


# ----------------------------------------------------------------------
# CLI spellings
# ----------------------------------------------------------------------
class TestCliLabels:
    def test_count_with_random_graph_labels_and_pairs(self, capsys):
        from repro.cli import main

        rc = main([
            "count", "--graph", "condmat", "--query", "glet1",
            "--labels", "0=0,1=1,2=0,3=1", "--graph-labels", "random:2:3",
            "--trials", "2", "--method", "ps-vec",
        ])
        out = capsys.readouterr().out
        assert rc == 0 and "labeled" in out

    def test_count_with_list_labels_and_label_file(self, tmp_path, capsys):
        from repro.bench.datasets import dataset
        from repro.cli import main

        n = dataset("condmat").n
        label_file = tmp_path / "labels.txt"
        label_file.write_text(" ".join(str(i % 2) for i in range(n)))
        rc = main([
            "count", "--graph", "condmat", "--query", "glet1",
            "--labels", "0,1,0,1", "--graph-labels", str(label_file),
            "--trials", "1",
        ])
        assert rc == 0 and "labeled" in capsys.readouterr().out

    def test_labeled_template_without_graph_labels_fails_cleanly(self, capsys):
        from repro.cli import main

        rc = main(["count", "--graph", "condmat", "--query", "tri-001"])
        assert rc == 2
        assert "labeled data graph" in capsys.readouterr().err

    def test_plan_and_verify_accept_labeled_template_names(self, capsys):
        """Regression: every query-taking subcommand resolves labeled
        library names (plan works structurally; bad names exit 2 cleanly)."""
        from repro.cli import main

        assert main(["plan", "--query", "tri-001"]) == 0
        assert "cycle" in capsys.readouterr().out
        rc = main(["plan", "--query", "glet9"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "Figure 8" in err and not err.startswith('error: "')
        # labeled query on an unlabeled graph: clean error, not a traceback
        rc = main(["verify", "--graph", "condmat", "--query", "tri-001"])
        assert rc == 2
        assert "labeled data graph" in capsys.readouterr().err

    def test_missing_graph_file_error_has_context(self, capsys):
        from repro.cli import main

        rc = main(["count", "--graph", "/nonexistent.edges", "--query", "glet1"])
        assert rc == 2
        assert "cannot read input" in capsys.readouterr().err

    def test_bad_label_specs(self, capsys):
        from repro.cli import main

        rc = main([
            "count", "--graph", "condmat", "--query", "glet1",
            "--labels", "0,1", "--graph-labels", "random:2",
        ])
        assert rc == 2 and "one label per query node" in capsys.readouterr().err
        rc = main([
            "count", "--graph", "condmat", "--query", "glet1",
            "--labels", "z=1", "--graph-labels", "random:2",
        ])
        assert rc == 2 and "unknown query node" in capsys.readouterr().err

    def test_malformed_label_file_fails_cleanly(self, tmp_path, capsys):
        """Regression: graph/label loading errors print `error: ...` and
        exit 2 instead of crashing with a traceback."""
        from repro.cli import main

        bad = tmp_path / "bad.edges"
        bad.write_text("# 3 1\n# labels 0 1\n0 1\n")  # 2 labels, 3 vertices
        rc = main(["count", "--graph", str(bad), "--query", "glet1"])
        assert rc == 2
        assert "one integer per vertex" in capsys.readouterr().err
        rc = main(["count", "--graph", "/nonexistent.edges", "--query", "glet1"])
        assert rc == 2 and "error:" in capsys.readouterr().err
