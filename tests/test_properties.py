"""Tests for graph property helpers (components, triangles, summaries)."""


from repro.graph import (
    Graph,
    connected_components,
    erdos_renyi,
    graph_summary,
    is_connected,
    largest_component_subgraph,
    num_connected_components,
    triangle_count,
)


class TestComponents:
    def test_single_component(self, triangle_graph):
        assert num_connected_components(triangle_graph) == 1
        assert is_connected(triangle_graph)

    def test_two_components(self):
        g = Graph(4, [(0, 1), (2, 3)])
        assert num_connected_components(g) == 2
        assert not is_connected(g)

    def test_isolated_vertices_are_components(self):
        g = Graph(3, [])
        assert num_connected_components(g) == 3

    def test_component_labels(self):
        g = Graph(4, [(0, 1), (2, 3)])
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_largest_component_extraction(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 0), (3, 4)])
        sub = largest_component_subgraph(g)
        assert sub.n == 3
        assert sub.m == 3

    def test_empty_graph_components(self):
        assert num_connected_components(Graph(0, [])) == 0


class TestTriangles:
    def test_triangle_count_k3(self, triangle_graph):
        assert triangle_count(triangle_graph) == 1

    def test_triangle_count_square(self, square_graph):
        assert triangle_count(square_graph) == 0

    def test_triangle_count_k4(self):
        g = Graph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert triangle_count(g) == 4

    def test_triangle_count_petersen(self, petersen_graph):
        assert triangle_count(petersen_graph) == 0  # girth 5

    def test_triangle_count_matches_bruteforce(self, rng):
        g = erdos_renyi(25, 0.3, rng)
        brute = 0
        for a in range(g.n):
            for b in range(a + 1, g.n):
                for c in range(b + 1, g.n):
                    if g.has_edge(a, b) and g.has_edge(b, c) and g.has_edge(a, c):
                        brute += 1
        assert triangle_count(g) == brute


class TestSummary:
    def test_summary_fields(self, petersen_graph):
        s = graph_summary(petersen_graph)
        assert s["nodes"] == 10
        assert s["edges"] == 15
        assert s["avg_deg"] == 3.0
        assert s["max_deg"] == 3
        assert s["components"] == 1
