"""Tests for explicit tree decompositions."""

import pytest

from repro.query import (
    QueryGraph,
    cycle_query,
    diamond,
    paper_queries,
    path_query,
    random_tw2_query,
    satellite,
    star_query,
)
from repro.query.treedecomposition import (
    TreeDecomposition,
    tree_decomposition_tw2,
    verify_tree_decomposition,
)


class TestConstruction:
    def test_path_width_1(self):
        td = tree_decomposition_tw2(path_query(6))
        assert td.width <= 1

    def test_star_width_1(self):
        td = tree_decomposition_tw2(star_query(5))
        assert td.width == 1

    def test_cycle_width_2(self):
        td = tree_decomposition_tw2(cycle_query(6))
        assert td.width == 2

    def test_diamond_width_2(self):
        assert tree_decomposition_tw2(diamond()).width == 2

    def test_all_paper_queries(self):
        for name, q in paper_queries().items():
            td = tree_decomposition_tw2(q)
            assert td.width == 2, name

    def test_satellite(self):
        td = tree_decomposition_tw2(satellite())
        assert td.width == 2
        assert len(td.bags) == 11  # one bag per eliminated vertex

    def test_rejects_k4(self):
        k4 = QueryGraph([(i, j) for i in range(4) for j in range(i + 1, 4)])
        with pytest.raises(ValueError, match="treewidth > 2"):
            tree_decomposition_tw2(k4)

    def test_single_node(self):
        td = tree_decomposition_tw2(QueryGraph([], nodes=["a"]))
        assert td.width == 0

    def test_random_queries_verify(self, rng):
        for _ in range(25):
            q = random_tw2_query(rng, max_k=9)
            td = tree_decomposition_tw2(q)  # includes verification
            assert td.width <= 2


class TestVerification:
    def test_edge_not_covered_detected(self):
        q = cycle_query(3)
        td = TreeDecomposition(
            bags=[frozenset({0, 1}), frozenset({1, 2}), frozenset({2})],
            tree_edges=[(0, 1), (1, 2)],
        )
        with pytest.raises(ValueError, match="not inside any bag"):
            verify_tree_decomposition(q, td)

    def test_disconnected_subtree_detected(self):
        q = path_query(3)
        # node 0 appears in bags 0 and 2 which are not adjacent via bags with 0
        td = TreeDecomposition(
            bags=[frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})],
            tree_edges=[(0, 1), (1, 2)],
        )
        with pytest.raises(ValueError, match="not connected"):
            verify_tree_decomposition(q, td)

    def test_cyclic_bag_tree_detected(self):
        q = path_query(3)
        td = TreeDecomposition(
            bags=[frozenset({0, 1}), frozenset({1, 2})],
            tree_edges=[(0, 1), (1, 0)],
        )
        with pytest.raises(ValueError):
            verify_tree_decomposition(q, td)

    def test_missing_node_detected(self):
        q = path_query(3)
        td = TreeDecomposition(bags=[frozenset({0, 1})], tree_edges=[])
        with pytest.raises(ValueError):
            verify_tree_decomposition(q, td)
