"""Tests for the superstep trace reporting."""

import pytest

from repro.counting.estimator import random_coloring
from repro.distributed import (
    LoadStats,
    format_trace,
    hotspots,
    rank_profile,
    run_distributed,
    stage_report,
)
from repro.graph import erdos_renyi
from repro.query import cycle_query


@pytest.fixture
def sample_stats():
    stats = LoadStats(4)
    s1 = stats.new_stage("init")
    s1.ops[:] = [100, 10, 10, 10]
    s1.msgs[:] = [5, 0, 0, 0]
    s2 = stats.new_stage("ext1")
    s2.ops[:] = [20, 20, 20, 20]
    return stats


class TestStageReport:
    def test_sorted_by_max_ops(self, sample_stats):
        report = stage_report(sample_stats)
        assert report[0].name == "init"
        assert report[0].max_ops == 100

    def test_imbalance_computed(self, sample_stats):
        report = stage_report(sample_stats)
        init = next(s for s in report if s.name == "init")
        assert init.imbalance == pytest.approx(100 / 32.5)
        ext = next(s for s in report if s.name == "ext1")
        assert ext.imbalance == pytest.approx(1.0)

    def test_hotspots_limit(self, sample_stats):
        assert len(hotspots(sample_stats, top=1)) == 1

    def test_rank_profile_totals(self, sample_stats):
        profile = rank_profile(sample_stats)
        assert list(profile) == [120, 30, 30, 30]


class TestFormatTrace:
    def test_renders(self, sample_stats):
        text = format_trace(sample_stats)
        assert "supersteps: 2" in text
        assert "rank   0" in text
        assert "#" in text

    def test_real_run_trace(self, rng):
        g = erdos_renyi(60, 0.15, rng, name="g60")
        q = cycle_query(4)
        colors = random_coloring(g.n, q.k, rng)
        run = run_distributed(g, q, colors, 4)
        text = format_trace(run.stats)
        assert "merge" in text  # cycle merge stage appears
        assert len(stage_report(run.stats)) >= 3
