"""Tests for coloring strategies and process-parallel trial fan-out."""

import numpy as np
import pytest

from repro.counting import (
    balanced_coloring,
    color_class_sizes,
    coloring_batch,
    estimate_matches,
    uniform_coloring,
)
from repro.engine import CountingEngine
from repro.graph import erdos_renyi
from repro.query import cycle_query, paper_query



class TestColoringStrategies:
    def test_uniform_range(self, rng):
        c = uniform_coloring(500, 6, rng)
        assert c.min() >= 0 and c.max() < 6

    def test_balanced_class_sizes(self, rng):
        c = balanced_coloring(103, 5, rng)
        sizes = color_class_sizes(c, 5)
        assert sizes.max() - sizes.min() <= 1
        assert sizes.sum() == 103

    def test_balanced_exact_division(self, rng):
        c = balanced_coloring(100, 4, rng)
        assert (color_class_sizes(c, 4) == 25).all()

    def test_batch_deterministic(self):
        a = coloring_batch(50, 4, 3, seed=9)
        b = coloring_batch(50, 4, 3, seed=9)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_batch_strategies_differ(self):
        u = coloring_batch(60, 3, 1, seed=1, strategy="uniform")[0]
        bal = coloring_batch(60, 3, 1, seed=1, strategy="balanced")[0]
        assert (color_class_sizes(bal, 3) == 20).all()
        assert not np.array_equal(u, bal)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            coloring_batch(10, 2, 1, seed=0, strategy="rainbow")

    def test_batch_matches_sequential_estimator(self, rng):
        """coloring_batch('uniform') reproduces estimate_matches' draws."""
        g = erdos_renyi(20, 0.3, rng, name="g")
        q = cycle_query(4)
        seq = estimate_matches(g, q, trials=3, seed=5)
        batch = coloring_batch(g.n, q.k, 3, seed=5)
        engine = CountingEngine(g)
        counts = [engine.count_colorful(q, c) for c in batch]
        assert counts == seq.colorful_counts


class TestParallelEstimator:
    def test_matches_sequential(self, rng):
        g = erdos_renyi(18, 0.35, rng, name="g18")
        q = paper_query("glet1")
        seq = estimate_matches(g, q, trials=4, seed=3)
        par = CountingEngine(g).count(q, trials=4, seed=3, workers=2)
        assert par.colorful_counts == seq.colorful_counts
        assert par.estimate == seq.estimate

    def test_single_worker_fallback(self, rng):
        g = erdos_renyi(15, 0.35, rng)
        q = cycle_query(3)
        par = CountingEngine(g).count(q, trials=3, seed=1, workers=1)
        seq = estimate_matches(g, q, trials=3, seed=1)
        assert par.colorful_counts == seq.colorful_counts

    def test_balanced_strategy(self, rng):
        g = erdos_renyi(15, 0.4, rng)
        q = cycle_query(3)
        res = CountingEngine(g).count(
            q, trials=3, seed=2, workers=1, coloring_strategy="balanced"
        )
        assert len(res.colorful_counts) == 3

    def test_rejects_zero_trials(self, triangle_graph):
        with pytest.raises(ValueError):
            CountingEngine(triangle_graph).count(cycle_query(3), trials=0)
