"""Tests for query isomorphism utilities."""

import pytest

from repro.query import (
    QueryGraph,
    are_isomorphic,
    canonical_form,
    cycle_query,
    degree_sequence,
    diamond,
    find_isomorphism,
    paper_query,
    path_query,
)

# this module deliberately exercises the deprecated pre-engine shim API
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")



class TestIsomorphism:
    def test_relabeled_cycles_isomorphic(self):
        a = cycle_query(5)
        b = QueryGraph([("v", "w"), ("w", "x"), ("x", "y"), ("y", "z"), ("z", "v")])
        iso = find_isomorphism(a, b)
        assert iso is not None
        # verify it is adjacency-preserving
        for u, v in a.edges():
            assert b.has_edge(iso[u], iso[v])

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(cycle_query(4), cycle_query(5))

    def test_same_degree_sequence_not_sufficient(self):
        # C6 vs two disjoint triangles... (keep connected: C6 vs prism-path)
        a = cycle_query(6)
        b = QueryGraph([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert degree_sequence(a) == degree_sequence(b)
        assert not are_isomorphic(a, b)

    def test_glet2_is_diamond(self):
        assert are_isomorphic(paper_query("glet2"), diamond())

    def test_path_vs_star(self):
        from repro.query import star_query

        assert not are_isomorphic(path_query(4), star_query(3))

    def test_identity(self):
        q = paper_query("wiki")
        iso = find_isomorphism(q, q)
        assert iso is not None


class TestCanonicalForm:
    def test_relabeling_invariant(self, rng):
        q = cycle_query(5)
        perm = list(rng.permutation(5))
        relabeled = QueryGraph([(perm[a], perm[b]) for a, b in q.edges()])
        assert canonical_form(q) == canonical_form(relabeled)

    def test_distinguishes_nonisomorphic(self):
        assert canonical_form(cycle_query(4)) != canonical_form(path_query(4))

    def test_size_limit(self):
        with pytest.raises(ValueError):
            canonical_form(cycle_query(9))

    def test_counts_are_isomorphism_invariant(self, rng):
        """Match counts do not depend on query labelling."""
        from repro.engine import CountingEngine
        from repro.graph import erdos_renyi

        g = erdos_renyi(10, 0.5, rng)
        q = paper_query("glet2")
        perm = {v: f"x{v}" for v in q.nodes()}
        relabeled = QueryGraph([(perm[a], perm[b]) for a, b in q.edges()])
        colors = rng.integers(0, q.k, size=g.n)
        engine = CountingEngine(g)
        assert engine.count_colorful(q, colors) == engine.count_colorful(relabeled, colors)
